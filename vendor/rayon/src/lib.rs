//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a dependency-free thread pool that is source-compatible with the subset
//! of rayon the sweep engine uses: [`ThreadPoolBuilder`] (`num_threads`,
//! `build`), [`ThreadPool::current_num_threads`], [`ThreadPool::scope`],
//! [`Scope::spawn`] and the free [`scope`] function.
//!
//! ## Execution model
//!
//! Each [`ThreadPool`] owns a set of **persistent** worker threads,
//! spawned lazily on the first `scope` call and parked on a condvar
//! between scopes, so back-to-back scopes (a sweep replaying thousands of
//! cells, repeated `annotate_trace_jobs` calls) pay thread creation once
//! per pool instead of once per scope. Workers are joined when the pool
//! is dropped.
//!
//! Tasks start executing as soon as they are spawned (upstream rayon
//! semantics). Scheduling is work-stealing: a task spawned from a worker
//! of the pool lands on that worker's own deque (popped LIFO for cache
//! locality), tasks from outside threads land on a shared injector queue,
//! and idle workers steal FIFO from the injector and from other workers'
//! deques. The thread that called `scope` *helps* — it runs queued tasks
//! while waiting for its scope to complete — so a scope entered from
//! inside a pool worker (nested fork/join) can never deadlock, even on a
//! one-thread pool.
//!
//! A panicking task does not kill its worker: the payload is captured and
//! re-thrown from the `scope` call that owns the task, mirroring
//! upstream's propagation contract.
//!
//! ## The one `unsafe`
//!
//! Queued tasks borrow the scope's environment (`'env`), but they sit in
//! queues owned by `'static` pool state, so [`Scope::spawn`] erases the
//! lifetime with one `transmute`. This is sound because
//! [`ThreadPool::scope`] does not return before every spawned task —
//! including tasks spawned by other tasks — has finished running (the
//! scope keeps a count of outstanding tasks and waits for it to reach
//! zero), so no erased task can run after `'env` ends.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Builds a [`ThreadPool`] (subset: `num_threads` only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building a thread pool. The vendored pool cannot actually fail
/// to build (workers are spawned lazily on first use), so this is only
/// here for source compatibility with `rayon::ThreadPoolBuilder::build`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (available parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the worker count; 0 means available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Workers are not spawned until the first scope.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            available_parallelism()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            threads,
            core: OnceLock::new(),
            handles: Mutex::new(Vec::new()),
        })
    }
}

/// Hardware parallelism, defaulting to 1 when undetectable.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A lifetime-erased queued task (see the module docs for why erasure is
/// sound here).
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// (pool-core address, worker index) when the current thread is a
    /// pool worker; lets `push`/`pop` route tasks to the local deque.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// Shared state of one pool's workers and queues.
struct PoolCore {
    /// Tasks submitted from threads outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; owner pops LIFO, thieves steal FIFO.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks queued anywhere. Incremented *before* the queue push and
    /// decremented *after* a successful pop, so `queued == 0` proves the
    /// queues are empty (the converse — a transiently positive count with
    /// the task not yet visible — only costs a retry).
    queued: AtomicUsize,
    /// Parking lot for idle workers.
    park_mx: Mutex<()>,
    park_cv: Condvar,
    shutdown: AtomicBool,
}

impl PoolCore {
    fn addr(&self) -> usize {
        self as *const PoolCore as usize
    }

    /// Worker index of the current thread *if* it belongs to this pool.
    fn my_index(&self) -> Option<usize> {
        WORKER.with(|w| w.get()).and_then(|(addr, idx)| (addr == self.addr()).then_some(idx))
    }

    /// Queue a task: on the current worker's deque when called from
    /// inside the pool, on the injector otherwise.
    fn push(&self, task: Task) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        match self.my_index() {
            Some(i) => self.locals[i].lock().expect("pool queue").push_back(task),
            None => self.injector.lock().expect("pool queue").push_back(task),
        }
        // Taking the parking mutex orders this wake-up after any worker's
        // "queues empty" re-check, so the notify cannot be lost between a
        // worker's check and its wait.
        drop(self.park_mx.lock().expect("pool parking lot"));
        self.park_cv.notify_one();
    }

    /// Find a task: own deque (LIFO), then the injector, then steal from
    /// the other workers' deques (FIFO). `me` is the caller's worker
    /// index in this pool, if any.
    fn pop(&self, me: Option<usize>) -> Option<Task> {
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Some(i) = me {
            if let Some(t) = self.locals[i].lock().expect("pool queue").pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("pool queue").pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        for (j, q) in self.locals.iter().enumerate() {
            if Some(j) == me {
                continue;
            }
            if let Some(t) = q.lock().expect("pool queue").pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
        }
        None
    }
}

/// Body of a persistent worker thread.
fn worker_loop(core: &Arc<PoolCore>, idx: usize) {
    WORKER.with(|w| w.set(Some((core.addr(), idx))));
    loop {
        if let Some(task) = core.pop(Some(idx)) {
            task();
            continue;
        }
        let mut guard = core.park_mx.lock().expect("pool parking lot");
        loop {
            if core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if core.queued.load(Ordering::SeqCst) > 0 {
                break; // retry popping
            }
            guard = core.park_cv.wait(guard).expect("pool parking lot");
        }
    }
}

/// Per-scope completion state: the count of spawned-but-unfinished tasks
/// and the condvar the scope's owner waits on.
struct ScopeCore {
    pool: Arc<PoolCore>,
    pending: AtomicUsize,
    done_mx: Mutex<()>,
    done_cv: Condvar,
    /// First captured task panic, re-thrown by the owning `scope` call.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeCore {
    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Serialize with the owner's pending re-check under `done_mx`
            // so the final notify cannot be lost.
            drop(self.done_mx.lock().expect("scope latch"));
            self.done_cv.notify_all();
        }
    }
}

/// A fork/join scope handed to the [`ThreadPool::scope`] closure.
pub struct Scope<'env> {
    core: Arc<ScopeCore>,
    /// Invariant over `'env`: a scope must not be coerced to a shorter
    /// environment lifetime.
    _env: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'env> Scope<'env> {
    /// Queue `body` for execution on the pool; it starts as soon as a
    /// thread is free. The closure receives the scope again so tasks can
    /// spawn further tasks.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.core.pending.fetch_add(1, Ordering::SeqCst);
        let core = Arc::clone(&self.core);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let scope = Scope {
                core: Arc::clone(&core),
                _env: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&scope))) {
                let mut slot = core.panic.lock().expect("scope panic slot");
                slot.get_or_insert(payload);
            }
            core.task_finished();
        });
        // SAFETY: `ThreadPool::scope` does not return until `pending`
        // reaches zero, i.e. until this closure (and every closure it
        // transitively spawns) has run to completion, so the erased task
        // never outlives the `'env` borrows it captures.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
        self.core.pool.push(task);
    }
}

/// A fixed-width thread pool with persistent, lazily-spawned workers.
pub struct ThreadPool {
    threads: usize,
    core: OnceLock<Arc<PoolCore>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("started", &self.core.get().is_some())
            .finish()
    }
}

impl ThreadPool {
    /// Number of worker threads the pool runs.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// The shared core, spawning the persistent workers on first use.
    fn core(&self) -> &Arc<PoolCore> {
        self.core.get_or_init(|| {
            let core = Arc::new(PoolCore {
                injector: Mutex::new(VecDeque::new()),
                locals: (0..self.threads).map(|_| Mutex::new(VecDeque::new())).collect(),
                queued: AtomicUsize::new(0),
                park_mx: Mutex::new(()),
                park_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            });
            let mut handles = self.handles.lock().expect("pool handles");
            for i in 0..self.threads {
                let core = Arc::clone(&core);
                let handle = std::thread::Builder::new()
                    .name(format!("ibp-pool-{i}"))
                    .spawn(move || worker_loop(&core, i))
                    .expect("spawn pool worker");
                handles.push(handle);
            }
            core
        })
    }

    /// Run `f` with a [`Scope`]; returns after every spawned task (and
    /// every task those tasks spawned) has completed. The calling thread
    /// runs queued tasks while it waits.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let sc = Arc::new(ScopeCore {
            pool: Arc::clone(self.core()),
            pending: AtomicUsize::new(0),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            core: Arc::clone(&sc),
            _env: PhantomData,
        };
        let result = f(&scope);
        drop(scope);
        help_until_done(&sc);
        let payload = sc.panic.lock().expect("scope panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        result
    }
}

/// Wait for `sc.pending` to hit zero, running queued pool tasks in the
/// meantime (the help step that makes nested same-pool scopes safe).
fn help_until_done(sc: &ScopeCore) {
    let me = sc.pool.my_index();
    loop {
        if sc.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        if let Some(task) = sc.pool.pop(me) {
            task();
            continue;
        }
        // Nothing runnable here: every outstanding task of this scope is
        // executing on some other thread (or about to be queued by one).
        // Sleep until the count hits zero; queue growth wakes the pool's
        // workers, not us, and they make the progress.
        let mut guard = sc.done_mx.lock().expect("scope latch");
        loop {
            if sc.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if sc.pool.queued.load(Ordering::SeqCst) > 0 {
                break; // retry popping
            }
            guard = sc.done_cv.wait(guard).expect("scope latch");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(core) = self.core.get() {
            core.shutdown.store(true, Ordering::SeqCst);
            drop(core.park_mx.lock().expect("pool parking lot"));
            core.park_cv.notify_all();
            for handle in self.handles.lock().expect("pool handles").drain(..) {
                let _ = handle.join();
            }
        }
    }
}

/// The process-wide pool behind the free [`scope`] function, sized to
/// available parallelism. Callers that want a bounded number of
/// concurrently running tasks spawn that many self-scheduling tasks
/// (worker width only caps, never adds, concurrency).
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("global pool build is infallible")
    })
}

/// Run `f` with a scope on the persistent [`global_pool`] (subset of
/// `rayon::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    global_pool().scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_returns_closure_value_and_borrows_env() {
        let data = vec![1u64, 2, 3];
        let total = AtomicUsize::new(0);
        let r = scope(|s| {
            for d in &data {
                s.spawn(|_| {
                    total.fetch_add(*d as usize, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(r, "done");
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn workers_persist_across_scopes() {
        // Two scopes on one pool must not respawn workers: record the
        // worker identity (pool addr, index) seen by tasks in each scope
        // and check the pool never grew beyond its width.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = pool.core.get().is_none();
        assert!(before, "workers must be lazy");
        for _ in 0..10 {
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..32 {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 32);
            let handles = pool.handles.lock().unwrap();
            assert_eq!(handles.len(), 3, "scope respawned workers");
        }
    }

    #[test]
    fn nested_scope_on_same_pool_completes_even_single_threaded() {
        // A worker blocking on an inner scope must help run that scope's
        // tasks; otherwise a 1-thread pool would deadlock here.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                pool.scope(|inner| {
                    for _ in 0..10 {
                        inner.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                hits.fetch_add(100, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 110);
    }

    #[test]
    fn task_panic_propagates_to_scope_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        }));
        assert!(caught.is_err(), "panic must propagate out of scope()");
        // The worker that ran the panicking task is still alive.
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn spawned_from_worker_lands_on_local_deque() {
        // Smoke-check the stealing path: one task fans out many subtasks
        // (which go to its local deque) and the other workers steal them.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                for _ in 0..64 {
                    s.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }
}
