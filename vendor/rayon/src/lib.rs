//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, dependency-free thread pool that is source-compatible with
//! the subset of rayon the sweep engine uses: [`ThreadPoolBuilder`]
//! (`num_threads`, `build`), [`ThreadPool::current_num_threads`],
//! [`ThreadPool::scope`] and [`Scope::spawn`].
//!
//! Semantics differ from upstream rayon in one documented way: tasks
//! spawned inside a scope are queued while the scope closure runs and
//! start executing when the closure returns (upstream starts them
//! immediately). The scope still does not return before every spawned
//! task — including tasks spawned by other tasks — has completed, so the
//! fork/join contract the callers rely on holds. Blocking inside the
//! scope closure on work performed by spawned tasks would therefore
//! deadlock; no caller in this workspace does that.
//!
//! There is no work stealing: workers pull whole tasks from a shared
//! FIFO. The sweep engine submits one self-scheduling worker task per
//! thread (each pulling cell indices from an atomic counter), so task
//! granularity is not a bottleneck there.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Builds a [`ThreadPool`] (subset: `num_threads` only).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building a thread pool. The vendored pool cannot actually fail
/// to build (threads are spawned lazily per scope), so this is only here
/// for source compatibility with `rayon::ThreadPoolBuilder::build`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (available parallelism).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Set the worker count; 0 means available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            available_parallelism()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Hardware parallelism, defaulting to 1 when undetectable.
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A fixed-width thread pool. Workers are OS threads spawned per
/// [`ThreadPool::scope`] call via `std::thread::scope`, which keeps the
/// implementation free of `unsafe` and of lifetime erasure; pool reuse
/// across scopes only re-spawns threads, which is negligible next to the
/// simulation work each scope carries.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

type Task<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// A fork/join scope handed to the [`ThreadPool::scope`] closure.
pub struct Scope<'env> {
    queue: Mutex<VecDeque<Task<'env>>>,
}

impl<'env> Scope<'env> {
    /// Queue `body` for execution on the pool. The closure receives the
    /// scope again so tasks can spawn further tasks.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.queue.lock().unwrap().push_back(Box::new(body));
    }
}

impl ThreadPool {
    /// Number of worker threads a scope will use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`]; returns after every spawned task (and
    /// every task those tasks spawned) has completed.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let sc = Scope {
            queue: Mutex::new(VecDeque::new()),
        };
        let result = f(&sc);
        std::thread::scope(|ts| {
            for _ in 0..self.threads {
                ts.spawn(|| loop {
                    // Pop outside the match so the lock is not held while
                    // the task runs.
                    let task = sc.queue.lock().unwrap().pop_front();
                    match task {
                        Some(t) => t(&sc),
                        // A worker may exit while another worker's task is
                        // still running and about to spawn more: those new
                        // tasks are drained by the worker that spawned
                        // them when it loops, so the scope still completes
                        // everything before returning.
                        None => break,
                    }
                });
            }
        });
        result
    }
}

/// Run `f` with a scope on a throwaway pool sized to available
/// parallelism (subset of `rayon::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    ThreadPool {
        threads: available_parallelism(),
    }
    .scope(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn scope_returns_closure_value_and_borrows_env() {
        let data = vec![1u64, 2, 3];
        let total = AtomicUsize::new(0);
        let r = scope(|s| {
            for d in &data {
                s.spawn(|_| {
                    total.fetch_add(*d as usize, Ordering::Relaxed);
                });
            }
            "done"
        });
        assert_eq!(r, "done");
        assert_eq!(total.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
