//! Vendored FxHash-style hasher (offline stand-in for `rustc-hash`).
//!
//! SipHash — the default `HashMap` hasher — is DoS-resistant but costs
//! tens of nanoseconds per short key. The PPA hot path hashes tiny
//! `[u16]` / `[u32]` slices millions of times per annotated trace, all
//! keyed by data we generate ourselves, so HashDoS resistance buys
//! nothing. This crate provides the classic Firefox/rustc "Fx" hash: a
//! word-at-a-time multiply-rotate mix that is 3-5× faster on short keys.
//!
//! The algorithm matches `rustc-hash` 1.x: fold each machine word `w`
//! into the state with `state = (state.rotate_left(5) ^ w) * SEED`.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Fast, non-cryptographic, word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Fold in the tail length so "ab\0" and "ab" differ.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"alya-gram"), hash_of(b"alya-gram"));
    }

    #[test]
    fn distinguishes_lengths_and_content() {
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ba"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn map_with_slice_keys_roundtrips() {
        let mut m: FxHashMap<Box<[u16]>, u32> = FxHashMap::default();
        for i in 0..1000u16 {
            m.insert(vec![i, i + 1, i + 2].into_boxed_slice(), u32::from(i));
        }
        for i in 0..1000u16 {
            // Borrowed-slice lookup must hash identically to the owned key.
            let key: &[u16] = &[i, i + 1, i + 2];
            assert_eq!(m.get(key), Some(&u32::from(i)));
        }
    }

    #[test]
    fn set_behaves_like_std() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert_eq!(s.len(), 1);
    }
}
