//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors a minimal, dependency-free implementation of the
//! `rand 0.8` API subset it consumes (`StdRng`, `SeedableRng`, `Rng`),
//! because the build environment has no network access to crates.io.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation purposes and fully deterministic across platforms.
//! It intentionally does **not** promise the same stream as upstream
//! `StdRng`; all consumers in this workspace only rely on determinism for
//! a fixed seed, not on specific values.

/// Random number generators.
pub mod rngs {
    /// Deterministic generator: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Seeding support (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Core random source.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

/// Types samplable from the "standard" distribution (subset).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly (subset: half-open `Range`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias at span near 2^64 is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing generator methods (subset: `gen`, `gen_range`).
pub trait Rng: RngCore {
    /// Draw a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
