//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing harness that is source-compatible with the subset
//! of proptest the test suites use: the `proptest!` macro (with
//! `#![proptest_config(ProptestConfig::with_cases(N))]` and `ident in
//! strategy` arguments), range and tuple strategies, `collection::vec`,
//! `any::<T>()`, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - cases are sampled from a **deterministic** per-test stream (derived from
//!   the test's module path and name), so every run explores the same inputs;
//! - there is **no shrinking** — on failure the full offending input is
//!   printed instead.

/// Strategies: describe how to sample a value of some type.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of sampled values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
        /// Transform sampled values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
    );

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Types with a full-range default strategy.
    pub trait Arbitrary: Sized {
        /// Sample an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()`: the default strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing a `Vec` of `elem` samples with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u128;
            let len = self.size.start + (((rng.next_u64() as u128 * span) >> 64) as usize);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    /// Per-test deterministic random stream (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive the stream for one test case from the test's identity.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Outcome of a single property-test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// A `prop_assume!` precondition was not met; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Harness configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` sampled inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Define property tests.
///
/// Each `ident in strategy` argument is sampled per case; the body runs once
/// per case and fails the surrounding `#[test]` on the first assertion
/// failure, printing the offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut runner_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut runner_rng);)*
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)* ""),
                    $(&$arg),*
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg,
                            inputs,
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "property `{}`: every case was rejected by prop_assume!",
                stringify!($name),
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(left_val == right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left_val,
                right_val,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        if !(left_val == right_val) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left_val,
                right_val,
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in 3u32..17,
            y in -5i64..5,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(
            v in crate::collection::vec((0u8..4, 10u32..20), 1..40),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((10..20).contains(b));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample = |case| {
            let mut rng = TestRng::for_case("x::y", case);
            Strategy::generate(&(0u64..1_000_000), &mut rng)
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }
}
