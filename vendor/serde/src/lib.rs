//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework that is **API-compatible with
//! the subset of serde this repository uses**: the `Serialize` and
//! `Deserialize` traits, their derive macros (including `#[serde(default)]`
//! and `#[serde(default = "path")]` field attributes), and implementations
//! for the standard types that appear in trace, annotation, and result
//! records.
//!
//! Unlike real serde there is no zero-copy visitor machinery: values are
//! funnelled through an owned [`Value`] tree, which `serde_json` (also
//! vendored) renders to and parses from JSON. That is plenty for this
//! workspace — serialization is explicitly not on any hot path (see
//! `ibp-trace::io`) — and keeps the vendored code small and auditable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// An owned, JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable path + message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` serializes/deserializes as itself, so callers can work with
// raw JSON trees (e.g. golden-file comparison with numeric tolerances).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| DeError::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::I64(i) => Ok(*i as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected array, got {}", v.kind())))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected array of {LEN}, got {}",
                        s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

/// Types usable as JSON object keys.
pub trait MapKey: Sized + Ord {
    /// Render as an object key.
    fn to_key(&self) -> String;
    /// Parse back from an object key.
    fn from_key(k: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(k: &str) -> Result<Self, DeError> {
        Ok(k.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(k: &str) -> Result<Self, DeError> {
                k.parse()
                    .map_err(|_| DeError::custom(format!("bad integer key {k:?}")))
            }
        }
    )*};
}

impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom(format!("expected object, got {}", v.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

// ---- helpers used by derived code ----

/// Fetch and deserialize a required field from derived struct output.
pub fn __field<T: Deserialize>(m: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Err(DeError::custom(format!("missing field `{key}`"))),
    }
}

/// Fetch a `#[serde(default)]` field, falling back to `Default`.
pub fn __field_or_default<T: Deserialize + Default>(
    m: &[(String, Value)],
    key: &str,
) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

/// Fetch a `#[serde(default = "path")]` field, falling back to `path()`.
pub fn __field_or_else<T: Deserialize>(
    m: &[(String, Value)],
    key: &str,
    default: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Ok(default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert(3u16, 9u64);
        assert_eq!(BTreeMap::<u16, u64>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn errors_name_the_field() {
        let v = Value::Map(vec![("a".into(), Value::Str("nope".into()))]);
        let e = __field::<u32>(v.as_map().unwrap(), "a").unwrap_err();
        assert!(e.to_string().contains("`a`"));
        let e = __field::<u32>(v.as_map().unwrap(), "b").unwrap_err();
        assert!(e.to_string().contains("missing"));
    }
}
