//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored value-tree `serde` without depending on `syn`/`quote` (the build
//! environment has no crates.io access). The item is parsed directly from the
//! `proc_macro::TokenStream` and the impl is generated as source text, which
//! is parsed back into a token stream.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - structs with named fields, including generic ones (`StateInterval<S>`)
//! - tuple structs (newtypes like `SimTime(pub u64)` serialize transparently;
//!   wider tuples serialize as arrays)
//! - enums with unit variants (discriminants like `Send = 1` are accepted and
//!   ignored), struct variants, and tuple/newtype variants, using serde's
//!   externally-tagged representation
//! - field attributes `#[serde(default)]` and `#[serde(default = "path")]`

// The attribute walker uses `while … { …; break/panic }` as a readable
// "match the first token" idiom; clippy's never_loop objects.
#![allow(clippy::never_loop)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---- item model ----

struct Item {
    name: String,
    /// Verbatim tokens between `<` and `>` of the declaration (with bounds).
    generic_decl: String,
    /// Just the type-parameter idents, e.g. `["S"]`.
    generic_params: Vec<String>,
    /// Verbatim `where` clause predicates (without the keyword), if any.
    where_clause: String,
    kind: Kind,
}

enum Kind {
    /// Struct with named fields.
    Named(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: DefaultAttr,
}

enum DefaultAttr {
    None,
    /// `#[serde(default)]`
    Default,
    /// `#[serde(default = "path")]`
    Path(String),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Struct(Vec<Field>),
    Tuple(usize),
}

// ---- parsing ----

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    /// Skip attributes and doc comments, returning any `#[serde(...)]`
    /// default directive found among them.
    fn skip_attrs(&mut self) -> DefaultAttr {
        let mut out = DefaultAttr::None;
        while self.eat_punct('#') {
            // `#![...]` inner attrs don't occur in derive input; only `#[...]`.
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute near {other:?}"),
            };
            if let Some(attr) = parse_serde_attr(group.stream()) {
                out = attr;
            }
        }
        out
    }

    /// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
    fn skip_vis(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a top-level `,` (consumed) or end of stream,
    /// tracking `<`/`>` nesting so commas inside generics don't terminate.
    fn skip_until_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// If `stream` is the contents of a `serde(...)` attribute, extract the
/// default directive; returns `None` for non-serde attrs (doc, repr, ...).
fn parse_serde_attr(stream: TokenStream) -> Option<DefaultAttr> {
    let mut cur = Cursor::new(stream);
    if cur.peek_ident().as_deref() != Some("serde") {
        return None;
    }
    cur.pos += 1;
    let inner = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Some(DefaultAttr::None),
    };
    let mut cur = Cursor::new(inner);
    while let Some(word) = cur.peek_ident() {
        cur.pos += 1;
        if word == "default" {
            if cur.eat_punct('=') {
                match cur.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        let path = s.trim_matches('"').to_string();
                        return Some(DefaultAttr::Path(path));
                    }
                    other => panic!("serde_derive: expected path literal after `default =`, got {other:?}"),
                }
            }
            return Some(DefaultAttr::Default);
        }
        // Unknown serde directive (rename, skip, ...): not used in this
        // workspace; fail loudly rather than silently misbehave.
        panic!("serde_derive: unsupported serde attribute `{word}`");
    }
    Some(DefaultAttr::None)
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();

    let keyword = cur
        .peek_ident()
        .unwrap_or_else(|| panic!("serde_derive: expected `struct` or `enum`"));
    cur.pos += 1;
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    // Generics: verbatim decl between `<` `>` plus the bare param names.
    let mut generic_decl = String::new();
    let mut generic_params = Vec::new();
    if cur.eat_punct('<') {
        let mut depth = 1i32;
        let mut decl_toks: Vec<TokenTree> = Vec::new();
        loop {
            let t = cur
                .next()
                .unwrap_or_else(|| panic!("serde_derive: unterminated generics on {name}"));
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            decl_toks.push(t);
        }
        generic_decl = decl_toks
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        // Param names: the ident opening each top-level comma-separated
        // chunk, skipping lifetimes (`'a`) and const params.
        let mut depth = 0i32;
        let mut at_start = true;
        let mut i = 0usize;
        while i < decl_toks.len() {
            match &decl_toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => at_start = true,
                TokenTree::Punct(p) if p.as_char() == '\'' && at_start && depth == 0 => {
                    // lifetime param: skip the quote and its ident
                    i += 1;
                    at_start = false;
                }
                TokenTree::Ident(id) if at_start && depth == 0 => {
                    let s = id.to_string();
                    if s == "const" {
                        i += 1; // skip the const param's name too
                    } else {
                        generic_params.push(s);
                    }
                    at_start = false;
                }
                _ => at_start = false,
            }
            i += 1;
        }
    }

    // Optional where clause: collect predicates verbatim until the body.
    let mut where_clause = String::new();
    if cur.peek_ident().as_deref() == Some("where") {
        cur.pos += 1;
        let mut toks = Vec::new();
        while let Some(t) = cur.peek() {
            match t {
                TokenTree::Group(g)
                    if g.delimiter() == Delimiter::Brace
                        || g.delimiter() == Delimiter::Parenthesis =>
                {
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == ';' => break,
                _ => {
                    toks.push(cur.next().unwrap());
                }
            }
        }
        where_clause = toks
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
    }

    let kind = match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generic_decl,
        generic_params,
        where_clause,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let default = cur.skip_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_vis();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        if !cur.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        cur.skip_until_comma(); // the type itself is irrelevant to codegen
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut n = 0usize;
    while cur.peek().is_some() {
        cur.skip_attrs();
        if cur.peek().is_none() {
            break;
        }
        cur.skip_vis();
        cur.skip_until_comma();
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attrs();
        if cur.peek().is_none() {
            break;
        }
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.pos += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.pos += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= 1`) and the trailing comma.
        cur.skip_until_comma();
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- codegen ----

fn impl_header(item: &Item, trait_path: &str) -> String {
    let mut s = String::from("impl");
    if !item.generic_decl.is_empty() {
        s.push('<');
        s.push_str(&item.generic_decl);
        s.push('>');
    }
    s.push(' ');
    s.push_str(trait_path);
    s.push_str(" for ");
    s.push_str(&item.name);
    if !item.generic_params.is_empty() {
        s.push('<');
        s.push_str(&item.generic_params.join(", "));
        s.push('>');
    }
    let mut preds: Vec<String> = Vec::new();
    if !item.where_clause.is_empty() {
        preds.push(item.where_clause.clone());
    }
    for p in &item.generic_params {
        preds.push(format!("{p}: {trait_path}"));
    }
    if !preds.is_empty() {
        s.push_str(" where ");
        s.push_str(&preds.join(", "));
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{entries}])")
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(vec![{elems}])")
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Struct(fields) => {
                            let pats = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})),",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(vec![{entries}]))]),"
                            )
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let pats = (0..*n)
                                .map(|i| format!("x{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let elems: String = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({pats}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(vec![{elems}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let header = impl_header(item, "::serde::Deserialize");
    let body = match &item.kind {
        Kind::Named(fields) => {
            let field_lines: String = fields
                .iter()
                .map(|f| match &f.default {
                    DefaultAttr::None => {
                        format!("{0}: ::serde::__field(m, \"{0}\")?,", f.name)
                    }
                    DefaultAttr::Default => {
                        format!("{0}: ::serde::__field_or_default(m, \"{0}\")?,", f.name)
                    }
                    DefaultAttr::Path(p) => {
                        format!("{0}: ::serde::__field_or_else(m, \"{0}\", {p})?,", f.name)
                    }
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(format!(\"expected object for {name}, got {{}}\", v.kind())))?; \
                 ::std::result::Result::Ok({name} {{ {field_lines} }})"
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?,"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(format!(\"expected array for {name}, got {{}}\", v.kind())))?; \
                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(format!(\"expected array of {n} for {name}, got {{}}\", s.len()))); }} \
                 ::std::result::Result::Ok({name}({elems}))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let str_arm = format!(
                "::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{}}` for {name}\", other))), }},"
            );
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.shape, VariantShape::Unit))
                .collect();
            let map_arm = if tagged.is_empty() {
                String::new()
            } else {
                let tag_arms: String = tagged
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.shape {
                            VariantShape::Struct(fields) => {
                                let field_lines: String = fields
                                    .iter()
                                    .map(|f| match &f.default {
                                        DefaultAttr::None => format!(
                                            "{0}: ::serde::__field(m, \"{0}\")?,",
                                            f.name
                                        ),
                                        DefaultAttr::Default => format!(
                                            "{0}: ::serde::__field_or_default(m, \"{0}\")?,",
                                            f.name
                                        ),
                                        DefaultAttr::Path(p) => format!(
                                            "{0}: ::serde::__field_or_else(m, \"{0}\", {p})?,",
                                            f.name
                                        ),
                                    })
                                    .collect();
                                format!(
                                    "\"{vn}\" => {{ let m = inner.as_map().ok_or_else(|| ::serde::DeError::custom(format!(\"expected object for {name}::{vn}, got {{}}\", inner.kind())))?; ::std::result::Result::Ok({name}::{vn} {{ {field_lines} }}) }}"
                                )
                            }
                            VariantShape::Tuple(1) => format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                            ),
                            VariantShape::Tuple(n) => {
                                let elems: String = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&s[{i}])?,")
                                    })
                                    .collect();
                                format!(
                                    "\"{vn}\" => {{ let s = inner.as_seq().ok_or_else(|| ::serde::DeError::custom(format!(\"expected array for {name}::{vn}, got {{}}\", inner.kind())))?; if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(format!(\"expected array of {n} for {name}::{vn}, got {{}}\", s.len()))); }} ::std::result::Result::Ok({name}::{vn}({elems})) }}"
                                )
                            }
                            VariantShape::Unit => unreachable!(),
                        }
                    })
                    .collect();
                format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{ let (tag, inner) = &entries[0]; match tag.as_str() {{ {tag_arms} other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{}}` for {name}\", other))), }} }},"
                )
            };
            format!(
                "match v {{ {str_arm} {map_arm} other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"expected variant of {name}, got {{}}\", other.kind()))), }}"
            )
        }
    };
    format!(
        "{header} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
