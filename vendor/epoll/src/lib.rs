//! Offline stand-in for an epoll binding crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a dependency-free readiness layer over raw `libc` FFI — the same
//! pattern as the vendored rayon facade and the CLI's SIGINT handler. It
//! wraps exactly the five kernel facilities the serve reactor needs:
//!
//! - [`Poller`] — an `epoll(7)` instance: `add`/`modify`/`delete` register
//!   file descriptors with a caller-chosen `u64` token, [`Poller::wait`]
//!   blocks (with a millisecond timeout) and fills an [`Events`] buffer.
//!   Registration is **level-triggered**: a readable/writable fd keeps
//!   reporting until drained, so a consumer that stops mid-frame is
//!   re-notified on the next `wait` without edge-triggered bookkeeping.
//! - [`Waker`] — an `eventfd(2)` wrapper to interrupt a `wait` from any
//!   thread. [`Waker::notify`] is a single `write(2)` and therefore
//!   async-signal-safe; [`notify_raw`] exposes the same call on a raw fd
//!   for signal handlers that can only stash an `i32` in a static.
//! - [`set_nonblocking`] — `fcntl(F_SETFL, O_NONBLOCK)` on an arbitrary
//!   fd, for sockets accepted or connected through std (std only exposes
//!   nonblocking mode on the concrete socket types).
//!
//! All `unsafe` in the workspace's IO path lives here, behind safe
//! wrappers: every syscall result is checked and surfaced as
//! [`std::io::Error`], fds are closed on drop, and the `epoll_event`
//! layout matches the kernel ABI (packed on x86-64, natural alignment
//! elsewhere — the same `cfg` split libc uses).
//!
//! Linux-only by construction, like the rest of the serve layer's
//! `AsRawFd` plumbing.

use std::io;
use std::os::unix::io::RawFd;

// Raw syscall surface. Numeric constants are the asm-generic Linux ABI
// values shared by x86-64 and aarch64 (the two targets this workspace
// builds on).
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// Kernel `struct epoll_event`. x86-64 packs it to 12 bytes (a quirk
/// preserved since the 32-bit ABI); every other architecture uses
/// natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What to watch a registered fd for. Combine with [`Interest::and`];
/// error/hang-up conditions are always reported regardless of interest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Wake when the fd has bytes to read (or the peer closed).
    pub const READ: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Wake when the fd can accept writes without blocking.
    pub const WRITE: Interest = Interest(EPOLLOUT);
    /// Union of two interests.
    pub fn and(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
    /// True if this interest includes readability.
    pub fn is_read(self) -> bool {
        self.0 & EPOLLIN != 0
    }
    /// True if this interest includes writability.
    pub fn is_write(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    bits: u32,
}

impl Event {
    /// The fd has data (or EOF, or an error — anything a `read` call
    /// would observe without blocking).
    pub fn readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }
    /// A `write` would make progress (or fail immediately).
    pub fn writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }
    /// The peer hung up or the fd errored; the connection is dead even
    /// if no bytes are pending.
    pub fn is_error(&self) -> bool {
        self.bits & (EPOLLHUP | EPOLLERR) != 0
    }
}

/// Fixed-capacity buffer `wait` fills; reuse it across calls to keep the
/// event loop allocation-free.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Buffer holding at most `cap` events per `wait` (more stay queued
    /// in the kernel and surface on the next call — level triggering
    /// makes truncation harmless).
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the most recent `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            token: e.data,
            bits: e.events,
        })
    }

    /// Number of events delivered by the most recent `wait`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the most recent `wait` timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance. Closed on drop.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with `token`; level-triggered.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest.0)
    }

    /// Change the interest set (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest.0)
    }

    /// Remove a registered fd. Safe to call on an already-closed fd
    /// (the error is surfaced, callers usually ignore it — closing an
    /// fd deregisters it anyway).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready or `timeout_ms`
    /// elapses (`-1` blocks indefinitely, `0` polls). Returns the number
    /// of events written into `events`. A signal interrupting the wait
    /// reports as zero events rather than an error — reactor loops treat
    /// both as a tick.
    pub fn wait(&self, events: &mut Events, timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poller`]: an eventfd registered like any
/// other fd. `notify` from anywhere (including a signal handler — it is
/// one `write(2)`); the owning loop calls `drain` when the token fires.
/// The same waker may be registered in several pollers at once (the
/// serve layer points every event loop at one shutdown waker).
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Fresh nonblocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with a [`Poller`] (readable when notified).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wake every poller watching this waker. Never blocks: if the
    /// counter is already saturated the pending wakeup suffices.
    pub fn notify(&self) {
        notify_raw(self.fd);
    }

    /// Reset the counter so the (level-triggered) fd stops reporting
    /// readable. Call from the loop that owns the registration.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// [`Waker::notify`] on a raw eventfd. Async-signal-safe (one `write`);
/// exists so a signal handler holding only an `AtomicI32` fd can kick
/// the reactor without constructing a `Waker`.
pub fn notify_raw(fd: RawFd) {
    let one: u64 = 1;
    let buf = one.to_ne_bytes();
    unsafe { write(fd, buf.as_ptr(), buf.len()) };
}

/// Switch any fd to nonblocking mode (std only exposes this on the
/// concrete listener/stream types, not on `AsRawFd` generically).
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn socket_readability_round_trip() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing written yet: a zero-timeout wait reports nothing.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        assert!(events.is_empty());

        a.write_all(b"ping").unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable());

        // Level-triggered: still readable until drained.
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 1);
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn peer_close_reports_readable_for_eof() {
        let (a, b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Events::with_capacity(4);
        assert!(poller.wait(&mut events, 1000).unwrap() >= 1);
        assert!(events.iter().next().unwrap().readable());
    }

    #[test]
    fn modify_switches_between_read_and_write_interest() {
        let (a, b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        // A fresh socket is writable but not readable.
        poller.add(b.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Events::with_capacity(4);
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        poller
            .modify(b.as_raw_fd(), 4, Interest::READ.and(Interest::WRITE))
            .unwrap();
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 4);
        assert!(ev.writable());
        assert!(!ev.is_error());
        poller.delete(b.as_raw_fd()).unwrap();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
        drop(a);
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.raw_fd(), 99, Interest::READ).unwrap();

        let w = waker.clone();
        let t = std::thread::spawn(move || w.notify());
        let mut events = Events::with_capacity(4);
        assert_eq!(poller.wait(&mut events, 2000).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, 99);
        t.join().unwrap();

        waker.drain();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        // notify_raw matches Waker::notify.
        notify_raw(waker.raw_fd());
        assert_eq!(poller.wait(&mut events, 1000).unwrap(), 1);
        waker.drain();
    }

    #[test]
    fn set_nonblocking_makes_reads_would_block() {
        let (_a, mut b) = UnixStream::pair().unwrap();
        set_nonblocking(b.as_raw_fd()).unwrap();
        let mut buf = [0u8; 8];
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn one_waker_wakes_multiple_pollers() {
        let waker = Waker::new().unwrap();
        let p1 = Poller::new().unwrap();
        let p2 = Poller::new().unwrap();
        p1.add(waker.raw_fd(), 1, Interest::READ).unwrap();
        p2.add(waker.raw_fd(), 2, Interest::READ).unwrap();
        waker.notify();
        let mut events = Events::with_capacity(2);
        assert_eq!(p1.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(p2.wait(&mut events, 1000).unwrap(), 1);
    }
}
