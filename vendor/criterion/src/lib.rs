//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal wall-clock benchmarking harness that is source-compatible with the
//! subset of criterion the `ibp-bench` targets use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `throughput`, `bench_function`, and `Bencher::{iter, iter_batched}`.
//!
//! There is no statistical analysis, outlier rejection, or HTML report —
//! each benchmark runs `sample_size` timed samples and prints the mean and
//! min per-iteration time. Good enough to catch order-of-magnitude
//! regressions and to keep `cargo bench` working end to end.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (subset).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per measurement (subset; ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Benchmark driver handed to the closures registered via `bench_function`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark: `sample_size` samples of one iteration each.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up sample, untimed, to populate caches and lazy statics.
        let mut warm = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warm);

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters_total = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per_iter = b.elapsed / (b.iters.max(1) as u32);
            total += b.elapsed;
            iters_total += b.iters;
            if per_iter < min {
                min = per_iter;
            }
        }
        let mean = total / (iters_total.max(1) as u32);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: mean {:?}, min {:?} over {} samples{}",
            self.name, id, mean, min, self.sample_size, rate
        );
        self
    }

    /// End the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Define a benchmark group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            runs += 1;
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(runs, 4); // warm-up + 3 samples
    }
}
