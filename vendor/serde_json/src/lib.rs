//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back into it. Implements the API subset this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`from_str`], and a
//! displayable [`Error`]. JSON is explicitly not on any hot path here (see
//! `ibp-trace::io`), so the implementation favours clarity over speed.

use serde::{Deserialize, Serialize, Value};
use std::io::Write;

/// JSON serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialise `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialise `value` to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Serialise `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

/// Parse `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---- emitter ----

fn emit(v: &Value, indent: Option<usize>, level: usize, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            // `{:?}` prints the shortest decimal that round-trips, and always
            // includes a `.` or exponent, so the value re-parses as a float.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit(item, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require the low half
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(&rest[..utf8_len(b).min(rest.len())])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let s = "he said \"hi\"\n\ttab\\slash \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(), "A\u{1F600}");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn to_writer_writes_compact_json() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u8, 2]).unwrap();
        assert_eq!(std::str::from_utf8(&buf).unwrap(), "[1,2]");
    }
}
