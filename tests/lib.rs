//! Integration-test helper crate (tests live in `tests/tests/`).
//!
//! The library part hosts the golden-exhibit comparison machinery so it
//! can be unit-tested without running the (slow) exhibit sweeps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod golden {
    //! Golden-file comparison with per-metric tolerances.
    //!
    //! Snapshots live in `tests/golden/*.json` and pin the exhibit rows
    //! at the canonical seed. Comparison rules:
    //!
    //! - integers (counts, rank numbers, bytes) must match **exactly**;
    //! - floats (percentages, µs values) must agree to a **0.1%**
    //!   relative tolerance (absolute 1e-9 near zero), absorbing libm
    //!   differences across platforms without letting regressions in;
    //! - strings, booleans, array lengths and object keys must match
    //!   exactly.
    //!
    //! Regenerate the snapshots by rerunning the suite with
    //! `IBP_UPDATE_GOLDEN=1`.

    use serde::{Serialize, Value};
    use std::path::PathBuf;

    /// Relative tolerance for float comparisons (0.1%).
    pub const REL_TOL: f64 = 1e-3;
    /// Absolute tolerance for floats that sit at/near zero.
    pub const ABS_TOL: f64 = 1e-9;

    /// The directory holding the golden snapshots.
    pub fn golden_dir() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
    }

    /// Compare `actual` against the snapshot `name`, panicking with
    /// every mismatch. With `IBP_UPDATE_GOLDEN` set, rewrites the
    /// snapshot instead and always passes.
    pub fn assert_matches_golden<T: Serialize>(name: &str, actual: &T) {
        let actual = actual.to_value();
        let path = golden_dir().join(name);
        if std::env::var_os("IBP_UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            let json = serde_json::to_string_pretty(&actual).expect("serialize golden");
            std::fs::write(&path, json + "\n").unwrap_or_else(|e| {
                panic!("writing golden snapshot {}: {e}", path.display())
            });
            eprintln!("updated golden snapshot {}", path.display());
            return;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); regenerate with \
                 IBP_UPDATE_GOLDEN=1 cargo test -p ibpower-integration-tests golden",
                path.display()
            )
        });
        let expected: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
        let mut mismatches = Vec::new();
        diff("$", &expected, &actual, &mut mismatches);
        assert!(
            mismatches.is_empty(),
            "{name}: {} mismatch(es) vs golden snapshot:\n  {}",
            mismatches.len(),
            mismatches.join("\n  ")
        );
    }

    /// Compare `actual` **byte-for-byte** against the text snapshot
    /// `name` — no tolerances: this pins exact output contracts like
    /// the Prometheus metrics exposition, where a renamed metric or
    /// reordered line is a breaking change for downstream scrape
    /// configs. With `IBP_UPDATE_GOLDEN` set, rewrites the snapshot
    /// instead and always passes.
    pub fn assert_matches_golden_text(name: &str, actual: &str) {
        let path = golden_dir().join(name);
        if std::env::var_os("IBP_UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&path, actual).unwrap_or_else(|e| {
                panic!("writing golden snapshot {}: {e}", path.display())
            });
            eprintln!("updated golden snapshot {}", path.display());
            return;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); regenerate with \
                 IBP_UPDATE_GOLDEN=1 cargo test -p ibpower-integration-tests",
                path.display()
            )
        });
        if let Some(msg) = first_text_mismatch(&expected, actual) {
            panic!(
                "{name}: output differs from golden snapshot ({msg}); if the \
                 change is intentional, regenerate with IBP_UPDATE_GOLDEN=1"
            );
        }
    }

    /// The first line-level difference between two exact-match texts,
    /// `None` when they are byte-identical. Factored out of
    /// [`assert_matches_golden_text`] so the diff logic is unit-testable
    /// without touching the filesystem or the environment.
    pub fn first_text_mismatch(expected: &str, actual: &str) -> Option<String> {
        if expected == actual {
            return None;
        }
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                return Some(format!("line {}: expected {e:?}, got {a:?}", i + 1));
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            return Some(format!("line count {el} vs {al}"));
        }
        // Same lines, different bytes: trailing whitespace or newline.
        Some("texts differ only in trailing whitespace/newlines".to_string())
    }

    /// `true` if two numeric values agree under the float tolerance.
    pub fn floats_agree(a: f64, b: f64) -> bool {
        let diff = (a - b).abs();
        diff <= ABS_TOL || diff <= REL_TOL * a.abs().max(b.abs())
    }

    fn as_f64(v: &Value) -> Option<f64> {
        match v {
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    fn is_int(v: &Value) -> bool {
        matches!(v, Value::U64(_) | Value::I64(_))
    }

    /// Recursively compare `expected` vs `actual`, recording every
    /// mismatch with its JSONPath-style location.
    pub fn diff(path: &str, expected: &Value, actual: &Value, out: &mut Vec<String>) {
        match (expected, actual) {
            // Counts compare exactly; a float on either side switches
            // the pair to tolerance mode.
            (e, a) if is_int(e) && is_int(a) => {
                if as_f64(e) != as_f64(a) {
                    out.push(format!("{path}: expected {e:?}, got {a:?} (exact)"));
                }
            }
            (e, a) if as_f64(e).is_some() && as_f64(a).is_some() => {
                let (x, y) = (as_f64(e).unwrap(), as_f64(a).unwrap());
                if !floats_agree(x, y) {
                    out.push(format!("{path}: expected {x}, got {y} (>{REL_TOL:e} rel)"));
                }
            }
            (Value::Seq(e), Value::Seq(a)) => {
                if e.len() != a.len() {
                    out.push(format!("{path}: length {} vs {}", e.len(), a.len()));
                    return;
                }
                for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                    diff(&format!("{path}[{i}]"), ev, av, out);
                }
            }
            (Value::Map(e), Value::Map(a)) => {
                let ekeys: Vec<&str> = e.iter().map(|(k, _)| k.as_str()).collect();
                let akeys: Vec<&str> = a.iter().map(|(k, _)| k.as_str()).collect();
                if ekeys != akeys {
                    out.push(format!("{path}: keys {ekeys:?} vs {akeys:?}"));
                    return;
                }
                for ((k, ev), (_, av)) in e.iter().zip(a) {
                    diff(&format!("{path}.{k}"), ev, av, out);
                }
            }
            (e, a) => {
                if e != a {
                    out.push(format!("{path}: expected {e:?}, got {a:?}"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::golden::{diff, floats_agree};
    use serde::Value;

    fn v(s: &str) -> Value {
        serde_json::from_str(s).expect("test JSON")
    }

    fn mismatches(e: &str, a: &str) -> Vec<String> {
        let mut out = Vec::new();
        diff("$", &v(e), &v(a), &mut out);
        out
    }

    #[test]
    fn integers_compare_exactly() {
        assert!(mismatches("[1, 2, 3]", "[1, 2, 3]").is_empty());
        assert_eq!(mismatches("[1, 2, 3]", "[1, 2, 4]").len(), 1);
    }

    #[test]
    fn floats_get_relative_tolerance() {
        assert!(floats_agree(100.0, 100.05));
        assert!(!floats_agree(100.0, 100.2));
        assert!(floats_agree(0.0, 1e-10));
        assert!(mismatches("{\"pct\": 41.5}", "{\"pct\": 41.52}").is_empty());
        assert_eq!(
            mismatches("{\"pct\": 41.5}", "{\"pct\": 42.5}").len(),
            1
        );
    }

    #[test]
    fn int_vs_float_uses_tolerance() {
        // A metric that serializes as `3` in one run and `3.0000001`
        // in another is still the same percentage.
        assert!(mismatches("[3]", "[3.0000001]").is_empty());
    }

    #[test]
    fn text_mismatch_reports_the_first_differing_line() {
        use super::golden::first_text_mismatch;
        assert_eq!(first_text_mismatch("a\nb\n", "a\nb\n"), None);
        let m = first_text_mismatch("a\nb\n", "a\nc\n").expect("differs");
        assert!(m.contains("line 2"), "{m}");
        let m = first_text_mismatch("a\n", "a\nb\n").expect("differs");
        assert!(m.contains("line count"), "{m}");
        // Exact-byte contract: a missing trailing newline is a mismatch.
        assert!(first_text_mismatch("a\n", "a").is_some());
    }

    #[test]
    fn structure_mismatches_are_reported_with_paths() {
        let m = mismatches("{\"rows\": [{\"n\": 8}]}", "{\"rows\": [{\"n\": 9}]}");
        assert_eq!(m.len(), 1);
        assert!(m[0].starts_with("$.rows[0].n"), "{m:?}");
        assert_eq!(mismatches("[1]", "[1, 2]").len(), 1);
        assert_eq!(mismatches("{\"a\": 1}", "{\"b\": 1}").len(), 1);
    }
}
