//! Reproducibility: every stage of the pipeline must be bit-for-bit
//! deterministic given a seed, and sensitive to seed changes.

use ibp_analysis::{run_on_trace, RunConfig};
use ibp_core::{annotate_trace, PowerConfig};
use ibp_network::{replay, ReplayOptions, SimParams};
use ibp_simcore::SimDuration;
use ibp_workloads::{Alya, AppKind, Workload};

fn trace(seed: u64) -> ibp_trace::Trace {
    Alya {
        iterations: 30,
        ..Default::default()
    }
    .generate(8, seed)
}

#[test]
fn generation_is_deterministic() {
    assert_eq!(trace(42), trace(42));
    assert_ne!(trace(42), trace(43));
}

#[test]
fn annotation_is_deterministic() {
    let t = trace(1);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let a = annotate_trace(&t, &cfg);
    let b = annotate_trace(&t, &cfg);
    assert_eq!(a, b);
}

#[test]
fn replay_is_deterministic() {
    let t = trace(2);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let a = replay(&t, None, &params, &opts).expect("replay");
    let b = replay(&t, None, &params, &opts).expect("replay");
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.rank_finish, b.rank_finish);
    assert_eq!(a.fabric.messages, b.fabric.messages);
    assert_eq!(a.fabric.contended, b.fabric.contended);
}

#[test]
fn full_experiment_is_deterministic() {
    let t = trace(3);
    let cfg = RunConfig::new(20.0, 0.05);
    let a = run_on_trace(&t, AppKind::Alya, &cfg);
    let b = run_on_trace(&t, AppKind::Alya, &cfg);
    assert_eq!(a.power_saving_pct, b.power_saving_pct);
    assert_eq!(a.slowdown_pct, b.slowdown_pct);
    assert_eq!(a.hit_rate_pct, b.hit_rate_pct);
    assert_eq!(a.baseline_exec, b.baseline_exec);
}

#[test]
fn routing_seed_changes_timing_but_not_traffic() {
    // Random routing (Table II) is seeded: a different seed may change
    // contention timing, never the transported traffic.
    let t = trace(4);
    let params = SimParams::paper();
    let a = replay(
        &t,
        None,
        &params,
        &ReplayOptions {
            seed: 1,
            record_timelines: false,
            ..ReplayOptions::default()
        },
    ).expect("replay");
    let b = replay(
        &t,
        None,
        &params,
        &ReplayOptions {
            seed: 2,
            record_timelines: false,
            ..ReplayOptions::default()
        },
    ).expect("replay");
    assert_eq!(a.fabric.messages, b.fabric.messages);
    assert_eq!(a.fabric.bytes, b.fabric.bytes);
}
