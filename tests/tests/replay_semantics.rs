//! Replay-engine semantics across crates: property tests on random (but
//! consistent) traces, plus targeted MPI-semantics scenarios.

use ibp_core::{annotate_trace_jobs, PowerConfig};
use ibp_network::{
    replay, replay_with_scratch, FaultConfig, ReplayOptions, ReplayScratch, SimParams,
};
use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::{MpiOp, Trace, TraceBuilder};
use proptest::prelude::*;

/// Generate a random, *consistent* SPMD trace: every rank executes the
/// same schedule of collectives and symmetric ring exchanges, with
/// rank-specific compute gaps.
fn random_spmd_trace(nprocs: u32, schedule: &[u8], seed: u64) -> Trace {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new("random-spmd", nprocs);
    // Pre-draw gap matrix so ranks differ but the schedule is shared.
    for r in 0..nprocs {
        let mut rank_rng = DetRng::seed_from_u64(seed ^ (u64::from(r) << 32));
        for &s in schedule {
            b.compute(
                r,
                SimDuration::from_us_f64(rank_rng.uniform_range(1.0, 500.0)),
            );
            let op = match s % 6 {
                0 => MpiOp::Allreduce { bytes: 64 },
                1 => MpiOp::Barrier,
                2 => MpiOp::Bcast {
                    root: s as u32 % nprocs,
                    bytes: 1024,
                },
                3 => MpiOp::Reduce {
                    root: (s as u32 + 1) % nprocs,
                    bytes: 512,
                },
                4 => MpiOp::Sendrecv {
                    to: (r + 1) % nprocs,
                    send_bytes: 4096,
                    from: (r + nprocs - 1) % nprocs,
                    recv_bytes: 4096,
                },
                _ => MpiOp::Allgather { bytes: 128 },
            };
            b.op(r, op);
        }
    }
    let _ = &mut rng;
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any consistent SPMD trace replays to completion (no deadlock) with
    /// every rank finishing no earlier than its own compute total.
    #[test]
    fn spmd_traces_replay_to_completion(
        nprocs in 2u32..17,
        schedule in proptest::collection::vec(any::<u8>(), 1..40),
        seed in any::<u64>(),
    ) {
        let trace = random_spmd_trace(nprocs, &schedule, seed);
        trace.validate().unwrap();
        let result = replay(&trace, None, &SimParams::paper(), &ReplayOptions::default()).expect("replay");
        for (r, finish) in result.rank_finish.iter().enumerate() {
            let own = trace.ranks[r].total_compute();
            prop_assert!(
                finish.as_ns() >= own.as_ns(),
                "rank {r} finished before its own compute"
            );
        }
        prop_assert!(result.exec_time >= SimDuration::ZERO);
    }

    /// Execution time is monotone under added compute: inflating one
    /// rank's gaps can never shorten the run.
    #[test]
    fn exec_time_monotone_in_compute(
        nprocs in 2u32..9,
        schedule in proptest::collection::vec(any::<u8>(), 2..20),
        seed in any::<u64>(),
        extra_us in 1u64..5_000,
    ) {
        let base = random_spmd_trace(nprocs, &schedule, seed);
        let mut inflated = base.clone();
        // Inflate every gap on rank 0.
        for ev in &mut inflated.ranks[0].events {
            ev.compute_before += SimDuration::from_us(extra_us);
        }
        let params = SimParams::paper();
        let opts = ReplayOptions::default();
        let a = replay(&base, None, &params, &opts).expect("replay");
        let b = replay(&inflated, None, &params, &opts).expect("replay");
        prop_assert!(
            b.exec_time >= a.exec_time,
            "adding compute shortened the run: {} -> {}",
            a.exec_time,
            b.exec_time
        );
    }
}

/// Like [`random_spmd_trace`] but with a per-step payload size:
/// exercises the replay scratch's collective-schedule cache across its
/// full key space (collective kind × root × payload bytes × nprocs).
fn random_sized_trace(nprocs: u32, schedule: &[(u8, u32)], seed: u64) -> Trace {
    let mut b = TraceBuilder::new("random-sized", nprocs);
    for r in 0..nprocs {
        let mut rank_rng = DetRng::seed_from_u64(seed ^ (u64::from(r) << 32));
        for &(s, sz) in schedule {
            let bytes = u64::from(sz) + 1;
            b.compute(
                r,
                SimDuration::from_us_f64(rank_rng.uniform_range(1.0, 200.0)),
            );
            let op = match s % 6 {
                0 => MpiOp::Allreduce { bytes },
                1 => MpiOp::Barrier,
                2 => MpiOp::Bcast { root: s as u32 % nprocs, bytes },
                3 => MpiOp::Reduce { root: (s as u32 + 1) % nprocs, bytes },
                4 => MpiOp::Sendrecv {
                    to: (r + 1) % nprocs,
                    send_bytes: bytes,
                    from: (r + nprocs - 1) % nprocs,
                    recv_bytes: bytes,
                },
                _ => MpiOp::Allgather { bytes },
            };
            b.op(r, op);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The collective-schedule cache is semantically invisible: pushing a
    /// stream of differently-shaped traces through ONE warm scratch —
    /// annotated, with fault injection live — produces results identical
    /// in every field to a fresh scratch per trace. A memoized expansion
    /// leaking across (collective, root, bytes, nprocs) keys, or any
    /// stale arena state surviving `prepare`, breaks this immediately.
    #[test]
    fn warm_schedule_cache_is_byte_identical(
        nprocs in 2u32..13,
        schedules in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), 0u32..(1 << 18)), 1..16),
            2..4,
        ),
        seed in any::<u64>(),
        fault_rate in 0.0f64..6.0,
    ) {
        let params = SimParams::paper();
        let opts = ReplayOptions {
            faults: (fault_rate > 0.01).then(|| FaultConfig::with_rate(seed, fault_rate)),
            ..ReplayOptions::default()
        };
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let mut warm = ReplayScratch::new();
        for (i, sched) in schedules.iter().enumerate() {
            // Vary the rank count per trace so the warm scratch also
            // crosses nprocs boundaries between runs.
            let n = 2 + (nprocs + i as u32) % 11;
            let trace = random_sized_trace(n, sched, seed ^ (i as u64));
            trace.validate().unwrap();
            let ann = annotate_trace_jobs(&trace, &cfg, 1);
            let a = replay_with_scratch(&trace, Some(&ann), &params, &opts, &mut warm)
                .expect("warm replay");
            let b = replay_with_scratch(
                &trace, Some(&ann), &params, &opts, &mut ReplayScratch::new(),
            )
            .expect("fresh replay");
            prop_assert_eq!(a.exec_time, b.exec_time);
            prop_assert_eq!(&a.rank_finish, &b.rank_finish);
            prop_assert_eq!(&a.link_low, &b.link_low);
            prop_assert_eq!(&a.link_deep, &b.link_deep);
            prop_assert_eq!(&a.link_transition, &b.link_transition);
            prop_assert_eq!(&a.link_sleeps, &b.link_sleeps);
            prop_assert_eq!(a.fabric, b.fabric);
            prop_assert_eq!(a.faults, b.faults);
        }
    }
}

#[test]
fn bcast_reaches_all_ranks_after_root_compute() {
    // Root computes 10 ms then broadcasts; everyone's finish reflects the
    // root's compute (the broadcast cannot complete earlier).
    let n = 8;
    let mut b = TraceBuilder::new("bcast", n);
    b.compute(0, SimDuration::from_ms(10));
    for r in 0..n {
        b.op(r, MpiOp::Bcast { root: 0, bytes: 1 << 16 });
    }
    let result = replay(
        &b.build(),
        None,
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    for (r, f) in result.rank_finish.iter().enumerate() {
        assert!(
            f.as_us_f64() >= 10_000.0,
            "rank {r} finished at {f} before the root's data existed"
        );
    }
}

#[test]
fn reduce_waits_for_slowest_contributor() {
    let n = 8;
    let mut b = TraceBuilder::new("reduce", n);
    b.compute(5, SimDuration::from_ms(7)); // rank 5 is late
    for r in 0..n {
        b.op(r, MpiOp::Reduce { root: 0, bytes: 4096 });
    }
    let result = replay(
        &b.build(),
        None,
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    assert!(
        result.rank_finish[0].as_us_f64() >= 7_000.0,
        "root finished before the late contributor: {}",
        result.rank_finish[0]
    );
    // Non-ancestors of rank 5 in the binomial tree may finish early —
    // that's correct collective semantics (no global barrier in reduce).
    assert!(result.rank_finish[7].as_us_f64() < 7_000.0);
}

#[test]
fn alltoall_transports_n_squared_messages() {
    let n = 6u32;
    let mut b = TraceBuilder::new("a2a", n);
    for r in 0..n {
        b.op(r, MpiOp::Alltoall { bytes: 2048 });
    }
    let result = replay(
        &b.build(),
        None,
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    assert_eq!(result.fabric.messages, u64::from(n) * u64::from(n - 1));
}

#[test]
fn wait_enforces_request_completion_time() {
    // Rank 0 posts an Irecv early, computes, then waits; the wait must
    // not complete before the (late) sender's message arrives.
    let mut b = TraceBuilder::new("wait", 2);
    let req = b.irecv(0, 1, 1 << 20);
    b.compute(0, SimDuration::from_us(10));
    b.op(0, MpiOp::Wait { req });
    b.compute(1, SimDuration::from_ms(5)); // sender is busy 5 ms
    b.op(1, MpiOp::Send { to: 0, bytes: 1 << 20 });
    let result = replay(
        &b.build(),
        None,
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    assert!(
        result.rank_finish[0].as_us_f64() > 5_000.0,
        "wait returned before the message existed: {}",
        result.rank_finish[0]
    );
}

#[test]
fn message_ordering_is_fifo_per_pair() {
    // Two back-to-back sends with different sizes: the receiver's first
    // recv matches the first (large) send even though the second (small)
    // one would "arrive" earlier if reordered.
    let mut b = TraceBuilder::new("fifo", 2);
    b.op(0, MpiOp::Send { to: 1, bytes: 4 << 20 });
    b.op(0, MpiOp::Send { to: 1, bytes: 64 });
    b.op(1, MpiOp::Recv { from: 0, bytes: 4 << 20 });
    // The first recv's completion must dominate the big serialization.
    b.op(1, MpiOp::Recv { from: 0, bytes: 64 });
    let result = replay(
        &b.build(),
        None,
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    let serial_big = SimParams::paper().serialize(4 << 20);
    assert!(
        result.rank_finish[1].as_ns() >= serial_big.as_ns(),
        "FIFO violated"
    );
}
