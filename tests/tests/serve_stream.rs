//! Streaming determinism across session boundaries (DESIGN.md §12).
//!
//! Property: split any paper workload's event stream at an *arbitrary*
//! point, snapshot the session, restore into a fresh session, and
//! replay the remainder — the concatenated directives and final stats
//! must be byte-identical to the unbroken run, which in turn must match
//! the offline `annotate_rank` golden path. Any batch size, any split
//! point, all five paper applications.

use ibp_core::{annotate_rank, LaneDirective, PowerConfig, RankAnnotation, RankStats};
use ibp_serve::Session;
use ibp_workloads::AppKind;
use proptest::prelude::*;
use std::sync::OnceLock;

struct AppStream {
    name: &'static str,
    events: Vec<(u16, u64)>,
    final_compute_ns: u64,
    golden: RankAnnotation,
}

/// One rank's wire-level event stream plus its offline golden
/// annotation, per paper app. Generated once — trace synthesis
/// dominates the property's cost otherwise.
fn streams() -> &'static Vec<AppStream> {
    static STREAMS: OnceLock<Vec<AppStream>> = OnceLock::new();
    STREAMS.get_or_init(|| {
        let cfg = PowerConfig::default();
        AppKind::ALL
            .iter()
            .map(|app| {
                let w = app.workload();
                let nprocs = w.paper_procs()[0];
                let trace = w.generate(nprocs, 1302);
                let rank = &trace.ranks[0];
                AppStream {
                    name: app.name(),
                    events: rank
                        .call_stream()
                        .map(|(call, gap)| (call.id(), gap.as_ns()))
                        .collect(),
                    final_compute_ns: rank.final_compute.as_ns(),
                    golden: annotate_rank(rank, &cfg),
                }
            })
            .collect()
    })
}

/// Stream `events` through a session in `batch`-sized frames,
/// snapshotting + restoring at `split` (None = unbroken), and return
/// the full directive stream plus final stats.
fn run_split(
    events: &[(u16, u64)],
    final_compute_ns: u64,
    batch: usize,
    split: Option<usize>,
) -> (Vec<LaneDirective>, RankStats) {
    let mut sess = Session::open(0, PowerConfig::default());
    let mut directives = Vec::new();
    let (head, tail) = events.split_at(split.unwrap_or(events.len()));
    for chunk in head.chunks(batch) {
        directives.extend(sess.apply(chunk).1);
    }
    if split.is_some() {
        let snap = sess.snapshot_bytes();
        sess = Session::restore(&snap).expect("snapshot restores");
    }
    for chunk in tail.chunks(batch) {
        directives.extend(sess.apply(chunk).1);
    }
    let (last, _, stats) = sess.close(final_compute_ns);
    directives.extend(last);
    (directives, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splitting the stream anywhere, at any batch size, is invisible:
    /// directives and stats equal the unbroken run *and* the offline
    /// golden annotation, for every paper app.
    #[test]
    fn split_snapshot_restore_is_byte_identical(
        app_idx in 0usize..AppKind::ALL.len(),
        split_frac in 0.0f64..=1.0,
        batch in 1usize..128,
    ) {
        let s = &streams()[app_idx];
        let split = ((s.events.len() as f64 * split_frac) as usize).min(s.events.len());

        let (unbroken, unbroken_stats) =
            run_split(&s.events, s.final_compute_ns, batch, None);
        let (spliced, spliced_stats) =
            run_split(&s.events, s.final_compute_ns, batch, Some(split));

        prop_assert_eq!(&unbroken, &s.golden.directives, "{}: unbroken != golden", s.name);
        prop_assert_eq!(&unbroken_stats, &s.golden.stats, "{}: unbroken stats != golden", s.name);
        prop_assert_eq!(&spliced, &unbroken, "{}: split at {} diverged", s.name, split);
        prop_assert_eq!(&spliced_stats, &unbroken_stats, "{}: split stats diverged", s.name);
    }

    /// Two consecutive splits (snapshot chains) are equally invisible.
    #[test]
    fn double_split_is_byte_identical(
        app_idx in 0usize..AppKind::ALL.len(),
        first in 0.0f64..=1.0,
        second in 0.0f64..=1.0,
        batch in 1usize..64,
    ) {
        let s = &streams()[app_idx];
        let cut_a = ((s.events.len() as f64 * first.min(second)) as usize).min(s.events.len());
        let cut_b = ((s.events.len() as f64 * first.max(second)) as usize).min(s.events.len());

        let mut sess = Session::open(0, PowerConfig::default());
        let mut directives = Vec::new();
        for (i, part) in [&s.events[..cut_a], &s.events[cut_a..cut_b], &s.events[cut_b..]]
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                let snap = sess.snapshot_bytes();
                sess = Session::restore(&snap).expect("snapshot restores");
            }
            for chunk in part.chunks(batch) {
                directives.extend(sess.apply(chunk).1);
            }
        }
        let (last, _, stats) = sess.close(s.final_compute_ns);
        directives.extend(last);

        prop_assert_eq!(&directives, &s.golden.directives, "{}: chained splits diverged", s.name);
        prop_assert_eq!(&stats, &s.golden.stats, "{}: chained-split stats diverged", s.name);
    }
}
