//! Golden-exhibit regression suite: Table I/III/IV and Figs. 7–9 rows
//! at the canonical seed, pinned as JSON snapshots in `tests/golden/`.
//!
//! All tests share one [`SweepEngine`] (worker count from `IBP_JOBS`),
//! so CI can run the whole suite under different job counts and assert
//! the snapshots still match — the engine's determinism guarantee made
//! into a regression test. Figures and Table III run on a grid capped
//! at 16 ranks to keep the suite tractable under the debug profile;
//! Table I (trace generation only) and Table IV (16 ranks by
//! definition) use the full paper grid.
//!
//! Regenerate after an intentional model change with:
//! `IBP_UPDATE_GOLDEN=1 cargo test -p ibpower-integration-tests golden`

use ibp_analysis::exhibits::{self, SEED};
use ibp_analysis::{ExhibitGrid, SweepEngine, SweepOptions};
use ibpower_integration_tests::golden::assert_matches_golden;
use std::sync::OnceLock;

fn engine() -> &'static SweepEngine {
    static ENGINE: OnceLock<SweepEngine> = OnceLock::new();
    ENGINE.get_or_init(|| SweepEngine::new(SweepOptions::from_env()))
}

/// The capped grid used by the replay-heavy exhibits.
fn small_grid() -> ExhibitGrid {
    ExhibitGrid::capped(16)
}

#[test]
fn golden_table1() {
    let rows = exhibits::table1(engine(), &ExhibitGrid::paper(), SEED);
    assert_eq!(rows.len(), 25, "full paper grid is 5 apps x 5 scales");
    assert_matches_golden("table1.json", &rows);
}

#[test]
fn golden_table3() {
    let rows = exhibits::table3(engine(), &small_grid(), SEED);
    assert_matches_golden("table3.json", &rows);
}

#[test]
fn golden_table4() {
    let rows = exhibits::table4(engine(), SEED);
    assert_eq!(rows.len(), 5, "one row per application");
    assert_matches_golden("table4.json", &rows);
}

#[test]
fn golden_fig7() {
    let fig = exhibits::figure(engine(), &small_grid(), 0.10, SEED);
    assert_matches_golden("fig7.json", &fig);
}

#[test]
fn golden_fig8() {
    let fig = exhibits::figure(engine(), &small_grid(), 0.05, SEED);
    assert_matches_golden("fig8.json", &fig);
}

#[test]
fn golden_fig9() {
    let fig = exhibits::figure(engine(), &small_grid(), 0.01, SEED);
    assert_matches_golden("fig9.json", &fig);
}

#[test]
fn golden_generation_frontier() {
    let rows = ibp_analysis::generation_frontier(engine(), SEED)
        .expect("standard generation hardware validates");
    assert_eq!(
        rows.len(),
        ibp_analysis::FRONTIER_GENERATIONS.len() * 5 * 3,
        "4 generations x 5 apps x 3 policies"
    );
    assert_matches_golden("generation_frontier.json", &rows);
}
