//! Serial-vs-parallel equivalence: for any grid, seed, and fault rate,
//! the sweep engine must serialize to **byte-identical** results under
//! any worker count. This is the engine's core guarantee — parallelism
//! is an implementation detail invisible in the output — proved here by
//! property testing rather than by a single fixed example.
//!
//! Fault plans are derived from the cell key ([`CellCtx::derived_seed`]),
//! never from pool scheduling, so the property must also hold with fault
//! injection enabled.

use ibp_analysis::sweep::{CellKey, SweepEngine, SweepOptions, TraceFn};
use ibp_analysis::{run_with_baseline, RunConfig};
use ibp_network::{replay, FaultConfig, ReplayOptions, SimParams};
use ibp_workloads::AppKind;
use proptest::prelude::*;
use serde::Serialize;
use std::sync::Arc;

/// Cheap trace source: a shrunk ALYA whose length varies with the cell
/// variant, so different cells get genuinely different traces.
fn tiny_trace_fn(base_iterations: u32) -> TraceFn {
    Arc::new(move |key: &CellKey| {
        let alya = ibp_workloads::Alya {
            iterations: base_iterations + 5 * key.variant,
            ..Default::default()
        };
        ibp_workloads::Workload::generate(&alya, key.nprocs, key.seed)
    })
}

/// Everything a cell computes, in one serializable record. The fault
/// fields exercise per-cell derived randomness.
#[derive(Serialize)]
struct CellOutcome {
    result: ibp_analysis::RunResult,
    fault_seed: u64,
    fault_events: u64,
    faulted_exec: String,
}

/// Run the whole grid under `opts` and serialize the ordered results.
fn run_grid(opts: SweepOptions, iterations: u32, seed: u64, fault_rate: f64) -> String {
    let engine = SweepEngine::with_trace_fn(opts, tiny_trace_fn(iterations));
    let cells: Vec<CellKey> = [2u32, 4]
        .into_iter()
        .flat_map(|n| {
            (0..2u32).map(move |v| CellKey {
                app: AppKind::Alya,
                nprocs: n,
                seed,
                variant: v,
            })
        })
        .collect();
    let outcomes = engine.run_cells(
        &cells,
        |&k| k,
        |ctx, key, _| {
            let cfg = RunConfig::new(20.0, 0.01);
            let result = run_with_baseline(&ctx.trace, key.app, &cfg, &ctx.baseline());
            let fault_seed = ctx.derived_seed(0xFA17);
            let (fault_events, faulted_exec) = if fault_rate > 0.0 {
                let opts = ReplayOptions {
                    faults: Some(FaultConfig::with_rate(fault_seed, fault_rate)),
                    ..ReplayOptions::default()
                };
                let faulted = replay(&ctx.trace, None, &SimParams::paper(), &opts)
                    .expect("faulted replay");
                (faulted.faults.total_events(), format!("{}", faulted.exec_time))
            } else {
                (0, String::new())
            };
            CellOutcome {
                result,
                fault_seed,
                fault_events,
                faulted_exec,
            }
        },
    );
    serde_json::to_string(&outcomes).expect("serialize outcomes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn parallel_output_is_byte_identical_to_serial(
        seed in any::<u64>(),
        iterations in 10u32..30,
        fault_rate in 0.0f64..8.0,
    ) {
        let serial = run_grid(SweepOptions::serial(), iterations, seed, fault_rate);
        let par2 = run_grid(SweepOptions::with_jobs(2), iterations, seed, fault_rate);
        let par4 = run_grid(SweepOptions::with_jobs(4), iterations, seed, fault_rate);
        prop_assert_eq!(&serial, &par2);
        prop_assert_eq!(&serial, &par4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The persistent work-stealing pool is invisible in annotation
    /// output: a trace big enough to clear the serial cutover (so
    /// multi-job runs really fan out across pool workers) annotates
    /// byte-identically at `--jobs` 1, 2, and 4. Work-stealing order is
    /// nondeterministic; the output must not be.
    #[test]
    fn pool_annotation_byte_identical_across_jobs(
        seed in any::<u64>(),
        wide in any::<bool>(),
    ) {
        use ibp_core::{annotate_trace_jobs, PowerConfig, SERIAL_CUTOVER_EVENTS};

        let nprocs: u32 = if wide { 8 } else { 4 };

        // Size the workload to land just past the parallel cutover.
        let probe = ibp_workloads::Alya { iterations: 32, ..Default::default() };
        let per_iter = ibp_workloads::Workload::generate(&probe, nprocs, seed)
            .ranks
            .iter()
            .map(|r| r.events.len())
            .sum::<usize>()
            / 32;
        let iterations = 32.max((SERIAL_CUTOVER_EVENTS / per_iter + 2) as u32);
        let alya = ibp_workloads::Alya { iterations, ..Default::default() };
        let trace = ibp_workloads::Workload::generate(&alya, nprocs, seed);
        let total: usize = trace.ranks.iter().map(|r| r.events.len()).sum();
        prop_assert!(
            total >= SERIAL_CUTOVER_EVENTS,
            "trace too small to exercise the pool: {total} events"
        );

        let cfg = PowerConfig::paper(ibp_simcore::SimDuration::from_us(20), 0.01);
        let jobs1 = annotate_trace_jobs(&trace, &cfg, 1);
        let jobs2 = annotate_trace_jobs(&trace, &cfg, 2);
        let jobs4 = annotate_trace_jobs(&trace, &cfg, 4);
        prop_assert_eq!(&jobs1, &jobs2);
        prop_assert_eq!(&jobs1, &jobs4);
    }
}

#[test]
fn faulted_cells_stay_identical_across_job_counts() {
    // Deterministic spot check with faults definitely on — the property
    // test above samples the rate, this pins a known-faulty grid.
    let serial = run_grid(SweepOptions::serial(), 25, 0xD1C0, 6.0);
    let par = run_grid(SweepOptions::with_jobs(3), 25, 0xD1C0, 6.0);
    assert_eq!(serial, par);
    assert!(
        serial.contains("\"fault_events\":"),
        "fault metrics must be recorded"
    );
}
