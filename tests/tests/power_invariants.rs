//! Property-based cross-crate invariants of the power accounting and the
//! prediction mechanism.

use ibp_core::{annotate_rank, PowerConfig, RankRuntime, SleepKind};
use ibp_network::IbGeneration;
use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::{MpiCall, MpiOp, TraceBuilder};
use proptest::prelude::*;

/// Build a single-rank trace from arbitrary (call, gap) streams.
fn rank_trace(calls: &[(u8, u32)]) -> ibp_trace::RankTrace {
    let mut b = TraceBuilder::new("prop", 1);
    for &(c, gap_us) in calls {
        b.compute(0, SimDuration::from_us(u64::from(gap_us)));
        let op = match c % 4 {
            0 => MpiOp::Allreduce { bytes: 8 },
            1 => MpiOp::Barrier,
            2 => MpiOp::Sendrecv {
                to: 0,
                send_bytes: 64,
                from: 0,
                recv_bytes: 64,
            },
            _ => MpiOp::Bcast { root: 0, bytes: 64 },
        };
        b.op(0, op);
    }
    b.build().ranks.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The runtime never claims more low-power time than the total idle
    /// time it observed, never predicts more calls than arrived, and
    /// charges every penalty below T_react.
    #[test]
    fn runtime_accounting_invariants(
        calls in proptest::collection::vec((0u8..4, 0u32..2_000), 1..400)
    ) {
        let trace = rank_trace(&calls);
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.05);
        let ann = annotate_rank(&trace, &cfg);
        let s = &ann.stats;

        prop_assert_eq!(s.total_calls as usize, calls.len());
        prop_assert!(s.correct_calls <= s.predicted_calls);
        prop_assert!(s.predicted_calls <= s.total_calls);
        prop_assert!(s.low_power_time <= s.nominal_duration);
        prop_assert!(s.hit_rate_pct() <= 100.0);
        prop_assert_eq!(ann.overhead.len(), calls.len());
        prop_assert_eq!(ann.penalty.len(), calls.len());
        for p in &ann.penalty {
            prop_assert!(*p <= cfg.t_react, "penalty above T_react");
        }
        // Directives are anchored to valid events, in order, with timers
        // that satisfy Algorithm 3's profitability bound.
        let mut last = None;
        for d in &ann.directives {
            prop_assert!(d.after_event < calls.len());
            if let Some(prev) = last {
                prop_assert!(d.after_event > prev);
            }
            last = Some(d.after_event);
            prop_assert!(d.timer > cfg.t_react);
            prop_assert!(d.timer <= d.predicted_idle);
        }
    }

    /// A perfectly periodic stream eventually predicts nearly all calls;
    /// the declaration happens within the first few periods.
    #[test]
    fn periodic_streams_are_learned(
        period_len in 2usize..6,
        reps in 20usize..60,
        gap_us in 25u32..5_000,
    ) {
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let mut rt = RankRuntime::new(0, cfg);
        let calls = [
            MpiCall::Allreduce,
            MpiCall::Barrier,
            MpiCall::Bcast,
            MpiCall::Reduce,
            MpiCall::Alltoall,
        ];
        for _ in 0..reps {
            for c in calls.iter().take(period_len) {
                rt.intercept(*c, SimDuration::from_us(u64::from(gap_us)));
            }
        }
        prop_assert!(rt.predicting(), "periodic stream never predicted");
        let ann = rt.finish(SimDuration::ZERO);
        // Learning takes at most ~5 periods (3 consecutive sightings of
        // a pattern of up to period_len grams plus scan lookahead).
        let hit = ann.stats.hit_rate_pct();
        prop_assert!(hit > 50.0, "hit rate only {hit}%");
    }

    /// Under wake-timer misfire injection, every misfired wake-up is
    /// charged at most the active sleep kind's reactivation latency:
    /// T_react for WRPS-only configs, deep_t_react with deep sleep on.
    #[test]
    fn per_wake_misfire_stall_capped_at_active_react(
        rounds in proptest::collection::vec((1u32..100_000, 21u32..3_000, 21u32..3_000), 5..40),
        misfire in 0.05f64..=1.0,
        seed in proptest::prelude::any::<u64>(),
        deep in proptest::prelude::any::<bool>(),
    ) {
        use ibp_network::{replay, FaultConfig, ReplayOptions, SimParams};

        let mut b = TraceBuilder::new("misfire-cap", 2);
        for &(bytes, g0, g1) in &rounds {
            b.compute(0, SimDuration::from_us(u64::from(g0)));
            b.compute(1, SimDuration::from_us(u64::from(g1)));
            b.op(0, MpiOp::Send { to: 1, bytes: u64::from(bytes) });
            b.op(1, MpiOp::Recv { from: 0, bytes: u64::from(bytes) });
            b.op(1, MpiOp::Send { to: 0, bytes: u64::from(bytes) });
            b.op(0, MpiOp::Recv { from: 1, bytes: u64::from(bytes) });
        }
        let trace = b.build();

        let mut cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        if deep {
            cfg = cfg.with_deep_sleep(SimDuration::from_ms(5));
        }
        let ann = ibp_core::annotate_trace(&trace, &cfg);
        let mut faults = FaultConfig::quiet(seed);
        faults.wake_misfire_prob = misfire;
        let opts = ReplayOptions { faults: Some(faults), ..ReplayOptions::default() };
        let result = replay(&trace, Some(&ann), &SimParams::paper(), &opts).expect("replay");

        let cap = if deep { cfg.deep_t_react } else { cfg.t_react };
        prop_assert!(
            result.faults.misfire_stall <= cap * result.faults.wake_misfires,
            "misfire stall {} above {} x {} wakes",
            result.faults.misfire_stall,
            cap,
            result.faults.wake_misfires
        );
    }

    /// Random (aperiodic) gap structure must never fabricate directives
    /// with timers longer than the largest observed idle.
    #[test]
    fn timers_bounded_by_observed_idle(
        gaps in proptest::collection::vec(21u32..10_000, 30..200),
        seed in any::<u64>(),
    ) {
        let mut rng = DetRng::seed_from_u64(seed);
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        let mut rt = RankRuntime::new(0, cfg);
        let mut max_gap = 0u32;
        for &g in &gaps {
            let call = if rng.chance(0.5) {
                MpiCall::Allreduce
            } else {
                MpiCall::Sendrecv
            };
            max_gap = max_gap.max(g);
            rt.intercept(call, SimDuration::from_us(u64::from(g)));
        }
        let ann = rt.finish(SimDuration::ZERO);
        for d in &ann.directives {
            prop_assert!(
                d.predicted_idle <= SimDuration::from_us(u64::from(max_gap)),
                "predicted idle {} above max observed {}us",
                d.predicted_idle,
                max_gap
            );
        }
    }

    /// A generation's ladder stays ordered for any (GT, displacement)
    /// the sweep could hand it: the built `PowerConfig` validates, and
    /// each deeper depth keeps a strictly lower draw with a wake
    /// latency at least as long.
    #[test]
    fn ladder_configs_validate_for_any_sweep_point(
        gt_us in 20u64..1_000,
        disp in 0.0f64..0.5,
        gen_idx in 0usize..IbGeneration::ALL.len(),
    ) {
        let gen = IbGeneration::ALL[gen_idx];
        let cfg = gen.ladder().power_config(SimDuration::from_us(gt_us), disp);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
        for pair in SleepKind::ALL.windows(2) {
            prop_assert!(cfg.draw_of(pair[1]) < cfg.draw_of(pair[0]));
            prop_assert!(cfg.react_of(pair[1]) >= cfg.react_of(pair[0]));
        }
    }
}

/// Every generation's sleep ladder trades wake latency for power:
/// deeper rungs have strictly lower power floors, wake latencies and
/// transition energies at least as large. Exhaustive over the enum —
/// stronger than sampling.
#[test]
fn deeper_rungs_trade_latency_for_power_in_every_generation() {
    for gen in IbGeneration::ALL {
        let ladder = gen.ladder();
        for pair in SleepKind::ALL.windows(2) {
            let (shallow, deep) = (ladder.rung(pair[0]), ladder.rung(pair[1]));
            assert!(
                deep.power_fraction < shallow.power_fraction,
                "{gen:?}: {:?} floor {} not below {:?} floor {}",
                pair[1], deep.power_fraction, pair[0], shallow.power_fraction
            );
            assert!(
                deep.wake_latency >= shallow.wake_latency,
                "{gen:?}: {:?} wakes faster than {:?}",
                pair[1], pair[0]
            );
            assert!(
                deep.transition_energy_j >= shallow.transition_energy_j,
                "{gen:?}: {:?} transition cheaper than {:?}",
                pair[1], pair[0]
            );
        }
    }
}

/// Per-lane (and hence full-link) signalling rates rise monotonically
/// through the generation ladder, matching the IB standard name table.
#[test]
fn generation_rates_rise_monotonically() {
    for pair in IbGeneration::ALL.windows(2) {
        assert!(
            pair[1].per_lane_gbps() > pair[0].per_lane_gbps(),
            "{:?} per-lane rate not above {:?}",
            pair[1], pair[0]
        );
        assert!(pair[1].link_gbps() > pair[0].link_gbps());
    }
}

/// The extension's bit-identity guarantee, run end-to-end over all
/// five paper applications: a ladder-disabled (paper-policy) run from
/// today's config produces byte-identical directives, stats, and
/// replay timing to one driven by a pre-ladder configuration file (the
/// ladder-era keys stripped, serde defaults filling them back in).
#[test]
fn ladder_disabled_runs_match_the_paper_baseline_on_all_apps() {
    use ibp_workloads::AppKind;
    use serde::{Deserialize, Serialize};

    let cfg_now = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    // A config file written before the ladder landed: no rate-rung
    // keys at all.
    let mut v = cfg_now.to_value();
    let serde::Value::Map(entries) = &mut v else {
        panic!("config serializes as an object");
    };
    entries.retain(|(k, _)| {
        !matches!(k.as_str(), "rate_threshold" | "rate_t_react" | "rate_power_fraction")
    });
    let cfg_pre = PowerConfig::from_value(&v).expect("pre-ladder config parses");
    assert_eq!(cfg_pre, cfg_now);

    let params_now = ibp_network::SimParams::paper();
    let mut pv = params_now.to_value();
    let serde::Value::Map(entries) = &mut pv else {
        panic!("params serialize as an object");
    };
    entries.retain(|(k, _)| k != "generation");
    let params_pre = ibp_network::SimParams::from_value(&pv).expect("pre-ladder params parse");

    for app in AppKind::ALL {
        let w = app.workload();
        // 4 ranks suits every app (square for BT, power of two for MG).
        let trace = w.generate(4, 11);
        let ann_now = ibp_core::annotate_trace(&trace, &cfg_now);
        let ann_pre = ibp_core::annotate_trace(&trace, &cfg_pre);
        for (a, b) in ann_now.ranks.iter().zip(&ann_pre.ranks) {
            assert_eq!(
                serde_json::to_string(&a.directives).unwrap(),
                serde_json::to_string(&b.directives).unwrap(),
                "{app:?}: directives diverge"
            );
            assert_eq!(a.stats, b.stats, "{app:?}: stats diverge");
            for d in &a.directives {
                assert_eq!(d.kind, SleepKind::Wrps, "{app:?}: ladder-off run left WRPS");
            }
        }
        let opts = ibp_network::ReplayOptions::default();
        let now = ibp_network::replay(&trace, Some(&ann_now), &params_now, &opts).unwrap();
        let pre = ibp_network::replay(&trace, Some(&ann_pre), &params_pre, &opts).unwrap();
        assert_eq!(now.exec_time, pre.exec_time, "{app:?}: replay timing diverges");
        assert_eq!(
            now.power_saving_pct().to_bits(),
            pre.power_saving_pct().to_bits(),
            "{app:?}: power accounting diverges"
        );
        assert_eq!(now.mean_rate_fraction(), 0.0, "{app:?}: rate rung engaged while off");
        assert_eq!(now.mean_deep_fraction(), 0.0, "{app:?}: deep rung engaged while off");
    }
}
