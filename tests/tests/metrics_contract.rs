//! The metrics contract: the Prometheus text exposition is a *public
//! interface* — scrape configs, dashboards, and alert rules key on the
//! exact metric names, types, and line order — so it is pinned with an
//! exact-byte golden snapshot (`tests/golden/metrics.prom`). Every
//! counter gets a distinct value so a swapped or misattributed metric
//! cannot cancel out. Regenerate after an intentional contract change
//! with `IBP_UPDATE_GOLDEN=1`.
//!
//! The summary-schema half pins the JSON field names of `ServeSummary`
//! and `LoadReport` (what `BENCH_serve.json` and `load -o` reports
//! embed), including the `reconnects`/`gave_up` resilience fields.

use ibp_serve::{MetricsRegistry, ServeSummary};
use ibpower_integration_tests::golden::assert_matches_golden_text;
use std::sync::atomic::Ordering;

/// A registry where every counter and gauge holds a distinct value, so
/// the golden catches any cross-wiring between stores and names.
fn distinct_registry() -> MetricsRegistry {
    let m = MetricsRegistry::default();
    for (i, c) in [
        &m.sessions_opened,
        &m.sessions_closed,
        &m.events_applied,
        &m.directives_sent,
        &m.protocol_errors,
        &m.responses_shed,
        &m.worker_panics,
        &m.worker_respawns,
        &m.snapshots_persisted,
        &m.persist_failures,
        &m.sessions_rehydrated,
        &m.evictions,
        &m.queries_answered,
        &m.scrapes_served,
    ]
    .into_iter()
    .enumerate()
    {
        c.store(101 + i as u64, Ordering::Relaxed);
    }
    for (i, g) in [
        &m.sessions_live,
        &m.ready_queue_depth,
        &m.writer_queue_depth,
        &m.hot_sessions,
        &m.cold_sessions,
    ]
    .into_iter()
    .enumerate()
    {
        g.store(201 + i as u64, Ordering::Relaxed);
    }
    for (i, g) in m.sessions_asleep.iter().enumerate() {
        g.store(401 + i as u64, Ordering::Relaxed);
    }
    for (i, g) in m.session_shards.iter().enumerate() {
        g.store(301 + i as u64, Ordering::Relaxed);
    }
    m
}

#[test]
fn prometheus_exposition_matches_golden_bytes() {
    assert_matches_golden_text("metrics.prom", &distinct_registry().render_prometheus());
}

#[test]
fn exposition_is_deterministic() {
    let m = distinct_registry();
    assert_eq!(m.render_prometheus(), m.render_prometheus());
}

#[test]
fn summary_json_schema_is_stable() {
    let json = serde_json::to_string(&distinct_registry().summary()).expect("serializes");
    for field in [
        "sessions_opened",
        "sessions_closed",
        "events_applied",
        "directives_sent",
        "protocol_errors",
        "responses_shed",
        "worker_panics",
        "worker_respawns",
        "snapshots_persisted",
        "persist_failures",
        "sessions_rehydrated",
        "evictions",
    ] {
        assert!(json.contains(&format!("\"{field}\"")), "missing {field} in {json}");
    }
    // And the summary round-trips, so Stats-frame consumers can parse it.
    let back: ServeSummary = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
}

#[test]
fn load_report_schema_carries_resilience_fields() {
    // Build a LoadReport through a real (tiny) load run so the schema
    // test cannot drift from the production constructor.
    let server = ibp_serve::Server::bind(
        &ibp_serve::Endpoint::Tcp("127.0.0.1:0".into()),
        ibp_serve::ServeConfig { session_limit: Some(1), ..Default::default() },
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let handle = std::thread::spawn(move || server.run());

    let w = ibp_workloads::AppKind::Alya.workload();
    let trace = w.generate(w.paper_procs()[0], 7);
    let rank = &trace.ranks[0];
    let cfg = ibp_core::PowerConfig::paper(ibp_simcore::SimDuration::from_us(20), 0.01);
    let spec = ibp_serve::SessionSpec {
        rank: rank.rank,
        config: cfg,
        events: rank.call_stream().map(|(c, gap)| (c.id(), gap.as_ns())).collect(),
        final_compute_ns: rank.final_compute.as_ns(),
        golden_directives: None,
        golden_stats: None,
    };
    let report = ibp_serve::run_load(&endpoint, vec![spec], &ibp_serve::LoadConfig::default())
        .expect("load");
    handle.join().expect("server thread");

    assert_eq!(report.gave_up, 0, "healthy transport never gives up");
    assert_eq!(report.reconnects, 0);
    let json = serde_json::to_string(&report).expect("serializes");
    for field in ["reconnects", "gave_up", "events_total", "per_session", "parity_ok"] {
        assert!(json.contains(&format!("\"{field}\"")), "missing {field} in {json}");
    }
    // Per-session outcomes carry the per-link resilience verdicts too.
    assert!(json.contains("\"gave_up\":false"), "per-session gave_up flag: {json}");
}
