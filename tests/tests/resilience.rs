//! Integration tests for the resilience controller under fault storms.
//!
//! The headline guarantee: with the slowdown budget configured, a fault
//! storm (10× fault rate on every link plus heavily amplified compute
//! jitter) cannot slow the managed run down by more than the configured
//! cap relative to a power-unaware baseline replayed under the *same*
//! faults. And on a clean trace the controller must be free: hit rate
//! and savings within 1% of the resilience-disabled mechanism.

use ibp_core::{annotate_trace, PowerConfig, ResilienceConfig};
use ibp_network::{replay, FaultConfig, ReplayOptions, SimParams};
use ibp_simcore::SimDuration;
use ibp_trace::Trace;
use ibp_workloads::{Alya, Workload};

fn jittery_alya(jitter_mult: f64, nprocs: u32, seed: u64) -> Trace {
    let mut alya = Alya::default();
    alya.assembly_gap.sigma *= jitter_mult;
    alya.solver_gap.sigma *= jitter_mult;
    alya.generate(nprocs, seed)
}

fn paper_cfg() -> PowerConfig {
    PowerConfig::paper(SimDuration::from_us(20), 0.01)
}

#[test]
fn fault_storm_slowdown_bounded_by_budget() {
    // ≥10× fault rate and 25× compute jitter: a hostile environment for
    // a pattern predictor.
    let trace = jittery_alya(25.0, 8, 0xBEEF);
    let params = SimParams::paper();
    let budget_pct = 2.0;
    let cfg = paper_cfg().with_resilience(ResilienceConfig::with_budget(budget_pct));
    let ann = annotate_trace(&trace, &cfg);
    let opts = ReplayOptions {
        faults: Some(FaultConfig::with_rate(0xF00D, 10.0)),
        ..ReplayOptions::default()
    };
    let baseline = replay(&trace, None, &params, &opts).expect("baseline");
    let managed = replay(&trace, Some(&ann), &params, &opts).expect("managed");
    let slowdown = managed.slowdown_pct(&baseline);
    assert!(
        slowdown <= budget_pct,
        "storm slowdown {slowdown:.3}% above the {budget_pct}% budget"
    );
    // The per-rank accounting the budget guard enforces holds too.
    for rank in &ann.ranks {
        assert!(
            rank.stats.added_time_pct() <= budget_pct + 0.5,
            "rank added time {:.3}% far above budget",
            rank.stats.added_time_pct()
        );
    }
}

#[test]
fn backoff_beats_unguarded_mechanism_in_the_storm() {
    let trace = jittery_alya(25.0, 8, 0xBEEF);
    let params = SimParams::paper();
    let plain_ann = annotate_trace(&trace, &paper_cfg());
    let resilient_ann = annotate_trace(
        &trace,
        &paper_cfg().with_resilience(ResilienceConfig::standard()),
    );
    let opts = ReplayOptions {
        faults: Some(FaultConfig::with_rate(0xF00D, 10.0)),
        ..ReplayOptions::default()
    };
    let baseline = replay(&trace, None, &params, &opts).expect("baseline");
    let plain = replay(&trace, Some(&plain_ann), &params, &opts).expect("plain");
    let resilient = replay(&trace, Some(&resilient_ann), &params, &opts).expect("resilient");
    let plain_slow = plain.slowdown_pct(&baseline);
    let resilient_slow = resilient.slowdown_pct(&baseline);
    assert!(
        resilient_slow <= plain_slow,
        "backoff made the storm worse: {resilient_slow:.3}% vs plain {plain_slow:.3}%"
    );
    // The backoff fired: storms were detected and calls were held off.
    let agg = resilient_ann.aggregate_stats();
    assert!(agg.storms > 0, "no storm detected at 25x jitter");
    assert!(agg.holdoff_calls > 0);
}

#[test]
fn fault_free_alya_parity_within_one_percent() {
    // On the clean paper workload the resilience controller must not
    // change the outcome: hit rate and savings within 1% absolute.
    let trace = Alya::default().generate(8, 0xA17A);
    let params = SimParams::paper();
    let plain_ann = annotate_trace(&trace, &paper_cfg());
    let resilient_ann = annotate_trace(
        &trace,
        &paper_cfg().with_resilience(ResilienceConfig::standard()),
    );
    let plain_hit = plain_ann.aggregate_stats().hit_rate_pct();
    let resilient_hit = resilient_ann.aggregate_stats().hit_rate_pct();
    assert!(
        (plain_hit - resilient_hit).abs() < 1.0,
        "hit rate drifted: {plain_hit:.2}% vs {resilient_hit:.2}%"
    );
    let opts = ReplayOptions::default();
    let plain = replay(&trace, Some(&plain_ann), &params, &opts).expect("plain");
    let resilient = replay(&trace, Some(&resilient_ann), &params, &opts).expect("resilient");
    assert!(
        (plain.power_saving_pct() - resilient.power_saving_pct()).abs() < 1.0,
        "savings drifted: {:.2}% vs {:.2}%",
        plain.power_saving_pct(),
        resilient.power_saving_pct()
    );
    assert_eq!(resilient.faults.total_events(), 0);
}
