//! End-to-end integration: workload generation → PPA annotation →
//! baseline and managed replays → paper metrics, across all five
//! applications (shrunk iteration counts for test speed).

use ibp_analysis::{run_on_trace, RunConfig};
use ibp_core::{annotate_trace, PowerConfig};
use ibp_network::{replay, ReplayOptions, SimParams};
use ibp_simcore::SimDuration;
use ibp_trace::Trace;
use ibp_workloads::{Alya, AppKind, Gromacs, NasBt, NasMg, Workload, Wrf};

/// Small-but-representative trace for each application.
fn small_trace(app: AppKind, nprocs: u32, seed: u64) -> Trace {
    match app {
        AppKind::Gromacs => Gromacs {
            iterations: 60,
            ..Default::default()
        }
        .generate(nprocs, seed),
        AppKind::Alya => Alya {
            iterations: 50,
            ..Default::default()
        }
        .generate(nprocs, seed),
        AppKind::Wrf => Wrf {
            iterations: 40,
            ..Default::default()
        }
        .generate(nprocs, seed),
        AppKind::NasBt => NasBt {
            iterations: 50,
            ..Default::default()
        }
        .generate(nprocs, seed),
        AppKind::NasMg => NasMg {
            iterations: 40,
            ..Default::default()
        }
        .generate(nprocs, seed),
    }
}

#[test]
fn every_app_saves_power_with_bounded_slowdown() {
    for app in AppKind::ALL {
        let n = if app == AppKind::NasBt { 9 } else { 8 };
        let trace = small_trace(app, n, 1);
        trace.validate().unwrap();
        let cfg = RunConfig::new(20.0, 0.01);
        let r = run_on_trace(&trace, app, &cfg);
        assert!(
            r.power_saving_pct > 3.0,
            "{}: saving {}",
            app.name(),
            r.power_saving_pct
        );
        assert!(
            r.power_saving_pct < 57.0,
            "{}: saving above the WRPS ceiling",
            app.name()
        );
        assert!(
            r.slowdown_pct < 3.0,
            "{}: slowdown {}",
            app.name(),
            r.slowdown_pct
        );
        assert!(r.hit_rate_pct > 30.0, "{}: hit {}", app.name(), r.hit_rate_pct);
    }
}

#[test]
fn savings_fall_with_strong_scaling() {
    // The paper's central scaling observation, on ALYA (cheap to run).
    let cfg = RunConfig::new(20.0, 0.01);
    let small = run_on_trace(&small_trace(AppKind::Alya, 8, 2), AppKind::Alya, &cfg);
    let large = run_on_trace(&small_trace(AppKind::Alya, 64, 2), AppKind::Alya, &cfg);
    assert!(
        small.power_saving_pct > large.power_saving_pct + 3.0,
        "8 ranks: {:.1}%, 64 ranks: {:.1}%",
        small.power_saving_pct,
        large.power_saving_pct
    );
}

#[test]
fn smaller_displacement_saves_more() {
    // Fig. 7 vs Fig. 9: displacement 1% beats 10% on savings.
    let trace = small_trace(AppKind::NasBt, 9, 3);
    let r1 = run_on_trace(&trace, AppKind::NasBt, &RunConfig::new(20.0, 0.01));
    let r10 = run_on_trace(&trace, AppKind::NasBt, &RunConfig::new(20.0, 0.10));
    assert!(
        r1.power_saving_pct > r10.power_saving_pct,
        "disp 1%: {:.2}, disp 10%: {:.2}",
        r1.power_saving_pct,
        r10.power_saving_pct
    );
}

#[test]
fn managed_run_never_loses_messages() {
    // The annotated replay must transport exactly the same traffic as
    // the baseline (annotations shift time, not communication).
    let trace = small_trace(AppKind::Wrf, 8, 4);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.05);
    let ann = annotate_trace(&trace, &cfg);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let base = replay(&trace, None, &params, &opts).expect("replay");
    let managed = replay(&trace, Some(&ann), &params, &opts).expect("replay");
    assert_eq!(base.fabric.messages, managed.fabric.messages);
    assert_eq!(base.fabric.bytes, managed.fabric.bytes);
}

#[test]
fn per_rank_low_power_is_within_run_bounds() {
    let trace = small_trace(AppKind::NasBt, 16, 5);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let ann = annotate_trace(&trace, &cfg);
    let result = replay(
        &trace,
        Some(&ann),
        &SimParams::paper(),
        &ReplayOptions::default(),
    ).expect("replay");
    for (r, low) in result.link_low.iter().enumerate() {
        assert!(
            *low <= result.exec_time,
            "rank {r}: low-power time exceeds the run"
        );
    }
    // Sleep counts match the runtime's directive counts.
    for (r, ann_rank) in ann.ranks.iter().enumerate() {
        assert_eq!(
            result.link_sleeps[r] as usize,
            ann_rank.directives.len(),
            "rank {r}: directive/sleep mismatch"
        );
    }
}

#[test]
fn gromacs_timelines_render_like_fig6() {
    use ibp_network::LinkPower;
    use ibp_simcore::SimTime;
    let trace = small_trace(AppKind::Gromacs, 8, 6);
    let cfg = PowerConfig::paper(SimDuration::from_us(36), 0.01);
    let ann = annotate_trace(&trace, &cfg);
    let opts = ReplayOptions {
        record_timelines: true,
        ..ReplayOptions::default()
    };
    let result = replay(&trace, Some(&ann), &SimParams::paper(), &opts).expect("replay");
    let tls = result.timelines.expect("recorded");
    let end = tls
        .iter()
        .map(|tl| tl.last_transition())
        .max()
        .unwrap()
        .max(SimTime::ZERO + result.exec_time);
    let rows: Vec<(String, &ibp_simcore::StateTimeline<LinkPower>)> = tls
        .iter()
        .enumerate()
        .map(|(r, tl)| (format!("rank {r}"), tl))
        .collect();
    let art = ibp_trace::viz::render_timelines(&rows, end, 80, |s| match s {
        LinkPower::Low => '.',
        LinkPower::Rate => '-',
        LinkPower::Deep => 'o',
        LinkPower::Full => '#',
        LinkPower::Transition => '+',
    });
    // Every rank should show some low-power cells.
    let low_rows = art.lines().filter(|l| l.contains('.')).count();
    assert!(low_rows >= 8, "low-power never rendered:\n{art}");
}
