//! Whole-fabric view: per-application energy of the XGFT's host links
//! with and without WRPS management, plus the fleet-level summary the
//! paper's conclusions imply.
//!
//! Run with: `cargo run --release -p ibpower-examples --bin cluster_energy`

use ibp_analysis::{make_trace, RunConfig};
use ibp_core::annotate_trace;
use ibp_network::{replay, ReplayOptions, SimParams};
use ibp_workloads::AppKind;

/// Nominal per-port power of the modelled switch, watts (ballpark for a
/// 36-port QDR switch: ~130 W, links ≈ 64% → ~2.3 W per active port).
const PORT_WATTS: f64 = 2.3;

fn main() {
    let nprocs = 16;
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    println!("Fabric energy at {nprocs} ranks (host links, {PORT_WATTS} W/port nominal)\n");
    println!("app       exec      always-on J   managed J   saved J   saving%");

    let mut total_base = 0.0;
    let mut total_mng = 0.0;
    for app in AppKind::ALL {
        let trace = make_trace(app, nprocs, 0xD1C0);
        let cfg = RunConfig::new(20.0, 0.01).power_config();
        let ann = annotate_trace(&trace, &cfg);
        let baseline = replay(&trace, None, &params, &opts).expect("replay");
        let managed = replay(&trace, Some(&ann), &params, &opts).expect("replay");

        let secs = managed.exec_time.as_secs_f64();
        let ports = f64::from(nprocs);
        let base_j = PORT_WATTS * ports * baseline.exec_time.as_secs_f64();
        let mng_j = PORT_WATTS * ports * secs * managed.mean_relative_power();
        total_base += base_j;
        total_mng += mng_j;
        println!(
            "{:<9} {:>7.2}s {:>12.2} {:>11.2} {:>9.2} {:>8.1}",
            app.name(),
            secs,
            base_j,
            mng_j,
            base_j - mng_j,
            100.0 * (1.0 - mng_j / base_j),
        );
    }
    println!(
        "\nfleet: {:.1} J always-on → {:.1} J managed ({:.1}% saved across the five workloads)",
        total_base,
        total_mng,
        100.0 * (1.0 - total_mng / total_base)
    );
}
