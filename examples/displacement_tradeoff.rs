//! Displacement-factor trade-off (the paper's Fig. 4 discussion, made
//! quantitative): sweep the safety margin from 0.5% to 30% on one
//! application and watch power savings fall while the reactivation-stall
//! risk shrinks.
//!
//! Run with:
//! `cargo run --release -p ibpower-examples --bin displacement_tradeoff [app] [nprocs]`

use ibp_analysis::{make_trace, run_on_trace, RunConfig};
use ibp_workloads::AppKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|s| AppKind::from_name(s))
        .unwrap_or(AppKind::Alya);
    let nprocs: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!("Displacement trade-off for {} at {nprocs} ranks", app.display());
    println!("(larger displacement: lanes wake earlier → fewer stalls, less saving)\n");
    println!("disp%   saving%   slowdown%   timing-mispredicts   hit%");

    let trace = make_trace(app, nprocs, 0xD1C0);
    for disp in [0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30] {
        let cfg = RunConfig::new(20.0, disp);
        let r = run_on_trace(&trace, app, &cfg);
        println!(
            "{:>5.1} {:>9.2} {:>11.3} {:>20} {:>6.1}",
            disp * 100.0,
            r.power_saving_pct,
            r.slowdown_pct,
            r.stats.timing_mispredictions,
            r.hit_rate_pct,
        );
    }
    println!(
        "\nThe paper evaluates 1%, 5% and 10% (Figs. 9, 8, 7): minimal \
         displacement gives maximum savings at ~1% slowdown."
    );
}
