//! Two jobs sharing the fat tree: multi-job replay with per-job power
//! management.
//!
//! Job A is a 10-rank ring pipeline moving large blocks; job B is an
//! 8-rank stencil with long compute phases. They are combined into one
//! fabric-wide trace (disjoint rank ranges — the replay simulates them
//! concurrently, sharing top-level channels under random routing), and
//! the power-saving runtime manages every host link independently.
//!
//! Run with: `cargo run --release -p ibpower-examples --bin shared_fabric`

use ibp_core::{annotate_trace, PowerConfig};
use ibp_network::{replay, ReplayOptions, SimParams};
use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::{combine, MpiOp, TraceBuilder};

fn ring_pipeline(nprocs: u32, iters: u32, seed: u64) -> ibp_trace::Trace {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new("pipeline", nprocs);
    for r in 0..nprocs {
        for _ in 0..iters {
            let jitter = rng.lognormal_jitter(0.01);
            b.compute(r, SimDuration::from_us_f64(350.0 * jitter));
            b.op(
                r,
                MpiOp::Sendrecv {
                    to: (r + 1) % nprocs,
                    send_bytes: 256 * 1024,
                    from: (r + nprocs - 1) % nprocs,
                    recv_bytes: 256 * 1024,
                },
            );
        }
    }
    b.build()
}

fn stencil(nprocs: u32, iters: u32, seed: u64) -> ibp_trace::Trace {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new("stencil", nprocs);
    for r in 0..nprocs {
        for _ in 0..iters {
            let jitter = rng.lognormal_jitter(0.01);
            b.compute(r, SimDuration::from_us_f64(1_500.0 * jitter));
            for hop in [1u32, 2] {
                if hop == 2 {
                    b.compute(r, SimDuration::from_us(3));
                }
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: (r + hop) % nprocs,
                        send_bytes: 32 * 1024,
                        from: (r + nprocs - hop) % nprocs,
                        recv_bytes: 32 * 1024,
                    },
                );
            }
        }
    }
    b.build()
}

fn main() {
    let job_a = ring_pipeline(10, 300, 1);
    let job_b = stencil(8, 200, 2);
    let (fabric_trace, placements) =
        combine(&[&job_a, &job_b]).expect("p2p jobs always combine");
    println!(
        "combined fabric trace: {} ranks, {} MPI calls ({} + {})",
        fabric_trace.nprocs,
        fabric_trace.total_calls(),
        job_a.total_calls(),
        job_b.total_calls()
    );

    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let ann = annotate_trace(&fabric_trace, &cfg);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let baseline = replay(&fabric_trace, None, &params, &opts).expect("replay");
    let managed = replay(&fabric_trace, Some(&ann), &params, &opts).expect("replay");

    println!("\nfabric execution: baseline {}, managed {} ({:+.3}%)",
        baseline.exec_time,
        managed.exec_time,
        managed.slowdown_pct(&baseline));
    println!("fabric-wide IB switch saving: {:.1}%\n", managed.power_saving_pct());

    for (name, place) in [("pipeline", placements[0]), ("stencil", placements[1])] {
        let lo = place.first_rank as usize;
        let hi = lo + place.nprocs as usize;
        let exec = managed.exec_time.as_secs_f64();
        let frac: f64 = managed.link_low[lo..hi]
            .iter()
            .map(|l| l.as_secs_f64() / exec)
            .sum::<f64>()
            / place.nprocs as f64;
        let hit: f64 = ann.ranks[lo..hi]
            .iter()
            .map(|r| r.stats.hit_rate_pct())
            .sum::<f64>()
            / place.nprocs as f64;
        println!(
            "job {name:<9} ranks {lo:>2}..{hi:<2}  hit {hit:>5.1}%  link saving {:>5.1}%",
            100.0 * 0.57 * frac
        );
    }
    println!(
        "\nThe long-compute stencil saves far more than the tightly-coupled \
         pipeline — per-link management adapts to each job individually."
    );
}
