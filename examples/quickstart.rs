//! Quickstart: the paper's Fig. 2 / Fig. 3 walk-through on the public API.
//!
//! Feeds the ALYA MPI stream (three `MPI_Sendrecv` calls close together,
//! then two `MPI_Allreduce` calls after long compute gaps, repeated) into
//! the PMPI-style runtime and narrates what the mechanism does: gram
//! formation, pattern-list growth, the declaration after three
//! consecutive pattern appearances, and the lane-off directives that
//! follow.
//!
//! Run with: `cargo run --release -p ibpower-examples --bin quickstart`

use ibp_core::{PowerConfig, RankRuntime};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall::{self, Allreduce, Sendrecv};

fn main() {
    // The paper's configuration: GT = 2·T_react = 20 µs, displacement 10%.
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.10);
    println!("T_react            : {}", cfg.t_react);
    println!("grouping threshold : {}", cfg.grouping_threshold);
    println!("displacement       : {:.0}%", cfg.displacement * 100.0);
    println!();

    let mut rt = RankRuntime::new(0, cfg);

    // Fig. 2: per iteration, 41-41-41 (tiny gaps) ... 10 ... 10 (long
    // gaps). Ids: 41 = MPI_Sendrecv, 10 = MPI_Allreduce.
    let iteration: [(MpiCall, u64); 5] = [
        (Sendrecv, 300),
        (Sendrecv, 2),
        (Sendrecv, 3),
        (Allreduce, 250),
        (Allreduce, 250),
    ];

    println!("# event  call           gap        predicting?");
    let mut event = 0;
    let mut first_prediction = None;
    for iter in 0..6 {
        for (i, &(call, gap_us)) in iteration.iter().enumerate() {
            let gap = if iter == 0 && i == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_us(gap_us)
            };
            rt.intercept(call, gap);
            event += 1;
            let predicting = rt.predicting();
            if predicting && first_prediction.is_none() {
                first_prediction = Some(event);
            }
            println!(
                "{event:>7}  {:<13} {:>9}  {}",
                call.to_string(),
                gap.to_string(),
                if predicting { "yes" } else { "no" }
            );
        }
    }

    let ann = rt.finish(SimDuration::ZERO);
    println!();
    match first_prediction {
        Some(e) => println!(
            "Prediction activated at MPI event {e} — the paper's Fig. 3 \
             flips to true at event 21."
        ),
        None => println!("Prediction never activated (unexpected!)"),
    }
    println!(
        "Pattern declared after 3 consecutive appearances of the gram \
         sequence 41-41-41, 10, 10."
    );
    println!();
    println!("Lane-off directives issued : {}", ann.stats.lane_off_count);
    for d in ann.directives.iter().take(5) {
        println!(
            "  after event {:>3}: sleep timer {} (predicted idle {})",
            d.after_event + 1,
            d.timer,
            d.predicted_idle
        );
    }
    if ann.directives.len() > 5 {
        println!("  ... and {} more", ann.directives.len() - 5);
    }
    println!();
    println!(
        "Hit rate                   : {:.1}% of MPI calls correctly predicted",
        ann.stats.hit_rate_pct()
    );
    println!(
        "Nominal low-power time     : {} of {} total idle",
        ann.stats.low_power_time, ann.stats.nominal_duration
    );
    println!(
        "Estimated IB switch saving : {:.1}% (WRPS low-power draw 43%)",
        ann.stats.est_power_saving_pct(0.43)
    );
}
