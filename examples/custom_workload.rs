//! Bring your own application: build a trace with `TraceBuilder`, run the
//! power-saving mechanism and the network replay on it.
//!
//! The synthetic application here is a 2-D Jacobi stencil: per iteration,
//! a halo exchange with the four grid neighbours, a long relaxation
//! compute, and a residual Allreduce every other iteration.
//!
//! Run with: `cargo run --release -p ibpower-examples --bin custom_workload`

use ibp_core::{annotate_trace, PowerConfig};
use ibp_network::{replay, ReplayOptions, SimParams};
use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::{MpiOp, TraceBuilder};

fn main() {
    let side = 4u32; // 4×4 process grid
    let n = side * side;
    let iters = 120;
    let mut rng = DetRng::seed_from_u64(7);

    let mut b = TraceBuilder::new("jacobi2d", n);
    for r in 0..n {
        let (x, y) = (r % side, r / side);
        let nbrs = [
            y * side + (x + 1) % side,
            y * side + (x + side - 1) % side,
            ((y + 1) % side) * side + x,
            ((y + side - 1) % side) * side + x,
        ];
        for it in 0..iters {
            // Relaxation compute: ~800 µs with mild jitter.
            let jitter = rng.lognormal_jitter(0.01);
            b.compute(r, SimDuration::from_us_f64(800.0 * jitter));
            // Halo exchange gram: 4 Sendrecvs close together.
            for (i, &nb) in nbrs.iter().enumerate() {
                if i > 0 {
                    b.compute(r, SimDuration::from_us(2));
                }
                // Pair up directions: send east/recv west, etc.
                let from = nbrs[i ^ 1];
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: nb,
                        send_bytes: 64 * 1024,
                        from,
                        recv_bytes: 64 * 1024,
                    },
                );
            }
            // Residual norm every other iteration.
            if it % 2 == 0 {
                b.compute(r, SimDuration::from_us(400));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
    }
    let trace = b.build();
    trace.validate().expect("trace must be consistent");
    println!(
        "jacobi2d: {} ranks, {} MPI calls",
        trace.nprocs,
        trace.total_calls()
    );

    // Power-saving pass + replay, exactly like the paper's evaluation.
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let ann = annotate_trace(&trace, &cfg);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let baseline = replay(&trace, None, &params, &opts).expect("replay");
    let managed = replay(&trace, Some(&ann), &params, &opts).expect("replay");

    let agg = ann.aggregate_stats();
    println!("hit rate            : {:.1}%", agg.hit_rate_pct());
    println!("pattern mispredicts : {}", agg.pattern_mispredictions);
    println!("baseline exec       : {}", baseline.exec_time);
    println!("managed exec        : {}", managed.exec_time);
    println!("slowdown            : {:.3}%", managed.slowdown_pct(&baseline));
    println!("IB switch saving    : {:.1}%", managed.power_saving_pct());
}
