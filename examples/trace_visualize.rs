//! Fig. 6 reproduction: render link power states over time, Paraver-style
//! (dark = low power, bright = full power) as ASCII art.
//!
//! Run with:
//! `cargo run --release -p ibpower-examples --bin trace_visualize [app] [nprocs]`

use ibp_analysis::make_trace;
use ibp_core::{annotate_trace, PowerConfig};
use ibp_network::{replay, LinkPower, ReplayOptions, SimParams};
use ibp_simcore::{SimDuration, SimTime};
use ibp_trace::viz::render_timelines;
use ibp_workloads::AppKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = args
        .get(1)
        .and_then(|s| AppKind::from_name(s))
        .unwrap_or(AppKind::Gromacs);
    let nprocs: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    println!(
        "Link power timeline, {} with {nprocs} MPI processes (paper Fig. 6)",
        app.display()
    );
    println!("legend: '.' low-power (1X)   '#' full power   '+' transition\n");

    let trace = make_trace(app, nprocs, 0xD1C0);
    let cfg = PowerConfig::paper(SimDuration::from_us(36), 0.01);
    let ann = annotate_trace(&trace, &cfg);
    let opts = ReplayOptions {
        record_timelines: true,
        ..ReplayOptions::default()
    };
    let result = replay(&trace, Some(&ann), &SimParams::paper(), &opts).expect("replay");
    let timelines = result.timelines.as_ref().expect("recorded");

    // Render the whole run (the horizon must cover every recorded
    // transition, including trailing wake-ups past the last rank finish).
    let end = timelines
        .iter()
        .map(|tl| tl.last_transition())
        .max()
        .unwrap_or(SimTime::ZERO)
        .max(SimTime::ZERO + result.exec_time);
    let rows: Vec<(String, &ibp_simcore::StateTimeline<LinkPower>)> = timelines
        .iter()
        .enumerate()
        .map(|(r, tl)| (format!("rank {r:>3}"), tl))
        .collect();
    print!(
        "{}",
        render_timelines(&rows, end, 100, |s| match s {
            LinkPower::Low => '.',
            LinkPower::Rate => '-',
            LinkPower::Deep => 'o',
            LinkPower::Full => '#',
            LinkPower::Transition => '+',
        })
    );
    println!(
        "\nIB switch power saving over the whole run: {:.1}%",
        result.power_saving_pct()
    );
}
