//! Wall-clock measurements of the engine's hot paths.
//!
//! Each probe repeats its workload a caller-chosen number of times and
//! reports the **minimum** per-element time across repetitions — the
//! standard trick for wall-clock microbenchmarks, since scheduling noise
//! only ever adds time. The probes are deliberately the same shapes the
//! criterion benches run (`benches/hotpath.rs` wraps them), so the
//! committed `BENCH_hotpath.json` trajectory and local criterion runs
//! describe the same code paths.

use ibp_core::{annotate_trace_jobs, Ppa, PowerConfig, RankRuntime};
use ibp_network::{replay_with_scratch, ReplayOptions, ReplayScratch, SimParams};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall::{Allreduce, Sendrecv};
use ibp_trace::Trace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The synthetic ALYA-like call stream every probe trains on (Fig. 2
/// shape: three tight Sendrecvs, two Allreduces after long compute).
pub fn alya_stream(iters: usize) -> Vec<(ibp_trace::MpiCall, SimDuration)> {
    let mut v = Vec::with_capacity(iters * 5);
    for i in 0..iters {
        let lead = if i == 0 { 0 } else { 300 };
        v.push((Sendrecv, SimDuration::from_us(lead)));
        v.push((Sendrecv, SimDuration::from_us(2)));
        v.push((Sendrecv, SimDuration::from_us(3)));
        v.push((Allreduce, SimDuration::from_us(250)));
        v.push((Allreduce, SimDuration::from_us(250)));
    }
    v
}

/// A small multi-rank trace for the replay and annotation probes.
pub fn replay_trace(nprocs: u32, iters: usize) -> Trace {
    let mut b = ibp_trace::TraceBuilder::new("bench", nprocs);
    for it in 0..iters {
        for r in 0..nprocs {
            let lead = if it == 0 { 0 } else { 300 };
            b.compute(r, SimDuration::from_us(lead));
            b.op(
                r,
                ibp_trace::MpiOp::Sendrecv {
                    to: (r + 1) % nprocs,
                    send_bytes: 2048,
                    from: (r + nprocs - 1) % nprocs,
                    recv_bytes: 2048,
                },
            );
            b.compute(r, SimDuration::from_us(300));
            b.op(r, ibp_trace::MpiOp::Allreduce { bytes: 8 });
        }
    }
    b.build()
}

/// One measured hot path: nanoseconds per element, minimum over
/// repetitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Probe {
    /// Probe name (stable across report entries).
    pub name: String,
    /// Best observed nanoseconds per element.
    pub ns_per_elem: f64,
    /// Elements processed per repetition (calls, grams or events).
    pub elems: u64,
    /// Repetitions measured.
    pub reps: u32,
}

/// One `bench-report` run: every probe at one point in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportEntry {
    /// Free-form label (`--label`, defaults to `run-<n>`).
    pub label: String,
    /// The probes, in fixed order.
    pub probes: Vec<Probe>,
}

impl ReportEntry {
    /// The named probe, if present.
    pub fn probe(&self, name: &str) -> Option<&Probe> {
        self.probes.iter().find(|p| p.name == name)
    }
}

/// The committed trajectory file: entries appended per run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// All recorded runs, oldest first.
    pub entries: Vec<ReportEntry>,
}

/// Name of the regression-gated probe.
pub const INTERCEPT_PROBE: &str = "intercept_ns_per_call";

/// Name of the serving-layer round-trip probe. Gated only when the
/// trajectory's baseline entry already records it (older entries
/// predate the serving layer).
pub const SERVE_PROBE: &str = "serve_roundtrip_ns_per_event";

/// Name of the paged-serving probe: many sessions multiplexed over few
/// driver connections with the LRU hot cap well below the session
/// count, so every repetition pays real evict/rehydrate traffic
/// through the snapshot store. Gated only when the baseline entry
/// records it (older entries predate session paging).
pub const SCALE_PROBE: &str = "serve_scale_ns_per_event";

/// Name of the annotated-replay probe (the sweep engine's hot path).
pub const REPLAY_PROBE: &str = "replay_ns_per_event";

/// Name of the large-trace replay probe: ≥32k events across 16 ranks,
/// so per-replay setup amortises out and the steady-state event loop
/// dominates. Gated only when the baseline entry records it (older
/// entries predate the probe).
pub const REPLAY_BIG_PROBE: &str = "replay_big_ns_per_event";

/// Name of the depth-ladder replay probe: annotated replay under the
/// full three-rung sleep ladder, so the tracker's batched
/// `apply_windows` path carries WRPS, rate-reduction, and deep-sleep
/// windows in one stream. Gated only when the baseline entry records
/// it (older entries predate the ladder).
pub const LADDER_PROBE: &str = "ladder_apply_windows_ns_per_event";

fn min_ns_per_elem<F: FnMut() -> u64>(reps: u32, mut run: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut elems = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let n = run();
        let ns = t0.elapsed().as_nanos() as f64;
        elems = n;
        if n > 0 {
            best = best.min(ns / n as f64);
        }
    }
    (best, elems)
}

/// Interception cost over a full train-then-predict ALYA stream,
/// ns/call. This is the paper's per-call overhead path (gram formation +
/// PPA + controller) and the probe the CI regression gate watches.
pub fn probe_intercept(iters: usize, reps: u32) -> Probe {
    let stream = alya_stream(iters);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let (ns, elems) = min_ns_per_elem(reps, || {
        let mut rt = RankRuntime::new(0, cfg.clone());
        rt.reserve_events(stream.len());
        for &(call, gap) in &stream {
            rt.intercept(call, gap);
        }
        let ann = rt.finish(SimDuration::ZERO);
        assert!(ann.stats.correct_calls > 0, "bench stream never predicted");
        stream.len() as u64
    });
    Probe {
        name: INTERCEPT_PROBE.into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// PPA scan cost on a periodic gram stream, ns/gram.
pub fn probe_ppa_scan(grams: usize, reps: u32) -> Probe {
    let stream: Vec<u32> = (0..grams).map(|i| u32::from(i % 3 != 0)).collect();
    let (ns, elems) = min_ns_per_elem(reps, || {
        let mut ppa = Ppa::new(3, 64);
        for n in 1..=stream.len() {
            ppa.advance(&stream[..n]);
        }
        assert!(ppa.work().invocations > 0);
        stream.len() as u64
    });
    Probe {
        name: "ppa_scan_ns_per_gram".into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// End-to-end annotated replay, ns/event, with the scratch arena
/// recycled across repetitions (the sweep engine's steady state).
pub fn probe_replay(nprocs: u32, iters: usize, reps: u32) -> Probe {
    replay_probe_named(nprocs, iters, reps, REPLAY_PROBE)
}

/// [`probe_replay`] on a large multi-rank trace (16 ranks, ≥32k events
/// at the default `--iters`), reported as [`REPLAY_BIG_PROBE`]. The
/// small probe is dominated by per-replay setup (fabric construction,
/// scratch preparation); this one shows the steady-state cost of the
/// event loop itself.
pub fn probe_replay_big(nprocs: u32, iters: usize, reps: u32) -> Probe {
    replay_probe_named(nprocs, iters, reps, REPLAY_BIG_PROBE)
}

fn replay_probe_named(nprocs: u32, iters: usize, reps: u32, name: &str) -> Probe {
    let trace = replay_trace(nprocs, iters);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let ann = annotate_trace_jobs(&trace, &cfg, 1);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let events: u64 = trace.ranks.iter().map(|r| r.events.len() as u64).sum();
    let mut scratch = ReplayScratch::new();
    let (ns, elems) = min_ns_per_elem(reps, || {
        let r = replay_with_scratch(&trace, Some(&ann), &params, &opts, &mut scratch)
            .expect("bench replay");
        assert!(!r.exec_time.is_zero());
        events
    });
    Probe {
        name: name.into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// Annotated replay under the full depth ladder, ns/event, reported as
/// [`LADDER_PROBE`]. The trace's idle periods cycle through the three
/// rungs' profitability bands (300 µs → WRPS, 2 ms → rate reduction,
/// 20 ms → deep sleep), so every repetition drives the power tracker's
/// batched window accounting across all depths — the path the ladder
/// generalized — and the probe asserts the deeper rungs really engaged.
pub fn probe_ladder_apply_windows(nprocs: u32, iters: usize, reps: u32) -> Probe {
    let mut b = ibp_trace::TraceBuilder::new("bench-ladder", nprocs);
    for it in 0..iters {
        for r in 0..nprocs {
            let lead = if it == 0 { 0 } else { 20_000 };
            b.compute(r, SimDuration::from_us(lead));
            b.op(
                r,
                ibp_trace::MpiOp::Sendrecv {
                    to: (r + 1) % nprocs,
                    send_bytes: 2048,
                    from: (r + nprocs - 1) % nprocs,
                    recv_bytes: 2048,
                },
            );
            b.compute(r, SimDuration::from_us(300));
            b.op(r, ibp_trace::MpiOp::Allreduce { bytes: 8 });
            b.compute(r, SimDuration::from_us(2_000));
            b.op(r, ibp_trace::MpiOp::Allreduce { bytes: 8 });
        }
    }
    let trace = b.build();
    let cfg = ibp_network::IbGeneration::Qdr
        .ladder()
        .power_config(SimDuration::from_us(20), 0.01);
    let ann = annotate_trace_jobs(&trace, &cfg, 1);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let events: u64 = trace.ranks.iter().map(|r| r.events.len() as u64).sum();
    let mut scratch = ReplayScratch::new();
    let (ns, elems) = min_ns_per_elem(reps, || {
        let r = replay_with_scratch(&trace, Some(&ann), &params, &opts, &mut scratch)
            .expect("bench ladder replay");
        assert!(
            r.mean_rate_fraction() > 0.0 && r.mean_deep_fraction() > 0.0,
            "ladder probe never reached its deeper rungs"
        );
        events
    });
    Probe {
        name: LADDER_PROBE.into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// Whole-trace annotation with rank parallelism, ns/event at `jobs`
/// worker threads. The small probe sits under the engine's serial
/// cutover ([`ibp_core::SERIAL_CUTOVER_EVENTS`]), so `jobs4` measures
/// the cutover's no-pool path; [`probe_annotate_big`] measures the real
/// parallel path above it.
pub fn probe_annotate(nprocs: u32, iters: usize, jobs: usize, reps: u32) -> Probe {
    annotate_probe_named(nprocs, iters, jobs, reps, format!("annotate_jobs{jobs}_ns_per_event"))
}

/// [`probe_annotate`] on a trace sized above the serial cutover, so
/// multi-job runs exercise the thread pool for real. Reported as
/// `annotate_big_jobs{jobs}_ns_per_event`.
pub fn probe_annotate_big(nprocs: u32, iters: usize, jobs: usize, reps: u32) -> Probe {
    let trace = replay_trace(nprocs, iters);
    debug_assert!(
        jobs <= 1
            || ibp_core::effective_jobs(&trace.ranks, jobs) == jobs.min(trace.ranks.len()),
        "big annotate probe fell below the serial cutover"
    );
    drop(trace);
    annotate_probe_named(
        nprocs,
        iters,
        jobs,
        reps,
        format!("annotate_big_jobs{jobs}_ns_per_event"),
    )
}

fn annotate_probe_named(nprocs: u32, iters: usize, jobs: usize, reps: u32, name: String) -> Probe {
    let trace = replay_trace(nprocs, iters);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let events: u64 = trace.ranks.iter().map(|r| r.events.len() as u64).sum();
    let (ns, elems) = min_ns_per_elem(reps, || {
        let ann = annotate_trace_jobs(&trace, &cfg, jobs);
        assert_eq!(ann.ranks.len(), nprocs as usize);
        events
    });
    Probe {
        name,
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// Full protocol round trip through an in-process Unix-socket server,
/// ns/event aggregated over concurrent sessions: frame encode, socket
/// hop, panic-free decode, per-session mailbox, batch apply on the
/// intercept hot path, and the directive stream back. One server is
/// bound per probe; every repetition reconnects its sessions (session
/// ids are reusable after `Close`), so connection setup is amortised
/// over the stream, exactly as `ibpower load` does it. Since the
/// observability layer landed, this path is also the metrics-
/// instrumented one — every batch bumps the registry's atomic counters
/// — so the probe measures (and the `--check` gate bounds) the
/// instrumented cost, not a bare-path fiction.
pub fn probe_serve_roundtrip(iters: usize, sessions: usize, reps: u32) -> Probe {
    use ibp_serve::{run_load, Endpoint, LoadConfig, ServeConfig, Server, SessionSpec};

    let stream = alya_stream(iters);
    let events: Vec<(u16, u64)> = stream
        .iter()
        .map(|&(call, gap)| (call.id(), gap.as_ns()))
        .collect();
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let specs: Vec<SessionSpec> = (0..sessions as u32)
        .map(|rank| SessionSpec {
            rank,
            config: cfg.clone(),
            events: events.clone(),
            final_compute_ns: 0,
            golden_directives: None,
            golden_stats: None,
        })
        .collect();
    let total_events = (events.len() * sessions) as u64;

    let path = std::env::temp_dir().join(format!("ibp-bench-serve-{}.sock", std::process::id()));
    let endpoint = Endpoint::Unix(path);
    let server = Server::bind(&endpoint, ServeConfig::default()).expect("bench server bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let load = LoadConfig { batch: 64, split: None, check: false, ..Default::default() };
    let (ns, elems) = min_ns_per_elem(reps, || {
        let report = run_load(&bound, specs.clone(), &load).expect("bench load");
        assert_eq!(report.events_total, total_events);
        total_events
    });

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    handle.join().expect("bench server thread");
    Probe {
        name: SERVE_PROBE.into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// [`probe_serve_roundtrip`]'s scale-mode sibling: `sessions` sessions
/// multiplexed over a handful of driver connections against a
/// store-backed server whose LRU hot cap is an eighth of the session
/// count, ns/event. Every repetition therefore pages engines to and
/// from the snapshot store as the drivers round-robin the fleet — the
/// steady-state cost of serving far more sessions than fit in memory.
pub fn probe_serve_scale(iters: usize, sessions: usize, reps: u32) -> Probe {
    use ibp_serve::{
        run_load, Endpoint, LoadConfig, ServeConfig, Server, SessionSpec, SnapshotStore,
    };

    let stream = alya_stream(iters);
    let events: Vec<(u16, u64)> = stream
        .iter()
        .map(|&(call, gap)| (call.id(), gap.as_ns()))
        .collect();
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let specs: Vec<SessionSpec> = (0..sessions as u32)
        .map(|rank| SessionSpec {
            rank,
            config: cfg.clone(),
            events: events.clone(),
            final_compute_ns: 0,
            golden_directives: None,
            golden_stats: None,
        })
        .collect();
    let total_events = (events.len() * sessions) as u64;

    let dir = std::env::temp_dir().join(format!("ibp-bench-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (store, _) = SnapshotStore::open(&dir.join("store")).expect("bench scale store");
    let endpoint = Endpoint::Unix(dir.join("scale.sock"));
    let server = Server::bind(
        &endpoint,
        ServeConfig {
            workers: 2,
            io_threads: 2,
            max_hot_sessions: Some((sessions / 8).max(1)),
            ..Default::default()
        },
    )
    .expect("bench scale bind")
    .with_store(std::sync::Arc::new(store));
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let load = LoadConfig {
        batch: 64,
        drivers: 8.min(sessions.max(1)),
        ..Default::default()
    };
    let (ns, elems) = min_ns_per_elem(reps, || {
        let report = run_load(&bound, specs.clone(), &load).expect("bench scale load");
        assert_eq!(report.events_total, total_events);
        total_events
    });

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let summary = handle.join().expect("bench scale server thread");
    assert!(summary.evictions > 0, "scale probe never paged: {summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
    Probe {
        name: SCALE_PROBE.into(),
        ns_per_elem: ns,
        elems,
        reps,
    }
}

/// Run every probe at a size scaled by `iters` (the `--iters` flag;
/// the default 2000 matches the criterion benches' 10k-call stream).
pub fn run_all(iters: usize, reps: u32) -> Vec<Probe> {
    // Clamp the derived sizes so even the smallest accepted --iters
    // still produces non-empty workloads for every probe.
    let replay_iters = (iters / 40).max(1);
    // 16 ranks x 2 events/iter: 1024 iterations give the probe its
    // 32k-event floor even when --iters is small.
    let replay_big_iters = iters.max(2048) / 2;
    // 8 ranks x 2 events/iter: 2048 iterations is exactly the serial
    // cutover, so the big probes always take the parallel path.
    let big_iters = iters.max(ibp_core::SERIAL_CUTOVER_EVENTS / 16);
    vec![
        probe_intercept(iters, reps),
        probe_ppa_scan((3 * iters / 2).max(12), reps),
        probe_replay(8, replay_iters, reps),
        probe_replay_big(16, replay_big_iters, reps),
        // Enough periods that the predictor trains and the ladder's
        // deeper rungs engage even at the CLI's minimum --iters.
        probe_ladder_apply_windows(8, replay_iters.max(30), reps),
        probe_annotate(8, replay_iters, 1, reps),
        probe_annotate(8, replay_iters, 4, reps),
        probe_annotate_big(8, big_iters, 1, reps),
        probe_annotate_big(8, big_iters, 4, reps),
        probe_serve_roundtrip((iters / 4).max(2), 4, reps),
        probe_serve_scale((iters / 8).max(2), 48, reps),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_produce_finite_positive_numbers() {
        // 10 is the CLI's minimum --iters; both sizes must work.
        for iters in [10, 200] {
            for p in run_all(iters, 1) {
                assert!(p.ns_per_elem.is_finite(), "{} @{iters}", p.name);
                assert!(p.ns_per_elem > 0.0, "{} @{iters}", p.name);
                assert!(p.elems > 0, "{} @{iters}", p.name);
            }
        }
    }

    #[test]
    fn trajectory_roundtrips_through_json() {
        let t = Trajectory {
            entries: vec![ReportEntry {
                label: "seed".into(),
                probes: vec![Probe {
                    name: INTERCEPT_PROBE.into(),
                    ns_per_elem: 42.5,
                    elems: 1000,
                    reps: 3,
                }],
            }],
        };
        let s = serde_json::to_string_pretty(&t).unwrap();
        let back: Trajectory = serde_json::from_str(&s).unwrap();
        assert_eq!(back.entries.len(), 1);
        assert_eq!(
            back.entries[0].probe(INTERCEPT_PROBE).unwrap().ns_per_elem,
            42.5
        );
    }
}
