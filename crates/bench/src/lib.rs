//! Benchmark support crate; criterion benches live in `benches/`.
//!
//! [`hotpath`] is the dependency-light measurement core shared by the
//! criterion wrappers and the `ibpower bench-report` subcommand: it
//! times the paper-critical paths (PMPI interception, PPA scan, trace
//! replay, rank-parallel annotation) with plain [`std::time::Instant`]
//! so the CLI can emit regression-trackable numbers without pulling a
//! benchmark harness into the binary.

pub mod hotpath;
