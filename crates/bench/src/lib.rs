//! Benchmark support crate; benches live in `benches/`.
