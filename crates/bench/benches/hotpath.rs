//! Criterion wrappers over the [`ibp_bench::hotpath`] probes, so the
//! regression-gated paths get full statistical treatment locally while
//! CI's smoke job reuses the identical workloads through
//! `ibpower bench-report`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ibp_bench::hotpath;
use ibp_core::{PowerConfig, RankRuntime};
use ibp_network::{replay_with_scratch, ReplayOptions, ReplayScratch, SimParams};
use ibp_simcore::SimDuration;

fn bench_intercept_path(c: &mut Criterion) {
    let stream = hotpath::alya_stream(2000);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let mut g = c.benchmark_group("hotpath");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("intercept_ns_per_call", |b| {
        b.iter_batched(
            || {
                let mut rt = RankRuntime::new(0, cfg.clone());
                rt.reserve_events(stream.len());
                rt
            },
            |mut rt| {
                for &(call, gap) in &stream {
                    rt.intercept(call, gap);
                }
                rt.finish(SimDuration::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_replay_scratch(c: &mut Criterion) {
    let trace = hotpath::replay_trace(8, 50);
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let events: u64 = trace.ranks.iter().map(|r| r.events.len() as u64).sum();
    let mut g = c.benchmark_group("hotpath");
    g.throughput(Throughput::Elements(events));

    // Fresh arenas every replay (the old engine's behaviour) …
    g.bench_function("replay_fresh_scratch", |b| {
        b.iter(|| {
            replay_with_scratch(&trace, None, &params, &opts, &mut ReplayScratch::new())
                .expect("replay")
        })
    });
    // … vs the recycled arena the sweep engine sees.
    let mut scratch = ReplayScratch::new();
    g.bench_function("replay_reused_scratch", |b| {
        b.iter(|| replay_with_scratch(&trace, None, &params, &opts, &mut scratch).expect("replay"))
    });
    g.finish();
}

fn bench_serve_roundtrip(c: &mut Criterion) {
    use ibp_serve::{run_load, Endpoint, LoadConfig, ServeConfig, Server, SessionSpec};

    let stream = hotpath::alya_stream(500);
    let events: Vec<(u16, u64)> = stream
        .iter()
        .map(|&(call, gap)| (call.id(), gap.as_ns()))
        .collect();
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let sessions = 4u32;
    let specs: Vec<SessionSpec> = (0..sessions)
        .map(|rank| SessionSpec {
            rank,
            config: cfg.clone(),
            events: events.clone(),
            final_compute_ns: 0,
            golden_directives: None,
            golden_stats: None,
        })
        .collect();

    let path =
        std::env::temp_dir().join(format!("ibp-criterion-serve-{}.sock", std::process::id()));
    let server =
        Server::bind(&Endpoint::Unix(path), ServeConfig::default()).expect("bench server bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let load = LoadConfig {
        batch: 64,
        split: None,
        check: false,
        chaos: None,
        retry: Default::default(),
        drivers: 0,
        open_rate: 0,
    };
    let mut g = c.benchmark_group("hotpath");
    g.throughput(Throughput::Elements(events.len() as u64 * u64::from(sessions)));
    g.bench_function("serve_roundtrip", |b| {
        b.iter(|| run_load(&bound, specs.clone(), &load).expect("bench load"))
    });
    g.finish();

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    handle.join().expect("bench server thread");
}

criterion_group!(
    benches,
    bench_intercept_path,
    bench_replay_scratch,
    bench_serve_roundtrip
);
criterion_main!(benches);
