//! Microbenchmarks of the paper's core contribution: gram formation and
//! the Pattern Prediction Algorithm. The paper's Table IV reports 7–26 µs
//! per PPA-invoking call on 2010s-era Xeons through uthash; these benches
//! report what the Rust implementation actually costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ibp_core::{GramBuilder, GramInterner, Ppa, PowerConfig, RankRuntime};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall::{Allreduce, Sendrecv};

fn alya_stream(iters: usize) -> Vec<(ibp_trace::MpiCall, SimDuration)> {
    let mut v = Vec::with_capacity(iters * 5);
    for i in 0..iters {
        let lead = if i == 0 { 0 } else { 300 };
        v.push((Sendrecv, SimDuration::from_us(lead)));
        v.push((Sendrecv, SimDuration::from_us(2)));
        v.push((Sendrecv, SimDuration::from_us(3)));
        v.push((Allreduce, SimDuration::from_us(250)));
        v.push((Allreduce, SimDuration::from_us(250)));
    }
    v
}

fn bench_runtime_interception(c: &mut Criterion) {
    let stream = alya_stream(2000);
    let mut g = c.benchmark_group("runtime");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("intercept_alya_10k_events", |b| {
        b.iter_batched(
            || RankRuntime::new(0, PowerConfig::paper(SimDuration::from_us(20), 0.01)),
            |mut rt| {
                for &(call, gap) in &stream {
                    rt.intercept(call, gap);
                }
                rt.finish(SimDuration::ZERO)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_gram_formation(c: &mut Criterion) {
    let stream = alya_stream(2000);
    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let mut g = c.benchmark_group("gram");
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("formation_10k_events", |b| {
        b.iter_batched(
            || (GramBuilder::new(&cfg), GramInterner::new()),
            |(mut builder, mut interner)| {
                let mut count = 0;
                for &(call, gap) in &stream {
                    if builder.push(call, gap, &mut interner).is_some() {
                        count += 1;
                    }
                }
                count
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_ppa_scan(c: &mut Criterion) {
    // Gram stream with period-3 pattern (A B B) like Fig. 3.
    let grams: Vec<u32> = (0..3000).map(|i| if i % 3 == 0 { 0 } else { 1 }).collect();
    let mut g = c.benchmark_group("ppa");
    g.throughput(Throughput::Elements(grams.len() as u64));
    g.bench_function("scan_until_declaration", |b| {
        b.iter_batched(
            || Ppa::new(3, 64),
            |mut ppa| {
                for n in 1..=grams.len() {
                    if ppa.advance(&grams[..n]).is_some() {
                        break;
                    }
                }
                ppa.work()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_runtime_interception,
    bench_gram_formation,
    bench_ppa_scan
);
criterion_main!(benches);
