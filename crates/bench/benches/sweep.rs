//! Sweep-engine benchmarks: serial vs parallel execution of one
//! exhibit-shaped grid, plus the memoization win in isolation.
//!
//! On a ≥4-core machine the parallel case should finish the grid at
//! least 2× faster than the serial escape hatch (the per-cell work —
//! annotate + replay — dominates, and cells are independent). On a
//! single-core CI box the two collapse to the same wall-clock; the
//! benchmark still validates that the engine adds no measurable
//! overhead over the bare loop.

use criterion::{criterion_group, criterion_main, Criterion};
use ibp_analysis::exhibits::SEED;
use ibp_analysis::{run_with_baseline, CellKey, RunConfig, SweepEngine, SweepOptions};
use ibp_workloads::AppKind;

/// The benchmark grid: every app at two small scales — the same shape
/// as an exhibit sweep, scaled down for bench runtime.
fn grid() -> Vec<CellKey> {
    AppKind::ALL
        .iter()
        .flat_map(|&app| {
            let procs: [u32; 2] = if app == AppKind::NasBt { [9, 16] } else { [8, 16] };
            procs.into_iter().map(move |n| CellKey::new(app, n, SEED))
        })
        .collect()
}

fn run_grid(engine: &SweepEngine, cells: &[CellKey]) -> Vec<f64> {
    engine.run_cells(cells, |&k| k, |ctx, key, _| {
        let cfg = RunConfig::new(20.0, 0.01);
        run_with_baseline(&ctx.trace, key.app, &cfg, &ctx.baseline()).power_saving_pct
    })
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let cells = grid();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    // Cold engine per iteration: measures generation + baseline + cell
    // work end to end, which is what the exhibit binaries pay.
    g.bench_function("grid_serial_cold", |b| {
        b.iter(|| run_grid(&SweepEngine::new(SweepOptions::serial()), &cells))
    });
    g.bench_function("grid_parallel_cold", |b| {
        b.iter(|| run_grid(&SweepEngine::new(SweepOptions::default()), &cells))
    });
    g.finish();
}

fn bench_memoization(c: &mut Criterion) {
    let cells = grid();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    // Warm engine reused across iterations: traces and baselines hit
    // the cache, isolating the memoization payoff (the second and later
    // sweeps of an `all`-style batch).
    let warm = SweepEngine::new(SweepOptions::serial());
    run_grid(&warm, &cells);
    g.bench_function("grid_serial_warm_cache", |b| b.iter(|| run_grid(&warm, &cells)));
    g.finish();
}

criterion_group!(benches, bench_serial_vs_parallel, bench_memoization);
criterion_main!(benches);
