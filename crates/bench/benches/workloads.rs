//! Trace-generation throughput for the five applications.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ibp_workloads::AppKind;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);
    for app in AppKind::ALL {
        let n = 16;
        let w = app.workload();
        let events = w.generate(n, 0).total_calls() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("generate_{}_16ranks", app.name()), |b| {
            let w = app.workload();
            b.iter(|| w.generate(n, 0))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
