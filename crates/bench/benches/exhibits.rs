//! One benchmark per paper exhibit: each regenerates (a reduced-scale
//! version of) the corresponding table or figure, so `cargo bench`
//! exercises every reproduction path end to end. The full-size exhibits
//! are produced by the `ibp-analysis` binaries (`table1`, `table3`,
//! `table4`, `fig7`–`fig10`, `all`).

use criterion::{criterion_group, criterion_main, Criterion};
use ibp_analysis::exhibits::SEED;
use ibp_analysis::{choose_gt, make_trace, run_on_trace, run_runtime_only, sweep, RunConfig};
use ibp_trace::IdleDistribution;
use ibp_workloads::AppKind;

/// Reduced scale axis for bench-speed exhibit regeneration.
fn bench_procs(app: AppKind) -> [u32; 2] {
    match app {
        AppKind::NasBt => [9, 16],
        _ => [8, 16],
    }
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibits");
    g.sample_size(10);
    g.bench_function("table1_idle_distribution", |b| {
        b.iter(|| {
            let mut rows = Vec::new();
            for app in AppKind::ALL {
                for &n in &bench_procs(app) {
                    let trace = make_trace(app, n, SEED);
                    rows.push(IdleDistribution::from_trace(&trace));
                }
            }
            rows
        })
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibits");
    g.sample_size(10);
    g.bench_function("table3_gt_selection", |b| {
        b.iter(|| {
            AppKind::ALL
                .iter()
                .map(|&app| {
                    let trace = make_trace(app, bench_procs(app)[0], SEED);
                    choose_gt(&trace, app, 0.01).gt_us
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibits");
    g.sample_size(10);
    g.bench_function("table4_ppa_overheads", |b| {
        b.iter(|| {
            AppKind::ALL
                .iter()
                .map(|&app| {
                    let trace = make_trace(app, 16, SEED);
                    let cfg = RunConfig::new(20.0, 0.01);
                    let r = run_runtime_only(&trace, app, &cfg);
                    (r.stats.ppa_invocation_pct(), r.stats.overhead_per_call_us())
                })
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibits");
    g.sample_size(10);
    for (name, disp) in [("fig7_disp10", 0.10), ("fig8_disp5", 0.05), ("fig9_disp1", 0.01)] {
        g.bench_function(format!("{name}_savings_and_slowdown"), |b| {
            b.iter(|| {
                AppKind::ALL
                    .iter()
                    .map(|&app| {
                        let trace = make_trace(app, bench_procs(app)[0], SEED);
                        let cfg = RunConfig::new(20.0, disp);
                        let r = run_on_trace(&trace, app, &cfg);
                        (r.power_saving_pct, r.slowdown_pct)
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhibits");
    g.sample_size(10);
    g.bench_function("fig10_gt_sweep_gromacs", |b| {
        let trace = make_trace(AppKind::Gromacs, 16, SEED);
        b.iter(|| sweep(&trace, AppKind::Gromacs, 0.01))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table3,
    bench_table4,
    bench_figures,
    bench_fig10
);
criterion_main!(benches);
