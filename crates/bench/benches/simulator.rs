//! Microbenchmarks of the replay engine and fabric.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ibp_network::{decompose, replay, Fabric, ReplayOptions, SimParams};
use ibp_simcore::SimTime;
use ibp_trace::MpiOp;
use ibp_workloads::{Alya, Workload};

fn bench_fabric_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.throughput(Throughput::Elements(1));
    g.bench_function("transfer_cross_leaf", |b| {
        let mut f = Fabric::new(SimParams::paper(), 128, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000;
            f.transfer(SimTime::from_ns(t), 0, 100, 4096)
        })
    });
    g.finish();
}

fn bench_collective_decompose(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    for n in [8u32, 128] {
        g.bench_function(format!("allreduce_decompose_n{n}"), |b| {
            b.iter(|| {
                (0..n)
                    .map(|r| decompose(&MpiOp::Allreduce { bytes: 8 }, r, n).len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let alya = Alya {
        iterations: 40,
        ..Default::default()
    };
    let trace = alya.generate(16, 1);
    let events = trace.total_calls() as u64;
    let params = SimParams::paper();
    let opts = ReplayOptions::default();
    let mut g = c.benchmark_group("replay");
    g.sample_size(20);
    g.throughput(Throughput::Elements(events));
    g.bench_function("alya_16ranks_baseline", |b| {
        b.iter(|| replay(&trace, None, &params, &opts))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fabric_transfer,
    bench_collective_decompose,
    bench_replay
);
criterion_main!(benches);
