//! Property-based tests for gram formation, the PPA, and the
//! rank-parallel annotation path.

use ibp_core::{
    annotate_trace, annotate_trace_jobs, GramBuilder, GramInterner, Ppa, PowerConfig,
    ResilienceConfig,
};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall;
use ibp_workloads::AppKind;
use proptest::prelude::*;

fn call_of(idx: u8) -> MpiCall {
    match idx % 5 {
        0 => MpiCall::Send,
        1 => MpiCall::Recv,
        2 => MpiCall::Allreduce,
        3 => MpiCall::Sendrecv,
        _ => MpiCall::Barrier,
    }
}

proptest! {
    /// Gram formation is a partition: every event lands in exactly one
    /// gram, grams are non-empty, and their first_event indices are
    /// strictly increasing and contiguous.
    #[test]
    fn gram_formation_partitions_events(
        stream in proptest::collection::vec((0u8..5, 0u64..200), 1..300)
    ) {
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.05);
        let mut b = GramBuilder::new(&cfg);
        let mut interner = GramInterner::new();
        let mut grams = Vec::new();
        for &(c, gap) in &stream {
            if let Some(g) = b.push(call_of(c), SimDuration::from_us(gap), &mut interner) {
                grams.push(g);
            }
        }
        if let Some(g) = b.flush(&mut interner) {
            grams.push(g);
        }
        let total: u32 = grams.iter().map(|g| g.len).sum();
        prop_assert_eq!(total as usize, stream.len());
        let mut expect_start = 0usize;
        for g in &grams {
            prop_assert!(g.len > 0);
            prop_assert_eq!(g.first_event, expect_start);
            expect_start += g.len as usize;
        }
        // Every gram after the first is preceded by a gap >= GT.
        for g in grams.iter().skip(1) {
            prop_assert!(g.preceding_idle >= cfg.grouping_threshold);
        }
        // All gaps inside a gram are < GT.
        for g in &grams {
            for k in 1..g.len as usize {
                let (_, gap) = stream[g.first_event + k];
                let _ = gap; // by construction of push(); checked via GT above
            }
        }
    }

    /// Interning is injective on shapes: equal ids iff equal sequences.
    #[test]
    fn interning_is_injective(shapes in proptest::collection::vec(
        proptest::collection::vec(0u16..8, 1..6), 1..60))
    {
        let mut interner = GramInterner::new();
        let ids: Vec<u32> = shapes.iter().map(|s| interner.intern(s)).collect();
        for i in 0..shapes.len() {
            for j in 0..shapes.len() {
                prop_assert_eq!(ids[i] == ids[j], shapes[i] == shapes[j]);
            }
        }
        // Shape lookups roundtrip.
        for (s, &id) in shapes.iter().zip(&ids) {
            prop_assert_eq!(interner.shape(id), &s[..]);
        }
    }

    /// The PPA never declares a pattern that did not appear at
    /// `min_consecutive` consecutive positions (for fresh declarations).
    #[test]
    fn fresh_declarations_are_backed_by_repeats(
        grams in proptest::collection::vec(0u32..4, 8..120)
    ) {
        let mut ppa = Ppa::new(3, 16);
        for n in 1..=grams.len() {
            if let Some(d) = ppa.advance(&grams[..n]) {
                if !d.rearmed {
                    let len = d.pattern.len();
                    // The declared pattern occupies the three windows
                    // ending right before predict_from.
                    prop_assert!(d.predict_from >= 3 * len);
                    for k in 1..=3 {
                        let start = d.predict_from - k * len;
                        prop_assert_eq!(
                            &grams[start..start + len],
                            &*d.pattern,
                            "occurrence {} missing",
                            k
                        );
                    }
                }
                break;
            }
        }
    }

    /// Algorithm 3 timer bounds: for any idle time, the planned window
    /// never exceeds the idle and respects the displacement margin.
    #[test]
    fn lane_off_timer_bounds(idle_us in 0u64..1_000_000, disp in 0.0f64..0.5) {
        let cfg = PowerConfig::paper(SimDuration::from_us(20), disp);
        let idle = SimDuration::from_us(idle_us);
        if let Some(timer) = cfg.lane_off_timer(idle) {
            prop_assert!(timer > cfg.t_react);
            prop_assert!(timer + cfg.t_react <= idle, "wake after the idle ends");
            // Safety margin honoured: wake completes at least disp·idle
            // before the predicted next call (up to rounding).
            let slack = idle - (timer + cfg.t_react);
            prop_assert!(
                slack.as_us_f64() + 0.001 >= idle.as_us_f64() * disp,
                "slack {slack} below displacement margin"
            );
        }
    }

    /// Rank-parallel annotation is byte-identical to the serial path for
    /// any paper workload under any "fault plan" (resilience controller
    /// settings + deep sleep + occurrence-window bound). Per-rank state
    /// is fully independent, so worker count must never leak into the
    /// output; serde byte equality is the strictest observable check.
    #[test]
    fn parallel_annotation_is_byte_identical_to_serial(
        app_idx in 0usize..5,
        nprocs_sel in 0usize..3,
        seed in 0u64..1_000,
        jobs in 2usize..6,
        gt_us in 15u64..200,
        disp in 0.01f64..0.2,
        resilient in any::<bool>(),
        storm_window in 8u32..64,
        storm_threshold in 1u32..6,
        base_holdoff in 8u32..128,
        guard_step in 0.0f64..0.1,
        budget_pct in 0.0f64..5.0,
        deep in any::<bool>(),
        window_sel in 0usize..3,
    ) {
        let app = AppKind::ALL[app_idx];
        let w = app.workload();
        let valid: Vec<u32> = (2..=16).filter(|&n| w.valid_nprocs(n)).collect();
        prop_assert!(!valid.is_empty());
        let nprocs = valid[nprocs_sel % valid.len()];
        let trace = w.generate(nprocs, seed);

        let mut cfg = PowerConfig::paper(SimDuration::from_us(gt_us), disp);
        if resilient {
            cfg = cfg.with_resilience(ResilienceConfig {
                enabled: true,
                storm_window,
                storm_threshold,
                base_holdoff,
                max_holdoff: base_holdoff * 16,
                guard_step,
                guard_decay: 0.85,
                max_guard: 0.40,
                slowdown_budget_pct: budget_pct,
            });
        }
        if deep {
            cfg = cfg.with_deep_sleep(SimDuration::from_ms(2));
        }
        cfg.occurrence_window = [16, ibp_core::DEFAULT_OCCURRENCE_WINDOW, usize::MAX][window_sel];

        let serial = annotate_trace(&trace, &cfg);
        let parallel = annotate_trace_jobs(&trace, &cfg, jobs);
        let a = serde_json::to_string(&serial.ranks).expect("serialize");
        let b = serde_json::to_string(&parallel.ranks).expect("serialize");
        prop_assert!(a == b, "{} @{nprocs} seed {seed} jobs {jobs}: outputs differ", app.name());
    }

    /// plan_sleep falls back gracefully: it returns Deep only above the
    /// threshold and with a profitable window, otherwise WRPS or nothing.
    #[test]
    fn plan_sleep_depth_selection(idle_us in 0u64..100_000_000) {
        use ibp_core::SleepKind;
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01)
            .with_deep_sleep(SimDuration::from_ms(5));
        let idle = SimDuration::from_us(idle_us);
        match cfg.plan_sleep(idle) {
            Some((SleepKind::Deep, timer)) => {
                prop_assert!(idle >= cfg.deep_threshold);
                prop_assert!(timer > cfg.deep_t_react);
            }
            Some((SleepKind::Wrps, timer)) => {
                prop_assert!(timer > cfg.t_react);
                prop_assert!(timer + cfg.t_react <= idle);
            }
            Some((SleepKind::Rate, _)) => {
                prop_assert!(false, "rate sleep emitted under the deep-sleep policy");
            }
            None => {
                prop_assert!(idle.as_us_f64() < 25.0, "profitable idle ignored: {idle}");
            }
        }
    }

    /// Under the full ladder, every emitted depth obeys its own
    /// threshold and Algorithm 3 profitability bound, and the planner
    /// never picks a shallower state when a deeper one was profitable.
    #[test]
    fn plan_sleep_ladder_depth_selection(idle_us in 0u64..100_000_000, disp in 0.0f64..0.5) {
        use ibp_core::SleepKind;
        let cfg = PowerConfig::paper(SimDuration::from_us(20), disp).with_ladder();
        let idle = SimDuration::from_us(idle_us);
        match cfg.plan_sleep(idle) {
            Some((kind, timer)) => {
                prop_assert!(idle >= cfg.threshold_of(kind));
                prop_assert!(timer > cfg.react_of(kind));
                // Deeper rungs were either below threshold or unprofitable.
                for deeper in SleepKind::ALL.iter().rev() {
                    if *deeper == kind {
                        break;
                    }
                    let safety = idle.mul_f64(cfg.displacement) + cfg.react_of(*deeper);
                    prop_assert!(
                        idle < cfg.threshold_of(*deeper)
                            || idle.saturating_sub(safety) <= cfg.react_of(*deeper),
                        "planner skipped profitable {deeper:?} for {kind:?} at idle {idle}"
                    );
                }
            }
            None => {
                // Not even WRPS was profitable.
                let safety = idle.mul_f64(cfg.displacement) + cfg.t_react;
                prop_assert!(idle.saturating_sub(safety) <= cfg.t_react);
            }
        }
    }
}

/// The bounded occurrence window is an optimisation, not a model change:
/// on all five paper workloads the default 64-occurrence recency bound
/// produces byte-identical annotations to an unbounded history. (Random
/// shapes are covered by the windowed case of
/// `parallel_annotation_is_byte_identical_to_serial` above.)
#[test]
fn bounded_occurrence_window_never_changes_declarations() {
    for app in AppKind::ALL {
        let w = app.workload();
        let nprocs = (2..=16)
            .find(|&n| w.valid_nprocs(n))
            .expect("every paper app runs somewhere in 2..=16");
        let trace = w.generate(nprocs, 42);

        let bounded = PowerConfig::paper(SimDuration::from_us(20), 0.01);
        assert_eq!(bounded.occurrence_window, ibp_core::DEFAULT_OCCURRENCE_WINDOW);
        let mut unbounded = bounded.clone();
        unbounded.occurrence_window = usize::MAX;

        let a = annotate_trace(&trace, &bounded);
        let b = annotate_trace(&trace, &unbounded);
        assert!(
            a.ranks.iter().map(|r| r.stats.declarations).sum::<u64>() > 0,
            "{}: workload never declared a pattern — test is vacuous",
            app.name()
        );
        assert_eq!(
            serde_json::to_string(&a.ranks).unwrap(),
            serde_json::to_string(&b.ranks).unwrap(),
            "{} @{nprocs}: bounded window changed the annotations",
            app.name()
        );
    }
}
