//! Property-based tests for gram formation and the PPA.

use ibp_core::{GramBuilder, GramInterner, Ppa, PowerConfig};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall;
use proptest::prelude::*;

fn call_of(idx: u8) -> MpiCall {
    match idx % 5 {
        0 => MpiCall::Send,
        1 => MpiCall::Recv,
        2 => MpiCall::Allreduce,
        3 => MpiCall::Sendrecv,
        _ => MpiCall::Barrier,
    }
}

proptest! {
    /// Gram formation is a partition: every event lands in exactly one
    /// gram, grams are non-empty, and their first_event indices are
    /// strictly increasing and contiguous.
    #[test]
    fn gram_formation_partitions_events(
        stream in proptest::collection::vec((0u8..5, 0u64..200), 1..300)
    ) {
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.05);
        let mut b = GramBuilder::new(&cfg);
        let mut interner = GramInterner::new();
        let mut grams = Vec::new();
        for &(c, gap) in &stream {
            if let Some(g) = b.push(call_of(c), SimDuration::from_us(gap), &mut interner) {
                grams.push(g);
            }
        }
        if let Some(g) = b.flush(&mut interner) {
            grams.push(g);
        }
        let total: u32 = grams.iter().map(|g| g.len).sum();
        prop_assert_eq!(total as usize, stream.len());
        let mut expect_start = 0usize;
        for g in &grams {
            prop_assert!(g.len > 0);
            prop_assert_eq!(g.first_event, expect_start);
            expect_start += g.len as usize;
        }
        // Every gram after the first is preceded by a gap >= GT.
        for g in grams.iter().skip(1) {
            prop_assert!(g.preceding_idle >= cfg.grouping_threshold);
        }
        // All gaps inside a gram are < GT.
        for g in &grams {
            for k in 1..g.len as usize {
                let (_, gap) = stream[g.first_event + k];
                let _ = gap; // by construction of push(); checked via GT above
            }
        }
    }

    /// Interning is injective on shapes: equal ids iff equal sequences.
    #[test]
    fn interning_is_injective(shapes in proptest::collection::vec(
        proptest::collection::vec(0u16..8, 1..6), 1..60))
    {
        let mut interner = GramInterner::new();
        let ids: Vec<u32> = shapes.iter().map(|s| interner.intern(s)).collect();
        for i in 0..shapes.len() {
            for j in 0..shapes.len() {
                prop_assert_eq!(ids[i] == ids[j], shapes[i] == shapes[j]);
            }
        }
        // Shape lookups roundtrip.
        for (s, &id) in shapes.iter().zip(&ids) {
            prop_assert_eq!(interner.shape(id), &s[..]);
        }
    }

    /// The PPA never declares a pattern that did not appear at
    /// `min_consecutive` consecutive positions (for fresh declarations).
    #[test]
    fn fresh_declarations_are_backed_by_repeats(
        grams in proptest::collection::vec(0u32..4, 8..120)
    ) {
        let mut ppa = Ppa::new(3, 16);
        for n in 1..=grams.len() {
            if let Some(d) = ppa.advance(&grams[..n]) {
                if !d.rearmed {
                    let len = d.pattern.len();
                    // The declared pattern occupies the three windows
                    // ending right before predict_from.
                    prop_assert!(d.predict_from >= 3 * len);
                    for k in 1..=3 {
                        let start = d.predict_from - k * len;
                        prop_assert_eq!(
                            &grams[start..start + len],
                            &*d.pattern,
                            "occurrence {} missing",
                            k
                        );
                    }
                }
                break;
            }
        }
    }

    /// Algorithm 3 timer bounds: for any idle time, the planned window
    /// never exceeds the idle and respects the displacement margin.
    #[test]
    fn lane_off_timer_bounds(idle_us in 0u64..1_000_000, disp in 0.0f64..0.5) {
        let cfg = PowerConfig::paper(SimDuration::from_us(20), disp);
        let idle = SimDuration::from_us(idle_us);
        if let Some(timer) = cfg.lane_off_timer(idle) {
            prop_assert!(timer > cfg.t_react);
            prop_assert!(timer + cfg.t_react <= idle, "wake after the idle ends");
            // Safety margin honoured: wake completes at least disp·idle
            // before the predicted next call (up to rounding).
            let slack = idle - (timer + cfg.t_react);
            prop_assert!(
                slack.as_us_f64() + 0.001 >= idle.as_us_f64() * disp,
                "slack {slack} below displacement margin"
            );
        }
    }

    /// plan_sleep falls back gracefully: it returns Deep only above the
    /// threshold and with a profitable window, otherwise WRPS or nothing.
    #[test]
    fn plan_sleep_depth_selection(idle_us in 0u64..100_000_000) {
        use ibp_core::SleepKind;
        let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01)
            .with_deep_sleep(SimDuration::from_ms(5));
        let idle = SimDuration::from_us(idle_us);
        match cfg.plan_sleep(idle) {
            Some((SleepKind::Deep, timer)) => {
                prop_assert!(idle >= cfg.deep_threshold);
                prop_assert!(timer > cfg.deep_t_react);
            }
            Some((SleepKind::Wrps, timer)) => {
                prop_assert!(timer > cfg.t_react);
                prop_assert!(timer + cfg.t_react <= idle);
            }
            None => {
                prop_assert!(idle.as_us_f64() < 25.0, "profitable idle ignored: {idle}");
            }
        }
    }
}
