//! Counting-allocator proof of the ISSUE's zero-allocation claim: once a
//! rank runtime has declared a pattern and its output buffers are
//! reserved, the steady-state (predicting) intercept path never touches
//! the heap. The library itself forbids `unsafe`; this integration-test
//! binary is a separate crate, so a `#[global_allocator]` wrapper is
//! allowed here.

use ibp_core::{GramInterner, PowerConfig, RankRuntime};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall::{Allreduce, Sendrecv};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Pass-through to the system allocator that counts every heap request
/// (alloc, zeroed alloc, and growth via realloc) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Tests in this binary run concurrently, but the counter is global: an
/// armed window must not see another test's allocations — including its
/// *setup* allocations, which happen outside `count_allocs`. Each test
/// therefore holds this lock for its whole body.
static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with allocation counting armed and return how many heap
/// requests it made. The caller must hold [`GATE`].
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

/// One period of the ALYA-like stream (Fig. 2): a three-call Sendrecv
/// gram followed by two single-Allreduce grams.
fn period(lead_us: u64) -> [(ibp_trace::MpiCall, SimDuration); 5] {
    [
        (Sendrecv, SimDuration::from_us(lead_us)),
        (Sendrecv, SimDuration::from_us(2)),
        (Sendrecv, SimDuration::from_us(3)),
        (Allreduce, SimDuration::from_us(250)),
        (Allreduce, SimDuration::from_us(250)),
    ]
}

#[test]
fn steady_state_intercept_path_is_allocation_free() {
    let _gate = GATE.lock().unwrap();
    const TRAIN_ITERS: usize = 40;
    const MEASURED_ITERS: usize = 250; // 1250 intercepted calls

    let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.01);
    let mut rt = RankRuntime::new(0, cfg);
    rt.reserve_events((TRAIN_ITERS + MEASURED_ITERS) * 5);

    for i in 0..TRAIN_ITERS {
        for (call, gap) in period(if i == 0 { 0 } else { 300 }) {
            rt.intercept(call, gap);
        }
    }
    assert!(
        rt.predicting(),
        "training stream must reach prediction mode before measuring"
    );

    let steady = period(300);
    let (allocs, ()) = count_allocs(|| {
        for _ in 0..MEASURED_ITERS {
            for &(call, gap) in &steady {
                rt.intercept(call, gap);
            }
        }
    });
    assert!(
        rt.predicting(),
        "measured stream must stay in prediction mode"
    );
    assert_eq!(
        allocs, 0,
        "steady-state intercept path allocated {allocs} times over {} calls",
        MEASURED_ITERS * 5
    );

    // The run did real work: every measured call was predicted.
    assert!(rt.stats().correct_calls >= (MEASURED_ITERS * 5) as u64);
}

#[test]
fn gram_interner_hit_path_is_allocation_free() {
    let _gate = GATE.lock().unwrap();
    let mut interner = GramInterner::new();
    let shapes: Vec<Vec<u16>> = (0..32)
        .map(|i| (0..=(i % 5) as u16).map(|k| k + i as u16).collect())
        .collect();
    let first: Vec<u32> = shapes.iter().map(|s| interner.intern(s)).collect();

    let (allocs, hits) = count_allocs(|| {
        let mut ids = [0u32; 32];
        for _ in 0..100 {
            for (k, s) in shapes.iter().enumerate() {
                ids[k] = interner.intern(s);
            }
        }
        ids
    });
    assert_eq!(allocs, 0, "re-interning known shapes allocated {allocs} times");
    assert_eq!(&hits[..], &first[..], "hit path must return the original ids");
}
