//! # ibp-core — the paper's contribution
//!
//! Rust implementation of the software-managed InfiniBand link power
//! reduction mechanism of *Dickov et al., ICPP 2014*:
//!
//! * [`gram`] — **Algorithm 1**: grouping of MPI calls into grams by the
//!   grouping threshold GT;
//! * [`ppa`] — **Algorithm 2**: the n-gram Pattern Prediction Algorithm
//!   that detects continuously repeating gram patterns (validated against
//!   the paper's Fig. 3 walk-through);
//! * [`runtime`] — the PMPI-style interception loop and **Algorithm 3**,
//!   the power-mode controller that programs lane-off timers with a
//!   displacement-factor safety margin and handles both misprediction
//!   kinds (pattern break, late reactivation);
//! * [`annotate`] — whole-trace application, producing the lane
//!   directives / overheads / penalties that `ibp-network` replays;
//! * [`stats`] — hit-rate and overhead accounting (Tables III & IV).
//!
//! ## Quickstart
//!
//! ```
//! use ibp_core::{PowerConfig, RankRuntime};
//! use ibp_simcore::SimDuration;
//! use ibp_trace::MpiCall::{Allreduce, Sendrecv};
//!
//! let cfg = PowerConfig::paper(SimDuration::from_us(20), 0.10);
//! let mut rt = RankRuntime::new(0, cfg);
//! // Feed the Fig. 2 Alya stream: three Sendrecvs back-to-back, then two
//! // Allreduces after long compute phases, repeated every iteration.
//! for iter in 0..6 {
//!     let lead = if iter == 0 { SimDuration::ZERO } else { SimDuration::from_us(300) };
//!     rt.intercept(Sendrecv, lead);
//!     rt.intercept(Sendrecv, SimDuration::from_us(2));
//!     rt.intercept(Sendrecv, SimDuration::from_us(3));
//!     rt.intercept(Allreduce, SimDuration::from_us(300));
//!     rt.intercept(Allreduce, SimDuration::from_us(300));
//! }
//! assert!(rt.predicting(), "pattern 41-41-41,10,10 declared (Fig. 3)");
//! ```

#![warn(missing_docs)]
#![warn(clippy::perf)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod baselines;
pub mod config;
pub mod gram;
pub mod pattern;
pub mod ppa;
pub mod runtime;
pub mod snapshot;
pub mod stats;

pub use annotate::{
    annotate_trace, annotate_trace_jobs, effective_jobs, map_ranks, TraceAnnotations,
    SERIAL_CUTOVER_EVENTS,
};
pub use baselines::{
    history_annotate_rank, history_annotate_trace, history_annotate_trace_jobs,
    oracle_annotate_rank, oracle_annotate_trace, oracle_annotate_trace_jobs,
    reactive_annotate_rank, reactive_annotate_trace, reactive_annotate_trace_jobs,
};
pub use config::{PowerConfig, PowerPolicy, ResilienceConfig, SleepKind};
pub use gram::{Gram, GramBuilder, GramId, GramInterner};
pub use pattern::{
    OccurrenceWindow, PatternEntry, PatternId, PatternInterner, PatternList, PatternUpdate,
    RunningMean, DEFAULT_OCCURRENCE_WINDOW,
};
pub use ppa::{Declaration, Ppa, PpaWork};
pub use runtime::{annotate_rank, LaneDirective, RankAnnotation, RankRuntime};
pub use snapshot::{RuntimeSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use stats::RankStats;
