//! Whole-trace annotation: run the runtime over every rank.
//!
//! This mirrors the paper's evaluation methodology: the PPA runs over the
//! recorded traces, the resulting lane-off events / overheads /
//! reactivation delays are inserted, and the modified traces are then
//! replayed through the network simulator (`ibp-network`).

use crate::config::PowerConfig;
use crate::runtime::{annotate_rank, RankAnnotation};
use crate::stats::RankStats;
use ibp_trace::Trace;
use serde::{Deserialize, Serialize};

/// A trace plus everything the power-saving runtime derived from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnnotations {
    /// Per-rank annotations, indexed by rank.
    pub ranks: Vec<RankAnnotation>,
}

impl TraceAnnotations {
    /// Aggregate statistics over all ranks (sums of counters; ratios are
    /// recomputed from the sums, which matches the paper's "averaged over
    /// all MPI processes").
    pub fn aggregate_stats(&self) -> RankStats {
        let mut agg = RankStats::default();
        for r in &self.ranks {
            agg.merge(&r.stats);
        }
        agg
    }

    /// Mean per-rank hit rate (Table III averages per process).
    pub fn mean_hit_rate_pct(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| r.stats.hit_rate_pct())
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// Mean per-rank quick power-saving estimate (%), see
    /// [`RankStats::est_power_saving_pct`].
    pub fn mean_est_power_saving_pct(&self, low_power_draw: f64) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| r.stats.est_power_saving_pct(low_power_draw))
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// Total number of lane-off directives across ranks.
    pub fn total_directives(&self) -> usize {
        self.ranks.iter().map(|r| r.directives.len()).sum()
    }
}

/// Run the power-saving runtime over every rank of `trace`.
pub fn annotate_trace(trace: &Trace, cfg: &PowerConfig) -> TraceAnnotations {
    TraceAnnotations {
        ranks: trace
            .ranks
            .iter()
            .map(|r| annotate_rank(r, cfg))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_simcore::SimDuration;
    use ibp_trace::{MpiOp, TraceBuilder};

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn alya_like(nprocs: u32, iters: usize) -> Trace {
        let mut b = TraceBuilder::new("alya-like", nprocs);
        for it in 0..iters {
            for r in 0..nprocs {
                let lead = if it == 0 { us(0) } else { us(300) };
                b.compute(r, lead);
                for k in 0..3u64 {
                    if k > 0 {
                        b.compute(r, us(2));
                    }
                    b.op(
                        r,
                        MpiOp::Sendrecv {
                            to: (r + 1) % nprocs,
                            send_bytes: 2048,
                            from: (r + nprocs - 1) % nprocs,
                            recv_bytes: 2048,
                        },
                    );
                }
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        b.build()
    }

    #[test]
    fn annotates_every_rank() {
        let trace = alya_like(4, 20);
        let cfg = PowerConfig::default();
        let ann = annotate_trace(&trace, &cfg);
        assert_eq!(ann.ranks.len(), 4);
        for (i, r) in ann.ranks.iter().enumerate() {
            assert_eq!(r.rank as usize, i);
            assert_eq!(r.overhead.len(), trace.ranks[i].call_count());
            assert!(r.stats.correct_calls > 0, "rank {i} never predicted");
        }
    }

    #[test]
    fn aggregate_sums_counters() {
        let trace = alya_like(3, 15);
        let ann = annotate_trace(&trace, &PowerConfig::default());
        let agg = ann.aggregate_stats();
        assert_eq!(
            agg.total_calls as usize,
            trace.total_calls(),
            "aggregate call count must equal the trace's"
        );
        let sum: u64 = ann.ranks.iter().map(|r| r.stats.correct_calls).sum();
        assert_eq!(agg.correct_calls, sum);
    }

    #[test]
    fn symmetric_ranks_have_symmetric_outcomes() {
        // Every rank runs the same pattern, so hit rates must agree.
        let trace = alya_like(4, 30);
        let ann = annotate_trace(&trace, &PowerConfig::default());
        let rates: Vec<f64> = ann.ranks.iter().map(|r| r.stats.hit_rate_pct()).collect();
        for r in &rates[1..] {
            assert!((r - rates[0]).abs() < 1e-9, "rates diverged: {rates:?}");
        }
        assert!(ann.mean_hit_rate_pct() > 80.0);
        assert!(ann.mean_est_power_saving_pct(0.43) > 10.0);
        assert!(ann.total_directives() > 0);
    }
}
