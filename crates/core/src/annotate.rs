//! Whole-trace annotation: run the runtime over every rank.
//!
//! This mirrors the paper's evaluation methodology: the PPA runs over the
//! recorded traces, the resulting lane-off events / overheads /
//! reactivation delays are inserted, and the modified traces are then
//! replayed through the network simulator (`ibp-network`).

use crate::config::PowerConfig;
use crate::runtime::{annotate_rank, RankAnnotation};
use crate::stats::RankStats;
use ibp_trace::{RankTrace, Trace};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A trace plus everything the power-saving runtime derived from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnnotations {
    /// Per-rank annotations, indexed by rank.
    pub ranks: Vec<RankAnnotation>,
}

impl TraceAnnotations {
    /// Aggregate statistics over all ranks (sums of counters; ratios are
    /// recomputed from the sums, which matches the paper's "averaged over
    /// all MPI processes").
    pub fn aggregate_stats(&self) -> RankStats {
        let mut agg = RankStats::default();
        for r in &self.ranks {
            agg.merge(&r.stats);
        }
        agg
    }

    /// Mean per-rank hit rate (Table III averages per process).
    pub fn mean_hit_rate_pct(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| r.stats.hit_rate_pct())
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// Mean per-rank quick power-saving estimate (%), see
    /// [`RankStats::est_power_saving_pct`].
    pub fn mean_est_power_saving_pct(&self, low_power_draw: f64) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks
            .iter()
            .map(|r| r.stats.est_power_saving_pct(low_power_draw))
            .sum::<f64>()
            / self.ranks.len() as f64
    }

    /// Total number of lane-off directives across ranks.
    pub fn total_directives(&self) -> usize {
        self.ranks.iter().map(|r| r.directives.len()).sum()
    }
}

/// Below this many total trace events, `map_ranks` ignores `jobs` and
/// runs serially. Even on the persistent pool (no thread spawning since
/// the work-stealing rewrite) a parallel map still pays queueing and
/// wake-up latency per task, and annotation runs at roughly a
/// microsecond per event, so tiny traces finish faster inline. 32k
/// events puts the cutover where coordination is safely under ~1% of
/// the serial runtime.
pub const SERIAL_CUTOVER_EVENTS: usize = 32 * 1024;

/// The worker count `map_ranks` will actually use for `ranks` when asked
/// for `jobs`: clamped to the rank count, and forced to 1 below the
/// [`SERIAL_CUTOVER_EVENTS`] size cutover. Exposed so benches and tests
/// can assert the cutover without timing anything.
pub fn effective_jobs(ranks: &[RankTrace], jobs: usize) -> usize {
    let jobs = jobs.max(1).min(ranks.len().max(1));
    if jobs <= 1 {
        return 1;
    }
    let events: usize = ranks.iter().map(|r| r.events.len()).sum();
    if events < SERIAL_CUTOVER_EVENTS {
        1
    } else {
        jobs
    }
}

/// Map `f` over the ranks of a trace on up to `jobs` worker threads,
/// collecting results in rank order. Ranks are annotated independently
/// (the runtime holds no cross-rank state), so the output is
/// byte-identical to the serial map *by construction* — parallelism only
/// changes which thread computes each element, never the element.
///
/// `jobs <= 1` (or a single rank) runs inline with no pool at all, and
/// small inputs are forced serial — see [`effective_jobs`].
pub fn map_ranks<T, F>(ranks: &[RankTrace], jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&RankTrace) -> T + Sync,
{
    let jobs = effective_jobs(ranks, jobs);
    if jobs <= 1 || ranks.len() <= 1 {
        return ranks.iter().map(f).collect();
    }
    // Runs on the process-wide persistent pool: spawning exactly `jobs`
    // self-scheduling tasks caps concurrency at `jobs` regardless of the
    // pool's width, and repeated calls reuse the same parked workers.
    let slots: Vec<Mutex<Option<T>>> = ranks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    rayon::global_pool().scope(|s| {
        for _ in 0..jobs {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ranks.len() {
                    break;
                }
                let out = f(&ranks[i]);
                *slots[i].lock().expect("rank slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("rank slot poisoned")
                .expect("every rank index was claimed exactly once")
        })
        .collect()
}

/// Run the power-saving runtime over every rank of `trace`.
pub fn annotate_trace(trace: &Trace, cfg: &PowerConfig) -> TraceAnnotations {
    annotate_trace_jobs(trace, cfg, 1)
}

/// [`annotate_trace`] with rank-level parallelism on up to `jobs`
/// threads. Output is identical to the serial version for any `jobs`.
pub fn annotate_trace_jobs(trace: &Trace, cfg: &PowerConfig, jobs: usize) -> TraceAnnotations {
    TraceAnnotations {
        ranks: map_ranks(&trace.ranks, jobs, |r| annotate_rank(r, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_simcore::SimDuration;
    use ibp_trace::{MpiOp, TraceBuilder};

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn alya_like(nprocs: u32, iters: usize) -> Trace {
        let mut b = TraceBuilder::new("alya-like", nprocs);
        for it in 0..iters {
            for r in 0..nprocs {
                let lead = if it == 0 { us(0) } else { us(300) };
                b.compute(r, lead);
                for k in 0..3u64 {
                    if k > 0 {
                        b.compute(r, us(2));
                    }
                    b.op(
                        r,
                        MpiOp::Sendrecv {
                            to: (r + 1) % nprocs,
                            send_bytes: 2048,
                            from: (r + nprocs - 1) % nprocs,
                            recv_bytes: 2048,
                        },
                    );
                }
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
                b.compute(r, us(300));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        b.build()
    }

    #[test]
    fn annotates_every_rank() {
        let trace = alya_like(4, 20);
        let cfg = PowerConfig::default();
        let ann = annotate_trace(&trace, &cfg);
        assert_eq!(ann.ranks.len(), 4);
        for (i, r) in ann.ranks.iter().enumerate() {
            assert_eq!(r.rank as usize, i);
            assert_eq!(r.overhead.len(), trace.ranks[i].call_count());
            assert!(r.stats.correct_calls > 0, "rank {i} never predicted");
        }
    }

    #[test]
    fn aggregate_sums_counters() {
        let trace = alya_like(3, 15);
        let ann = annotate_trace(&trace, &PowerConfig::default());
        let agg = ann.aggregate_stats();
        assert_eq!(
            agg.total_calls as usize,
            trace.total_calls(),
            "aggregate call count must equal the trace's"
        );
        let sum: u64 = ann.ranks.iter().map(|r| r.stats.correct_calls).sum();
        assert_eq!(agg.correct_calls, sum);
    }

    #[test]
    fn parallel_annotation_is_byte_identical_to_serial() {
        // Big enough to clear the serial cutover, so jobs > 1 really
        // does run the pool path being checked here.
        let trace = alya_like(6, 1_200);
        assert!(effective_jobs(&trace.ranks, 2) > 1, "trace below cutover");
        let cfg = PowerConfig::default();
        let serial = annotate_trace(&trace, &cfg);
        for jobs in [2, 3, 4, 16] {
            let par = annotate_trace_jobs(&trace, &cfg, jobs);
            assert_eq!(serial, par, "jobs={jobs} diverged from serial");
        }
    }

    #[test]
    fn small_traces_cut_over_to_serial() {
        // Below the event cutover a parallel request degrades to one
        // worker (pool setup would dominate); above it, it sticks.
        let small = alya_like(6, 25);
        let total: usize = small.ranks.iter().map(|r| r.events.len()).sum();
        assert!(total < SERIAL_CUTOVER_EVENTS);
        assert_eq!(effective_jobs(&small.ranks, 4), 1);
        assert_eq!(effective_jobs(&small.ranks, 1), 1);

        let big = alya_like(6, 1_200);
        let total: usize = big.ranks.iter().map(|r| r.events.len()).sum();
        assert!(total >= SERIAL_CUTOVER_EVENTS);
        assert_eq!(effective_jobs(&big.ranks, 4), 4);
        // Still clamped to the rank count and to >= 1.
        assert_eq!(effective_jobs(&big.ranks, 64), 6);
        assert_eq!(effective_jobs(&[], 4), 1);

        // Cutover or not, the output never changes.
        let cfg = PowerConfig::default();
        assert_eq!(
            annotate_trace(&small, &cfg),
            annotate_trace_jobs(&small, &cfg, 4)
        );
    }

    #[test]
    fn symmetric_ranks_have_symmetric_outcomes() {
        // Every rank runs the same pattern, so hit rates must agree.
        let trace = alya_like(4, 30);
        let ann = annotate_trace(&trace, &PowerConfig::default());
        let rates: Vec<f64> = ann.ranks.iter().map(|r| r.stats.hit_rate_pct()).collect();
        for r in &rates[1..] {
            assert!((r - rates[0]).abs() < 1e-9, "rates diverged: {rates:?}");
        }
        assert!(ann.mean_hit_rate_pct() > 80.0);
        assert!(ann.mean_est_power_saving_pct(0.43) > 10.0);
        assert!(ann.total_directives() > 0);
    }
}
