//! Alternative power-management policies for comparison.
//!
//! The paper motivates software prediction by contrast with two families
//! from its related work: hardware on/off schemes that react to observed
//! idleness (Alonso et al., Kim et al.) and idealised knowledge of link
//! usage (compiler-directed schemes, Li et al.). This module implements
//! both ends of that spectrum so the predictive mechanism can be placed
//! between them quantitatively:
//!
//! * [`oracle_annotate_rank`] — perfect knowledge of every idle interval:
//!   lanes shut down at the start of each exploitable gap and wake
//!   *exactly* on time, with zero mispredictions and zero software
//!   overhead. The unreachable upper bound on savings at zero slowdown.
//! * [`reactive_annotate_rank`] — the hardware baseline: lanes shut down
//!   after the link has been idle for a timeout τ, and wake *on demand*
//!   when the next communication arrives, stalling it for a full
//!   `T_react`. More aggressive than prediction (it exploits every gap
//!   longer than τ, predictable or not) but pays the reactivation
//!   latency on the critical path every single time — exactly the
//!   trade-off the paper's introduction describes.
//!
//! Both produce ordinary [`RankAnnotation`]s, so the replay engine and
//! the analysis pipeline treat them exactly like the predictive runtime.

use crate::config::{PowerConfig, SleepKind};
use crate::runtime::{LaneDirective, RankAnnotation};
use crate::stats::RankStats;
use ibp_simcore::SimDuration;
use ibp_trace::{RankTrace, Trace};

/// Annotate one rank with the oracle policy (see module docs).
pub fn oracle_annotate_rank(trace: &RankTrace, cfg: &PowerConfig) -> RankAnnotation {
    let n = trace.call_count();
    let mut directives = Vec::new();
    // The oracle "predicts" everything correctly.
    let mut stats = RankStats {
        total_calls: n as u64,
        predicted_calls: n as u64,
        correct_calls: n as u64,
        ..RankStats::default()
    };

    for (i, ev) in trace.events.iter().enumerate() {
        let gap = ev.compute_before;
        stats.nominal_duration += gap;
        // Exploitable iff the lanes can go down and come back inside the
        // gap with some low-power time left: gap > 2·T_react.
        if i > 0 && gap > cfg.t_react * 2 {
            // Wake exactly on time: off at gap start, timer such that
            // reactivation completes exactly when the gap ends.
            let timer = gap - cfg.t_react;
            directives.push(LaneDirective {
                after_event: i - 1,
                delay: SimDuration::ZERO,
                timer,
                predicted_idle: gap,
                kind: SleepKind::Wrps,
            });
            stats.lane_off_count += 1;
            stats.low_power_time += timer - cfg.t_react;
        }
    }
    stats.nominal_duration += trace.final_compute;

    RankAnnotation {
        rank: trace.rank,
        directives,
        overhead: vec![SimDuration::ZERO; n],
        penalty: vec![SimDuration::ZERO; n],
        stats,
    }
}

/// Annotate one rank with the reactive idle-timeout policy (see module
/// docs). `timeout` is the idleness threshold τ after which the lanes
/// shut down; `τ = 0` shuts down immediately after every call.
pub fn reactive_annotate_rank(
    trace: &RankTrace,
    cfg: &PowerConfig,
    timeout: SimDuration,
) -> RankAnnotation {
    let n = trace.call_count();
    let mut directives = Vec::new();
    let overhead = vec![SimDuration::ZERO; n];
    let mut penalty = vec![SimDuration::ZERO; n];
    let mut stats = RankStats {
        total_calls: n as u64,
        ..RankStats::default()
    };

    for (i, ev) in trace.events.iter().enumerate() {
        let gap = ev.compute_before;
        stats.nominal_duration += gap;
        // The hardware monitors idleness: once the link has been quiet
        // for τ, the lanes go down. Profitable only if some low-power
        // time remains after the off transition and before the demand
        // wake: gap > τ + 2·T_react (the wake transition then delays the
        // arriving call by a full T_react).
        if i > 0 && gap > timeout + cfg.t_react * 2 {
            directives.push(LaneDirective {
                after_event: i - 1,
                delay: timeout,
                // The demand wake clamps the window; a timer longer than
                // the gap means "sleep until traffic arrives".
                timer: gap,
                predicted_idle: gap,
                kind: SleepKind::Wrps,
            });
            stats.lane_off_count += 1;
            stats.low_power_time += gap - timeout - cfg.t_react;
            // Full reactivation stall on the communication that wakes it.
            penalty[i] = cfg.t_react;
            stats.total_penalty += cfg.t_react;
            stats.timing_mispredictions += 1;
        }
    }
    stats.nominal_duration += trace.final_compute;

    RankAnnotation {
        rank: trace.rank,
        directives,
        overhead,
        penalty,
        stats,
    }
}

/// Annotate one rank with a history-window predictor (the hardware
/// DVS-style policy of Shang et al., [7] in the paper): the next idle
/// interval is predicted as the mean of the last `window` observed
/// inter-call gaps, with no notion of patterns. Algorithm 3's timer
/// formula is then applied to that prediction.
///
/// This is the instructive middle ground: unlike the reactive policy it
/// wakes up proactively (no unconditional `T_react` stall), but unlike
/// the PPA it has no idea *which* gap comes next — at every transition
/// between long-gap and short-gap program phases the sliding mean is
/// wrong, and the stalls and lost windows land exactly there.
pub fn history_annotate_rank(
    trace: &RankTrace,
    cfg: &PowerConfig,
    window: usize,
) -> RankAnnotation {
    assert!(window > 0, "history window must be non-empty");
    let n = trace.call_count();
    let mut directives: Vec<LaneDirective> = Vec::new();
    let overhead = vec![SimDuration::ZERO; n];
    let mut penalty = vec![SimDuration::ZERO; n];
    let mut stats = RankStats {
        total_calls: n as u64,
        ..RankStats::default()
    };

    let mut history: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    for (i, ev) in trace.events.iter().enumerate() {
        let gap = ev.compute_before;
        stats.nominal_duration += gap;

        // Evaluate the directive issued after the previous event (if any)
        // against the actual gap.
        if let Some(d) = directives.last() {
            if d.after_event + 1 == i {
                let ready = d.timer + cfg.t_react;
                let stall = ready.saturating_sub(gap).min(cfg.t_react);
                if !stall.is_zero() {
                    stats.timing_mispredictions += 1;
                    stats.total_penalty += stall;
                    penalty[i] = stall;
                }
                let span = d.timer.min(gap).saturating_sub(cfg.t_react);
                stats.low_power_time += span;
            }
        }

        // Predict the NEXT gap from the sliding mean and decide whether
        // to sleep after this call completes.
        history.push_back(gap.as_ns());
        if history.len() > window {
            history.pop_front();
        }
        let mean_ns = history.iter().sum::<u64>() / history.len() as u64;
        let predicted = SimDuration::from_ns(mean_ns);
        if i + 1 < n {
            if let Some(timer) = cfg.lane_off_timer(predicted) {
                directives.push(LaneDirective {
                    after_event: i,
                    delay: SimDuration::ZERO,
                    timer,
                    predicted_idle: predicted,
                    kind: SleepKind::Wrps,
                });
                stats.lane_off_count += 1;
            }
        }
    }

    RankAnnotation {
        rank: trace.rank,
        directives,
        overhead,
        penalty,
        stats,
    }
}

/// History-window policy over a whole trace.
pub fn history_annotate_trace(
    trace: &Trace,
    cfg: &PowerConfig,
    window: usize,
) -> crate::TraceAnnotations {
    history_annotate_trace_jobs(trace, cfg, window, 1)
}

/// [`history_annotate_trace`] with rank-level parallelism; identical
/// output for any `jobs`.
pub fn history_annotate_trace_jobs(
    trace: &Trace,
    cfg: &PowerConfig,
    window: usize,
    jobs: usize,
) -> crate::TraceAnnotations {
    crate::TraceAnnotations {
        ranks: crate::annotate::map_ranks(&trace.ranks, jobs, |r| {
            history_annotate_rank(r, cfg, window)
        }),
    }
}

/// Oracle policy over a whole trace.
pub fn oracle_annotate_trace(trace: &Trace, cfg: &PowerConfig) -> crate::TraceAnnotations {
    oracle_annotate_trace_jobs(trace, cfg, 1)
}

/// [`oracle_annotate_trace`] with rank-level parallelism; identical
/// output for any `jobs`.
pub fn oracle_annotate_trace_jobs(
    trace: &Trace,
    cfg: &PowerConfig,
    jobs: usize,
) -> crate::TraceAnnotations {
    crate::TraceAnnotations {
        ranks: crate::annotate::map_ranks(&trace.ranks, jobs, |r| oracle_annotate_rank(r, cfg)),
    }
}

/// Reactive policy over a whole trace.
pub fn reactive_annotate_trace(
    trace: &Trace,
    cfg: &PowerConfig,
    timeout: SimDuration,
) -> crate::TraceAnnotations {
    reactive_annotate_trace_jobs(trace, cfg, timeout, 1)
}

/// [`reactive_annotate_trace`] with rank-level parallelism; identical
/// output for any `jobs`.
pub fn reactive_annotate_trace_jobs(
    trace: &Trace,
    cfg: &PowerConfig,
    timeout: SimDuration,
    jobs: usize,
) -> crate::TraceAnnotations {
    crate::TraceAnnotations {
        ranks: crate::annotate::map_ranks(&trace.ranks, jobs, |r| {
            reactive_annotate_rank(r, cfg, timeout)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_trace;
    use ibp_trace::{MpiOp, TraceBuilder};

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    /// One rank, alternating 500 µs and 10 µs gaps.
    fn mixed_trace() -> Trace {
        let mut b = TraceBuilder::new("mixed", 1);
        for i in 0..20 {
            b.compute(0, if i % 2 == 0 { us(500) } else { us(10) });
            b.op(0, MpiOp::Barrier);
        }
        b.build()
    }

    #[test]
    fn oracle_exploits_every_large_gap_without_penalty() {
        let t = mixed_trace();
        let cfg = PowerConfig::default();
        let ann = oracle_annotate_rank(&t.ranks[0], &cfg);
        // 9 large gaps follow a previous event (the first event's gap has
        // no preceding event to anchor the directive on).
        assert_eq!(ann.directives.len(), 9);
        assert!(ann.penalty.iter().all(|p| p.is_zero()));
        assert!(ann.overhead.iter().all(|o| o.is_zero()));
        for d in &ann.directives {
            assert_eq!(d.timer, us(490));
        }
        assert_eq!(ann.stats.hit_rate_pct(), 100.0);
    }

    #[test]
    fn reactive_pays_treact_on_every_exploited_gap() {
        let t = mixed_trace();
        let cfg = PowerConfig::default();
        let ann = reactive_annotate_rank(&t.ranks[0], &cfg, us(50));
        assert_eq!(ann.directives.len(), 9);
        let stalls = ann.penalty.iter().filter(|p| !p.is_zero()).count();
        assert_eq!(stalls, 9);
        assert!(ann.penalty.iter().all(|p| *p <= cfg.t_react));
        for d in &ann.directives {
            assert_eq!(d.delay, us(50));
        }
    }

    #[test]
    fn reactive_ignores_gaps_below_timeout() {
        let t = mixed_trace();
        let cfg = PowerConfig::default();
        // τ = 600 µs: no gap qualifies.
        let ann = reactive_annotate_rank(&t.ranks[0], &cfg, us(600));
        assert!(ann.directives.is_empty());
        assert!(ann.stats.low_power_time.is_zero());
    }

    #[test]
    fn oracle_dominates_prediction_dominates_nothing() {
        // On a perfectly periodic trace, oracle low-power time must be an
        // upper bound on the predictive mechanism's.
        let mut b = TraceBuilder::new("periodic", 1);
        for _ in 0..60 {
            b.compute(0, us(400));
            b.op(0, MpiOp::Barrier);
            b.compute(0, us(300));
            b.op(0, MpiOp::Allreduce { bytes: 8 });
        }
        let t = b.build();
        let cfg = PowerConfig::paper(us(20).max(SimDuration::from_us(20)), 0.01);
        let oracle = oracle_annotate_trace(&t, &cfg);
        let predicted = annotate_trace(&t, &cfg);
        let o = oracle.aggregate_stats().low_power_time;
        let p = predicted.aggregate_stats().low_power_time;
        assert!(o >= p, "oracle {o} < predictive {p}");
        assert!(!p.is_zero());
    }

    #[test]
    fn history_predictor_stumbles_on_phase_changes() {
        // Alternating 500/10 µs gaps: the sliding mean (window 4) sits
        // around 255 µs — too long for the 10 µs gaps (stall every other
        // call) and far too short for the 500 µs gaps (half the window
        // wasted). The PPA learns the alternation exactly.
        let t = mixed_trace();
        let cfg = PowerConfig::default();
        let hist = history_annotate_rank(&t.ranks[0], &cfg, 4);
        assert!(hist.stats.timing_mispredictions > 0, "no stalls?");
        let ppa = crate::runtime::annotate_rank(&t.ranks[0], &cfg);
        // Same trace, steady state: the PPA's per-slot means are exact,
        // so its stall count is lower.
        assert!(
            ppa.stats.timing_mispredictions < hist.stats.timing_mispredictions,
            "ppa {} vs history {}",
            ppa.stats.timing_mispredictions,
            hist.stats.timing_mispredictions
        );
    }

    #[test]
    fn history_predictor_matches_oracle_on_constant_gaps() {
        // Uniform gaps: the sliding mean is exact, so the history policy
        // approaches the oracle (modulo the displacement margin).
        let mut b = TraceBuilder::new("uniform", 1);
        for _ in 0..30 {
            b.compute(0, us(400));
            b.op(0, MpiOp::Barrier);
        }
        let t = b.build();
        let cfg = PowerConfig::default();
        let hist = history_annotate_rank(&t.ranks[0], &cfg, 8);
        let oracle = oracle_annotate_rank(&t.ranks[0], &cfg);
        assert_eq!(hist.stats.timing_mispredictions, 0);
        let h = hist.stats.low_power_time.as_us_f64();
        let o = oracle.stats.low_power_time.as_us_f64();
        assert!(h > 0.8 * o, "history {h} far below oracle {o}");
    }

    #[test]
    fn reactive_zero_timeout_sleeps_longer_but_stalls() {
        // τ=0 reactive actually accumulates MORE low-power time than the
        // zero-slowdown oracle: it lets the wake transition bleed into
        // the next communication (paying a T_react stall) instead of
        // spending it inside the gap. One extra T_react of low power per
        // exploited gap, bought with one T_react of delay — the
        // power/performance trade the paper's introduction describes.
        let t = mixed_trace();
        let cfg = PowerConfig::default();
        let oracle = oracle_annotate_rank(&t.ranks[0], &cfg);
        let reactive = reactive_annotate_rank(&t.ranks[0], &cfg, SimDuration::ZERO);
        let extra = reactive.stats.low_power_time - oracle.stats.low_power_time;
        assert_eq!(extra, cfg.t_react * 9, "one T_react per exploited gap");
        assert!(reactive.stats.total_penalty > SimDuration::ZERO);
        assert!(oracle.stats.total_penalty.is_zero());
    }
}
