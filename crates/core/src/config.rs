//! Configuration of the power-saving mechanism.
//!
//! All defaults are the values the paper uses:
//!
//! * `T_react = 10 µs` — worst-case lane activation/deactivation time
//!   (Hoefler's figure, used symmetrically for on and off);
//! * grouping threshold `GT ≥ 2·T_react` — the minimum exploitable idle
//!   interval (per-application values in Table III);
//! * displacement factor ∈ {1%, 5%, 10%} — the safety margin of Figs. 7–9;
//! * low-power draw = 43% of nominal — Mellanox SX6036 under WRPS;
//! * 3 consecutive appearances before a pattern is declared predictable;
//! * ≈1 µs per-call interception overhead (gettimeofday + PMPI hook).

use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Which sleep depths the controller may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// The paper's mechanism: WRPS lane-width reduction only.
    WidthReduction,
    /// The paper's §VI extension: predicted idles of at least
    /// `deep_threshold` power down switch buffers/crossbar too
    /// (millisecond-class reactivation, much deeper power state);
    /// shorter idles still use WRPS.
    DeepSleep,
    /// The full depth ladder: for every predicted idle, commit to the
    /// deepest state — deep sleep, rate reduction, then WRPS — whose
    /// wake cost fits inside the prediction minus the guard band
    /// (Rodríguez-Pérez-style multi-state opportunistic sleeping).
    Ladder,
}

/// The depth chosen for one sleep window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SleepKind {
    /// Lane-width reduction (4X → 1X), `T_react ≈ 10 µs`, 43% draw.
    Wrps,
    /// Rate reduction: all four lanes drop to the lowest signalling
    /// rate (retrain ≈ 100 µs, ~25% draw).
    Rate,
    /// Deep switch sleep, `T_react ≈ 1 ms`, ~10% draw.
    Deep,
}

impl SleepKind {
    /// All depths, shallowest first.
    pub const ALL: [SleepKind; 3] = [SleepKind::Wrps, SleepKind::Rate, SleepKind::Deep];

    /// Short lower-case label (`wrps` / `rate` / `deep`), used for
    /// metric labels and table columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SleepKind::Wrps => "wrps",
            SleepKind::Rate => "rate",
            SleepKind::Deep => "deep",
        }
    }
}

/// Adaptive resilience controller parameters (misprediction-storm
/// backoff + variance-aware guard band + slowdown budget).
///
/// Disabled by default so the paper's exact behaviour is preserved; see
/// [`ResilienceConfig::standard`] for the recommended active values and
/// [`PowerConfig::with_resilience`] to attach it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Master switch. When `false` the runtime behaves exactly as the
    /// paper's mechanism (all other fields ignored).
    #[serde(default)]
    pub enabled: bool,
    /// Sliding window, in intercepted MPI calls, over which pattern
    /// mispredictions are counted for storm detection.
    #[serde(default)]
    pub storm_window: u32,
    /// Pattern mispredictions within one window that declare a storm.
    #[serde(default)]
    pub storm_threshold: u32,
    /// Calls to suspend prediction (and the PPA) after the first storm.
    #[serde(default)]
    pub base_holdoff: u32,
    /// Cap for the exponentially growing hold-off.
    #[serde(default)]
    pub max_holdoff: u32,
    /// Additive widening of the effective displacement factor per timing
    /// misprediction (late wake-up).
    #[serde(default)]
    pub guard_step: f64,
    /// Multiplicative decay of the guard band per cleanly resolved sleep
    /// window (wake-up on time).
    #[serde(default)]
    pub guard_decay: f64,
    /// Upper bound on the guard band (extra displacement).
    #[serde(default)]
    pub max_guard: f64,
    /// Worst-case mechanism-added time, as a percentage of the nominal
    /// trace duration: once interception + PPA overhead + stalls exceed
    /// this share, no further sleep directives are issued until the
    /// ratio recovers. Zero disables the budget guard.
    #[serde(default)]
    pub slowdown_budget_pct: f64,
}

impl ResilienceConfig {
    /// The recommended active configuration: storms are 3 pattern
    /// mispredictions within 50 calls; the first storm suspends
    /// prediction for 100 calls, doubling per storm up to 6400; each
    /// late wake-up widens the guard band by 5 percentage points (decay
    /// 0.85 per clean wake, capped at +40%); the mechanism may add at
    /// most 2% to the nominal duration.
    pub fn standard() -> Self {
        ResilienceConfig {
            enabled: true,
            storm_window: 50,
            storm_threshold: 3,
            base_holdoff: 100,
            max_holdoff: 6400,
            guard_step: 0.05,
            guard_decay: 0.85,
            max_guard: 0.40,
            slowdown_budget_pct: 2.0,
        }
    }

    /// [`ResilienceConfig::standard`] with a caller-chosen slowdown
    /// budget (percent of nominal duration).
    pub fn with_budget(budget_pct: f64) -> Self {
        assert!(
            budget_pct >= 0.0,
            "slowdown budget must be non-negative: {budget_pct}"
        );
        ResilienceConfig {
            slowdown_budget_pct: budget_pct,
            ..ResilienceConfig::standard()
        }
    }
}

impl Default for ResilienceConfig {
    /// Disabled — exact paper behaviour.
    fn default() -> Self {
        ResilienceConfig {
            enabled: false,
            ..ResilienceConfig::standard()
        }
    }
}

/// Tunable parameters of the prediction + power-control mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Lane reactivation (and deactivation) time, `T_react`.
    pub t_react: SimDuration,
    /// Grouping threshold `GT`: adjacent MPI calls closer than this are
    /// grouped into one gram; gaps of at least `GT` separate grams and are
    /// the candidate lane-off intervals.
    pub grouping_threshold: SimDuration,
    /// Displacement factor: fraction of the predicted idle time reserved
    /// as a safety margin so lanes are back up *before* the next call.
    pub displacement: f64,
    /// Consecutive pattern appearances required before prediction starts.
    pub min_consecutive: u32,
    /// Hard cap on pattern length (in grams) before a pattern is declared;
    /// once declared, the declared length becomes the cap (the paper's
    /// `maxPatternSize` freeze that pins the natural iteration).
    pub max_pattern_size: usize,
    /// Relative power draw of a link with 3 of 4 lanes off (WRPS 1X mode).
    pub low_power_fraction: f64,
    /// Fixed overhead charged to every intercepted MPI call.
    pub intercept_overhead: SimDuration,
    /// Base overhead of one PPA invocation (hash lookups, bookkeeping).
    pub ppa_base_overhead: SimDuration,
    /// Additional PPA overhead per gram element examined in the invocation.
    pub ppa_per_element_overhead: SimDuration,
    /// Sleep-depth policy.
    pub policy: PowerPolicy,
    /// Minimum predicted idle for a deep sleep (only with
    /// [`PowerPolicy::DeepSleep`]).
    pub deep_threshold: SimDuration,
    /// Reactivation time of the deep state (buffers/crossbar power-up;
    /// the paper quotes "up to a millisecond").
    pub deep_t_react: SimDuration,
    /// Relative power draw of the deep state.
    pub deep_power_fraction: f64,
    /// Minimum predicted idle for a rate-reduction sleep (only with
    /// [`PowerPolicy::Ladder`]).
    #[serde(default = "default_rate_threshold")]
    pub rate_threshold: SimDuration,
    /// Retrain time of the rate-reduced state (lanes renegotiate back
    /// to full signalling rate).
    #[serde(default = "default_rate_t_react")]
    pub rate_t_react: SimDuration,
    /// Relative power draw of the rate-reduced state.
    #[serde(default = "default_rate_power_fraction")]
    pub rate_power_fraction: f64,
    /// Adaptive resilience controller (disabled by default).
    #[serde(default)]
    pub resilience: ResilienceConfig,
    /// Bound on the per-pattern occurrence window retained by the PPA
    /// (`checkO` is O(window); the paper's uthash kept every occurrence).
    #[serde(default = "default_occurrence_window")]
    pub occurrence_window: usize,
}

fn default_occurrence_window() -> usize {
    crate::pattern::DEFAULT_OCCURRENCE_WINDOW
}

fn default_rate_threshold() -> SimDuration {
    SimDuration::from_us(500)
}

fn default_rate_t_react() -> SimDuration {
    SimDuration::from_us(100)
}

fn default_rate_power_fraction() -> f64 {
    0.25
}

impl PowerConfig {
    /// The paper's baseline configuration with a caller-chosen GT and
    /// displacement factor.
    ///
    /// # Panics
    /// Panics if `gt < 2·T_react` (such intervals cannot be exploited:
    /// the off+on transitions would outlast the idle gap) or if
    /// `displacement` is outside `[0, 1)`.
    pub fn paper(gt: SimDuration, displacement: f64) -> Self {
        let t_react = SimDuration::from_us(10);
        assert!(
            gt >= t_react * 2,
            "grouping threshold {gt} below 2*T_react = {}",
            t_react * 2
        );
        assert!(
            (0.0..1.0).contains(&displacement),
            "displacement factor must be in [0, 1): {displacement}"
        );
        PowerConfig {
            t_react,
            grouping_threshold: gt,
            displacement,
            min_consecutive: 3,
            max_pattern_size: 64,
            low_power_fraction: 0.43,
            intercept_overhead: SimDuration::from_us(1),
            ppa_base_overhead: SimDuration::from_us(5),
            ppa_per_element_overhead: SimDuration::from_ns(200),
            policy: PowerPolicy::WidthReduction,
            deep_threshold: SimDuration::from_ms(5),
            deep_t_react: SimDuration::from_ms(1),
            deep_power_fraction: 0.10,
            rate_threshold: default_rate_threshold(),
            rate_t_react: default_rate_t_react(),
            rate_power_fraction: default_rate_power_fraction(),
            resilience: ResilienceConfig::default(),
            occurrence_window: default_occurrence_window(),
        }
    }

    /// Minimum legal grouping threshold, `2·T_react`.
    pub fn min_gt(&self) -> SimDuration {
        self.t_react * 2
    }

    /// The lane-off timer for a predicted idle interval, per Algorithm 3:
    ///
    /// ```text
    /// safetyLimit      = idleTime * displacement + T_react
    /// predictIdleTime  = idleTime - safetyLimit
    /// ```
    ///
    /// Returns `None` when the resulting window leaves no net low-power
    /// time (i.e. `predictIdleTime ≤ T_react`, since the off-transition
    /// itself consumes `T_react` at full power).
    pub fn lane_off_timer(&self, predicted_idle: SimDuration) -> Option<SimDuration> {
        self.lane_off_timer_with(self.displacement, predicted_idle)
    }

    /// [`PowerConfig::lane_off_timer`] with an explicit displacement —
    /// the resilience controller widens the effective displacement (its
    /// guard band) after timing mispredictions.
    pub fn lane_off_timer_with(
        &self,
        displacement: f64,
        predicted_idle: SimDuration,
    ) -> Option<SimDuration> {
        let safety = predicted_idle.mul_f64(displacement) + self.t_react;
        let timer = predicted_idle.saturating_sub(safety);
        (timer > self.t_react).then_some(timer)
    }

    /// Relative power saved while a link sits in low-power mode
    /// (`1 − low_power_fraction`, ≈ 0.57 for WRPS).
    pub fn low_power_saving(&self) -> f64 {
        1.0 - self.low_power_fraction
    }

    /// The paper's §VI extension: same mechanism, but predicted idles of
    /// at least `threshold` also power down switch buffers/crossbar
    /// (deep state: 1 ms reactivation, 10% draw).
    pub fn with_deep_sleep(mut self, threshold: SimDuration) -> Self {
        assert!(
            threshold >= self.deep_t_react * 2,
            "deep threshold {threshold} below 2×deep T_react"
        );
        self.policy = PowerPolicy::DeepSleep;
        self.deep_threshold = threshold;
        self
    }

    /// Enable the full sleep-depth ladder (off by default): each
    /// predicted idle commits to the deepest of deep sleep, rate
    /// reduction, or WRPS whose wake cost fits inside the prediction.
    ///
    /// # Panics
    /// Panics if the configured ladder violates its ordering invariants
    /// (power floors must strictly deepen, wake latencies must not
    /// shrink with depth, thresholds must cover two reactivations).
    pub fn with_ladder(mut self) -> Self {
        self.policy = PowerPolicy::Ladder;
        if let Err(e) = self.validate() {
            panic!("invalid sleep ladder: {e}");
        }
        self
    }

    /// Reactivation time of a sleep kind.
    pub fn react_of(&self, kind: SleepKind) -> SimDuration {
        match kind {
            SleepKind::Wrps => self.t_react,
            SleepKind::Rate => self.rate_t_react,
            SleepKind::Deep => self.deep_t_react,
        }
    }

    /// Relative draw of a sleep kind.
    pub fn draw_of(&self, kind: SleepKind) -> f64 {
        match kind {
            SleepKind::Wrps => self.low_power_fraction,
            SleepKind::Rate => self.rate_power_fraction,
            SleepKind::Deep => self.deep_power_fraction,
        }
    }

    /// Minimum predicted idle that makes a sleep kind eligible under
    /// the ladder policy.
    pub fn threshold_of(&self, kind: SleepKind) -> SimDuration {
        match kind {
            SleepKind::Wrps => SimDuration::ZERO,
            SleepKind::Rate => self.rate_threshold,
            SleepKind::Deep => self.deep_threshold,
        }
    }

    /// Plan a sleep for a predicted idle interval: pick the depth (per
    /// the policy) and compute the Algorithm 3 timer for it. Deep sleep
    /// falls back to WRPS when the idle is below the deep threshold or
    /// the deep timer would be unprofitable.
    pub fn plan_sleep(&self, predicted_idle: SimDuration) -> Option<(SleepKind, SimDuration)> {
        self.plan_sleep_with(self.displacement, predicted_idle)
    }

    /// [`PowerConfig::plan_sleep`] with an explicit (possibly guard-band
    /// widened) displacement factor.
    pub fn plan_sleep_with(
        &self,
        displacement: f64,
        predicted_idle: SimDuration,
    ) -> Option<(SleepKind, SimDuration)> {
        match self.policy {
            PowerPolicy::WidthReduction => {}
            PowerPolicy::DeepSleep => {
                if predicted_idle >= self.deep_threshold {
                    if let Some(timer) =
                        self.depth_timer_with(displacement, predicted_idle, SleepKind::Deep)
                    {
                        return Some((SleepKind::Deep, timer));
                    }
                }
            }
            PowerPolicy::Ladder => {
                // Deepest first: commit to the deepest state whose wake
                // cost fits inside the prediction minus the guard band.
                for kind in [SleepKind::Deep, SleepKind::Rate] {
                    if predicted_idle < self.threshold_of(kind) {
                        continue;
                    }
                    if let Some(timer) = self.depth_timer_with(displacement, predicted_idle, kind)
                    {
                        return Some((kind, timer));
                    }
                }
            }
        }
        self.lane_off_timer_with(displacement, predicted_idle)
            .map(|t| (SleepKind::Wrps, t))
    }

    /// Algorithm 3's timer generalized to an arbitrary sleep depth:
    /// `timer = idle − (idle·displacement + react)`, profitable only
    /// when the result exceeds the depth's own reactivation time.
    fn depth_timer_with(
        &self,
        displacement: f64,
        predicted_idle: SimDuration,
        kind: SleepKind,
    ) -> Option<SimDuration> {
        let react = self.react_of(kind);
        let safety = predicted_idle.mul_f64(displacement) + react;
        let timer = predicted_idle.saturating_sub(safety);
        (timer > react).then_some(timer)
    }

    /// Check every invariant the runtime's arithmetic depends on,
    /// without panicking — for configs that arrive over the wire
    /// (an `Open` frame or a restored snapshot) where [`PowerConfig::paper`]'s
    /// asserts would let hostile input kill a server worker. NaN and
    /// infinite floats are rejected along with out-of-range values.
    pub fn validate(&self) -> Result<(), String> {
        if self.grouping_threshold < self.t_react * 2 {
            return Err(format!(
                "grouping threshold {} below 2*T_react",
                self.grouping_threshold
            ));
        }
        // Range checks on floats double as NaN rejection: a NaN
        // compares false with everything, so `contains` fails.
        if !(0.0..1.0).contains(&self.displacement) {
            return Err(format!("displacement {} outside [0, 1)", self.displacement));
        }
        if self.min_consecutive < 2 || self.max_pattern_size < 2 {
            return Err("declaration policy below the bi-gram minimum".into());
        }
        if !(0.0..=1.0).contains(&self.low_power_fraction)
            || !(0.0..=1.0).contains(&self.rate_power_fraction)
            || !(0.0..=1.0).contains(&self.deep_power_fraction)
        {
            return Err("power fractions must be in [0, 1]".into());
        }
        if self.policy == PowerPolicy::Ladder {
            if !(self.deep_power_fraction < self.rate_power_fraction
                && self.rate_power_fraction < self.low_power_fraction)
            {
                return Err(format!(
                    "ladder power floors must strictly deepen: deep {} < rate {} < wrps {}",
                    self.deep_power_fraction, self.rate_power_fraction, self.low_power_fraction
                ));
            }
            if self.rate_t_react < self.t_react || self.deep_t_react < self.rate_t_react {
                return Err(format!(
                    "ladder wake latencies must not shrink with depth: wrps {} <= rate {} <= deep {}",
                    self.t_react, self.rate_t_react, self.deep_t_react
                ));
            }
            if self.rate_threshold < self.rate_t_react * 2
                || self.deep_threshold < self.deep_t_react * 2
            {
                return Err("ladder thresholds below 2x their reactivation time".into());
            }
        }
        let r = &self.resilience;
        if r.enabled {
            if !r.max_guard.is_finite()
                || r.max_guard < 0.0
                || self.displacement + r.max_guard >= 1.0
            {
                return Err(format!(
                    "displacement {} + max_guard {} must stay below 1",
                    self.displacement, r.max_guard
                ));
            }
            if !(0.0..=1.0).contains(&r.guard_decay) {
                return Err(format!("guard_decay {} outside [0, 1]", r.guard_decay));
            }
            if !r.guard_step.is_finite() || r.guard_step < 0.0 {
                return Err(format!("guard_step {} must be finite and >= 0", r.guard_step));
            }
            if !r.slowdown_budget_pct.is_finite() || r.slowdown_budget_pct < 0.0 {
                return Err(format!(
                    "slowdown budget {} must be finite and >= 0",
                    r.slowdown_budget_pct
                ));
            }
            if r.storm_threshold < 1 || r.storm_window < 1 {
                return Err("storm detection needs a window and threshold of at least 1".into());
            }
        }
        Ok(())
    }

    /// Attach a resilience controller configuration.
    ///
    /// # Panics
    /// Panics if the widest possible effective displacement
    /// (`displacement + max_guard`) reaches 1 (the timer would always be
    /// unprofitable), or if decay/step parameters are out of range.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        if resilience.enabled {
            assert!(
                self.displacement + resilience.max_guard < 1.0,
                "displacement + max_guard must stay below 1"
            );
            assert!(
                (0.0..=1.0).contains(&resilience.guard_decay),
                "guard_decay must be in [0, 1]"
            );
            assert!(resilience.guard_step >= 0.0, "guard_step must be >= 0");
            assert!(
                resilience.slowdown_budget_pct >= 0.0,
                "slowdown budget must be >= 0"
            );
            assert!(
                resilience.storm_threshold >= 1 && resilience.storm_window >= 1,
                "storm detection needs a window and threshold of at least 1"
            );
        }
        self.resilience = resilience;
        self
    }
}

impl Default for PowerConfig {
    /// Paper defaults with `GT = 2·T_react = 20 µs` and the 10%
    /// displacement of Fig. 7.
    fn default() -> Self {
        PowerConfig::paper(SimDuration::from_us(20), 0.10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PowerConfig::default();
        assert_eq!(c.t_react, SimDuration::from_us(10));
        assert_eq!(c.grouping_threshold, SimDuration::from_us(20));
        assert_eq!(c.displacement, 0.10);
        assert_eq!(c.min_consecutive, 3);
        assert!((c.low_power_fraction - 0.43).abs() < 1e-12);
        assert_eq!(c.intercept_overhead, SimDuration::from_us(1));
    }

    #[test]
    fn lane_off_timer_follows_algorithm3() {
        let c = PowerConfig::paper(SimDuration::from_us(20), 0.10);
        // idle = 1000 µs: safety = 100 + 10 = 110 µs, timer = 890 µs.
        let timer = c.lane_off_timer(SimDuration::from_us(1000)).unwrap();
        assert_eq!(timer, SimDuration::from_us(890));
    }

    #[test]
    fn lane_off_timer_rejects_unprofitable_windows() {
        let c = PowerConfig::paper(SimDuration::from_us(20), 0.10);
        // idle = 20 µs: timer = 20 - 2 - 10 = 8 µs ≤ T_react → no saving.
        assert!(c.lane_off_timer(SimDuration::from_us(20)).is_none());
        // idle = 0 must not underflow.
        assert!(c.lane_off_timer(SimDuration::ZERO).is_none());
    }

    #[test]
    fn lane_off_timer_monotone_in_idle() {
        let c = PowerConfig::paper(SimDuration::from_us(36), 0.05);
        let mut last = SimDuration::ZERO;
        for us in (40..2000).step_by(37) {
            if let Some(t) = c.lane_off_timer(SimDuration::from_us(us)) {
                assert!(t >= last, "timer must grow with idle time");
                last = t;
            }
        }
        assert!(last > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "below 2*T_react")]
    fn rejects_too_small_gt() {
        let _ = PowerConfig::paper(SimDuration::from_us(5), 0.10);
    }

    #[test]
    #[should_panic(expected = "displacement")]
    fn rejects_bad_displacement() {
        let _ = PowerConfig::paper(SimDuration::from_us(20), 1.5);
    }

    #[test]
    fn low_power_saving_is_complement() {
        let c = PowerConfig::default();
        assert!((c.low_power_saving() - 0.57).abs() < 1e-12);
    }

    #[test]
    fn ladder_picks_deepest_profitable_state() {
        let c = PowerConfig::paper(SimDuration::from_us(20), 0.01).with_ladder();
        // 10 ms ≥ deep_threshold (5 ms): deep wins.
        let (kind, _) = c.plan_sleep(SimDuration::from_ms(10)).unwrap();
        assert_eq!(kind, SleepKind::Deep);
        // 1 ms: below the deep threshold, above the rate threshold.
        let (kind, timer) = c.plan_sleep(SimDuration::from_ms(1)).unwrap();
        assert_eq!(kind, SleepKind::Rate);
        assert!(timer > c.rate_t_react);
        // 100 µs: too short for a rate retrain, WRPS still profitable.
        let (kind, _) = c.plan_sleep(SimDuration::from_us(100)).unwrap();
        assert_eq!(kind, SleepKind::Wrps);
        // 20 µs: nothing profitable.
        assert!(c.plan_sleep(SimDuration::from_us(20)).is_none());
    }

    #[test]
    fn ladder_timer_follows_algorithm3_per_depth() {
        let c = PowerConfig::paper(SimDuration::from_us(20), 0.10).with_ladder();
        // idle = 1 ms: safety = 100 µs + 100 µs retrain → timer 800 µs.
        let (kind, timer) = c.plan_sleep(SimDuration::from_ms(1)).unwrap();
        assert_eq!(kind, SleepKind::Rate);
        assert_eq!(timer, SimDuration::from_us(800));
    }

    #[test]
    fn default_policy_never_emits_rate_or_deep() {
        let c = PowerConfig::default();
        for us in [30, 100, 600, 6_000, 60_000] {
            if let Some((kind, _)) = c.plan_sleep(SimDuration::from_us(us)) {
                assert_eq!(kind, SleepKind::Wrps, "paper config must stay WRPS-only");
            }
        }
    }

    #[test]
    fn ladder_validate_rejects_inverted_floors() {
        let mut c = PowerConfig::default().with_ladder();
        c.rate_power_fraction = 0.05; // below the deep floor
        let err = c.validate().unwrap_err();
        assert!(err.contains("strictly deepen"), "{err}");
        let mut c = PowerConfig::default().with_ladder();
        c.rate_t_react = SimDuration::from_us(1);
        let err = c.validate().unwrap_err();
        assert!(err.contains("wake latencies"), "{err}");
    }

    #[test]
    fn sleep_kind_labels() {
        assert_eq!(SleepKind::Wrps.label(), "wrps");
        assert_eq!(SleepKind::Rate.label(), "rate");
        assert_eq!(SleepKind::Deep.label(), "deep");
    }

    #[test]
    fn old_wire_configs_still_parse() {
        // A config serialized before the ladder fields existed must
        // deserialize with the default (paper-identical) ladder values.
        let mut v = PowerConfig::default().to_value();
        let serde::Value::Map(entries) = &mut v else {
            panic!("config serializes as an object");
        };
        entries.retain(|(k, _)| {
            !matches!(k.as_str(), "rate_threshold" | "rate_t_react" | "rate_power_fraction")
        });
        let back = PowerConfig::from_value(&v).unwrap();
        assert_eq!(back, PowerConfig::default());
    }
}
