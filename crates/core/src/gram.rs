//! Gram formation — Algorithm 1 of the paper.
//!
//! A *gram* is a maximal group of consecutive MPI calls whose pairwise
//! inter-communication gaps are all below the grouping threshold GT. Gaps
//! of at least GT separate grams; those gaps are exactly the candidate
//! lane-off intervals (by construction they satisfy
//! `T_idle ≥ GT ≥ 2·T_react`).
//!
//! For the Alya stream of Fig. 2 (`41 41 41 ___ 10 ___ 10 ___ …` where
//! `___` marks a long gap) the grams are `[41,41,41]`, `[10]`, `[10]`, …
//!
//! Grams are *interned*: each distinct call-id sequence receives a small
//! integer [`GramId`], so patterns (sequences of grams) compare and hash
//! as slices of integers rather than nested vectors.

use crate::config::PowerConfig;
use crate::snapshot::{GramBuilderSnapshot, GramInternerSnapshot, SnapshotError};
use fxhash::FxHashMap;
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Identifier of a distinct gram *shape* (call-id sequence).
pub type GramId = u32;

/// A completed gram occurrence in the event stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gram {
    /// Interned shape id (equal ids ⇔ equal call sequences).
    pub id: GramId,
    /// Index of the gram's first MPI event in the rank's call stream.
    pub first_event: usize,
    /// Number of MPI calls in the gram.
    pub len: u32,
    /// The idle gap that *preceded* this gram (≥ GT for every gram except
    /// the very first of the stream).
    pub preceding_idle: SimDuration,
}

/// Interner mapping call-id sequences to dense [`GramId`]s.
///
/// Each shape is stored once: the id map and the id-indexed table share
/// one `Arc<[u16]>` allocation, and lookups borrow the caller's slice
/// (FxHash, no per-probe key construction), so the re-intern hit path —
/// the steady state of gram formation — is allocation-free.
#[derive(Debug, Default)]
pub struct GramInterner {
    ids: FxHashMap<Arc<[u16]>, GramId>,
    shapes: Vec<Arc<[u16]>>,
}

impl GramInterner {
    /// Create an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a call sequence, returning its stable id.
    pub fn intern(&mut self, calls: &[u16]) -> GramId {
        if let Some(&id) = self.ids.get(calls) {
            return id;
        }
        let id = self.shapes.len() as GramId;
        let shared: Arc<[u16]> = calls.into();
        self.shapes.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// The call sequence behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    #[inline]
    #[must_use]
    pub fn shape(&self, id: GramId) -> &[u16] {
        &self.shapes[id as usize]
    }

    /// Number of distinct shapes interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Snapshot the interned shapes (id order).
    pub(crate) fn snapshot(&self) -> GramInternerSnapshot {
        GramInternerSnapshot {
            shapes: self.shapes.iter().map(|s| s.to_vec()).collect(),
        }
    }

    /// Rebuild an interner from a snapshot. Shapes must be distinct —
    /// interning them in order reproduces the original id assignment.
    pub(crate) fn from_snapshot(snap: &GramInternerSnapshot) -> Result<Self, SnapshotError> {
        let mut interner = GramInterner::new();
        for shape in &snap.shapes {
            let _ = interner.intern(shape);
        }
        if interner.len() != snap.shapes.len() {
            return Err(SnapshotError::Inconsistent(format!(
                "gram interner snapshot holds duplicate shapes: {} distinct of {}",
                interner.len(),
                snap.shapes.len()
            )));
        }
        Ok(interner)
    }

    /// Render a gram id the way the paper prints them: calls joined with
    /// dashes, e.g. `"41-41-41"`.
    pub fn display(&self, id: GramId) -> String {
        self.shape(id)
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }
}

/// Online gram formation (Algorithm 1): feed MPI events one at a time;
/// grams are emitted as they *close* (when the first event of the next
/// gram arrives).
#[derive(Debug)]
pub struct GramBuilder {
    gt: SimDuration,
    current_calls: Vec<u16>,
    current_first_event: usize,
    current_preceding_idle: SimDuration,
    next_event: usize,
}

impl GramBuilder {
    /// Create a builder using the grouping threshold from `cfg`.
    pub fn new(cfg: &PowerConfig) -> Self {
        GramBuilder {
            gt: cfg.grouping_threshold,
            current_calls: Vec::new(),
            current_first_event: 0,
            current_preceding_idle: SimDuration::ZERO,
            next_event: 0,
        }
    }

    /// Feed one MPI event (its call type and the idle time since the
    /// previous call on this rank). If the event *opens a new gram*, the
    /// now-complete previous gram is returned.
    pub fn push(
        &mut self,
        call: MpiCall,
        previous_idle: SimDuration,
        interner: &mut GramInterner,
    ) -> Option<Gram> {
        let event_idx = self.next_event;
        self.next_event += 1;

        if self.current_calls.is_empty() {
            // Very first event of the stream opens gram 0.
            self.current_calls.push(call.id());
            self.current_first_event = event_idx;
            self.current_preceding_idle = previous_idle;
            return None;
        }

        if previous_idle < self.gt {
            // Algorithm 1 line 1–2: close together → same gram.
            self.current_calls.push(call.id());
            None
        } else {
            // Algorithm 1 line 3–7: gap ≥ GT → close current gram, open new.
            let closed = self.finish_current(interner);
            self.current_calls.push(call.id());
            self.current_first_event = event_idx;
            self.current_preceding_idle = previous_idle;
            Some(closed)
        }
    }

    /// Close and return the gram currently being built, if any. Call at
    /// end of stream to flush the trailing gram.
    pub fn flush(&mut self, interner: &mut GramInterner) -> Option<Gram> {
        if self.current_calls.is_empty() {
            None
        } else {
            Some(self.finish_current(interner))
        }
    }

    /// Number of calls accumulated in the open gram.
    pub fn open_len(&self) -> usize {
        self.current_calls.len()
    }

    /// Snapshot the builder's mutable fields (the open gram).
    pub(crate) fn snapshot(&self) -> GramBuilderSnapshot {
        GramBuilderSnapshot {
            current_calls: self.current_calls.clone(),
            current_first_event: self.current_first_event,
            current_preceding_idle: self.current_preceding_idle,
            next_event: self.next_event,
        }
    }

    /// Rebuild a builder from a snapshot; the grouping threshold comes
    /// from `cfg` exactly as in [`GramBuilder::new`].
    pub(crate) fn from_snapshot(cfg: &PowerConfig, snap: &GramBuilderSnapshot) -> Self {
        GramBuilder {
            gt: cfg.grouping_threshold,
            current_calls: snap.current_calls.clone(),
            current_first_event: snap.current_first_event,
            current_preceding_idle: snap.current_preceding_idle,
            next_event: snap.next_event,
        }
    }

    fn finish_current(&mut self, interner: &mut GramInterner) -> Gram {
        let id = interner.intern(&self.current_calls);
        let gram = Gram {
            id,
            first_event: self.current_first_event,
            len: self.current_calls.len() as u32,
            preceding_idle: self.current_preceding_idle,
        };
        self.current_calls.clear();
        gram
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::MpiCall::{Allreduce, Sendrecv};

    fn cfg() -> PowerConfig {
        PowerConfig::paper(SimDuration::from_us(20), 0.10)
    }

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    /// The Fig. 2 stream: three Sendrecvs close together, then two
    /// Allreduces each preceded by a long gap, repeated.
    fn feed_fig2(iterations: usize) -> (Vec<Gram>, GramInterner) {
        let cfg = cfg();
        let mut b = GramBuilder::new(&cfg);
        let mut interner = GramInterner::new();
        let mut grams = Vec::new();
        for it in 0..iterations {
            let lead = if it == 0 { us(0) } else { us(300) };
            for (i, gap) in [(0, lead), (1, us(2)), (2, us(3))] {
                let _ = i;
                if let Some(g) = b.push(Sendrecv, gap, &mut interner) {
                    grams.push(g);
                }
            }
            for _ in 0..2 {
                if let Some(g) = b.push(Allreduce, us(250), &mut interner) {
                    grams.push(g);
                }
            }
        }
        if let Some(g) = b.flush(&mut interner) {
            grams.push(g);
        }
        (grams, interner)
    }

    #[test]
    fn fig2_grouping() {
        let (grams, interner) = feed_fig2(2);
        // Two iterations → grams: [41-41-41], [10], [10] × 2.
        assert_eq!(grams.len(), 6);
        assert_eq!(interner.display(grams[0].id), "41-41-41");
        assert_eq!(interner.display(grams[1].id), "10");
        assert_eq!(interner.display(grams[2].id), "10");
        // Same shapes intern to same ids across iterations.
        assert_eq!(grams[0].id, grams[3].id);
        assert_eq!(grams[1].id, grams[2].id);
        assert_eq!(grams[1].id, grams[4].id);
        // Only 2 distinct shapes exist.
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn preceding_idle_recorded() {
        let (grams, _) = feed_fig2(2);
        assert_eq!(grams[0].preceding_idle, us(0));
        assert_eq!(grams[1].preceding_idle, us(250));
        assert_eq!(grams[3].preceding_idle, us(300));
    }

    #[test]
    fn first_event_indices() {
        let (grams, _) = feed_fig2(2);
        assert_eq!(grams[0].first_event, 0);
        assert_eq!(grams[1].first_event, 3);
        assert_eq!(grams[2].first_event, 4);
        assert_eq!(grams[3].first_event, 5);
    }

    #[test]
    fn gap_exactly_gt_splits() {
        let cfg = cfg();
        let mut b = GramBuilder::new(&cfg);
        let mut i = GramInterner::new();
        assert!(b.push(Sendrecv, us(0), &mut i).is_none());
        // A gap of exactly GT must start a new gram (Alg. 1 uses `<` GT to
        // group, so `== GT` separates).
        let closed = b.push(Sendrecv, us(20), &mut i);
        assert!(closed.is_some());
        assert_eq!(closed.unwrap().len, 1);
    }

    #[test]
    fn flush_emits_trailing_gram() {
        let cfg = cfg();
        let mut b = GramBuilder::new(&cfg);
        let mut i = GramInterner::new();
        b.push(Allreduce, us(0), &mut i);
        b.push(Allreduce, us(1), &mut i);
        let g = b.flush(&mut i).unwrap();
        assert_eq!(g.len, 2);
        assert!(b.flush(&mut i).is_none(), "second flush is empty");
    }

    #[test]
    fn interner_roundtrip() {
        let mut i = GramInterner::new();
        let a = i.intern(&[41, 41, 41]);
        let b = i.intern(&[10]);
        let a2 = i.intern(&[41, 41, 41]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.shape(a), &[41, 41, 41]);
        assert_eq!(i.display(b), "10");
    }

    #[test]
    fn interner_stores_each_shape_once() {
        // Regression test for the double-store bug: `shapes` and `ids`
        // must share one allocation per distinct shape, and re-interning
        // must not grow memory at all.
        let mut i = GramInterner::new();
        let id = i.intern(&[41, 41, 41]);
        assert_eq!(
            Arc::strong_count(&i.shapes[id as usize]),
            2,
            "exactly the map key and the table slot hold the shape"
        );
        for _ in 0..1000 {
            assert_eq!(i.intern(&[41, 41, 41]), id);
        }
        assert_eq!(i.len(), 1);
        assert_eq!(Arc::strong_count(&i.shapes[id as usize]), 2);
        // Total retained bytes are one allocation per *distinct* shape.
        let distinct: usize = i.shapes.iter().map(|s| s.len()).sum();
        assert_eq!(distinct, 3);
    }
}
