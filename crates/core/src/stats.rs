//! Per-rank statistics of the power-saving mechanism.
//!
//! These counters feed three of the paper's exhibits directly:
//!
//! * **Table III** — "MPI call hit rate": fraction of all MPI calls that
//!   arrived while prediction was active *and* matched the expectation;
//! * **Table IV** — PPA overheads: fraction of calls on which the PPA ran,
//!   mean overhead per invoking call, and overhead amortised over all
//!   calls;
//! * the quick power estimate used by GT sweeps (Fig. 10), where a full
//!   network replay per GT value would be wasteful.

use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Counters accumulated by one rank's runtime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    /// All MPI calls intercepted.
    pub total_calls: u64,
    /// Calls that arrived while prediction was active.
    pub predicted_calls: u64,
    /// Predicted calls that matched the expected pattern position.
    pub correct_calls: u64,
    /// Prediction aborts because the arriving call stream diverged from
    /// the declared pattern.
    pub pattern_mispredictions: u64,
    /// Lane reactivations that completed after the communication wanted
    /// to start (late wake-ups; the idle interval was shorter than
    /// predicted).
    pub timing_mispredictions: u64,
    /// Pattern declarations (fresh three-consecutive proofs).
    pub declarations: u64,
    /// Declarations that re-armed an already-detected pattern.
    pub rearms: u64,
    /// Calls on which the PPA did scanning work.
    pub ppa_invoked_calls: u64,
    /// Modelled PPA overhead accumulated across invocations.
    pub ppa_overhead: SimDuration,
    /// Modelled interception overhead (≈1 µs × total_calls).
    pub intercept_overhead: SimDuration,
    /// Lane-off directives issued.
    pub lane_off_count: u64,
    /// Nominal time spent with lanes in low-power (WRPS 1X) mode.
    pub low_power_time: SimDuration,
    /// Nominal time spent in the deep switch-sleep state (§VI extension).
    pub deep_time: SimDuration,
    /// Nominal time spent in the rate-reduced state (ladder policy).
    #[serde(default)]
    pub rate_time: SimDuration,
    /// Total reactivation stall injected into this rank.
    pub total_penalty: SimDuration,
    /// Nominal (communication-free) duration of the rank's trace.
    pub nominal_duration: SimDuration,
    /// Misprediction storms detected by the resilience controller.
    #[serde(default)]
    pub storms: u64,
    /// Calls intercepted while prediction was held off after a storm.
    #[serde(default)]
    pub holdoff_calls: u64,
    /// Sleep directives withheld by the slowdown-budget guard.
    #[serde(default)]
    pub suppressed_directives: u64,
}

impl RankStats {
    /// Table III metric: correctly predicted MPI calls as a percentage of
    /// all MPI calls.
    pub fn hit_rate_pct(&self) -> f64 {
        if self.total_calls == 0 {
            0.0
        } else {
            100.0 * self.correct_calls as f64 / self.total_calls as f64
        }
    }

    /// Table IV column 1: percentage of MPI calls on which the PPA ran.
    pub fn ppa_invocation_pct(&self) -> f64 {
        if self.total_calls == 0 {
            0.0
        } else {
            100.0 * self.ppa_invoked_calls as f64 / self.total_calls as f64
        }
    }

    /// Table IV column 2: mean overhead per PPA-invoking call, in µs.
    pub fn overhead_per_invoked_call_us(&self) -> f64 {
        if self.ppa_invoked_calls == 0 {
            0.0
        } else {
            self.ppa_overhead.as_us_f64() / self.ppa_invoked_calls as f64
        }
    }

    /// Table IV column 3: total mechanism overhead amortised over all MPI
    /// calls (interception + PPA), in µs.
    pub fn overhead_per_call_us(&self) -> f64 {
        if self.total_calls == 0 {
            0.0
        } else {
            (self.ppa_overhead + self.intercept_overhead).as_us_f64() / self.total_calls as f64
        }
    }

    /// Fraction of the rank's nominal duration spent in low-power mode.
    pub fn low_power_fraction(&self) -> f64 {
        let total = self.nominal_duration.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            (self.low_power_time.as_secs_f64() / total).min(1.0)
        }
    }

    /// Quick estimate of the link power saving (%), without a network
    /// replay: `(1 − low_power_fraction_draw) × low-power time share`.
    pub fn est_power_saving_pct(&self, low_power_draw: f64) -> f64 {
        100.0 * (1.0 - low_power_draw) * self.low_power_fraction()
    }

    /// Merge another rank's counters into an aggregate.
    pub fn merge(&mut self, other: &RankStats) {
        self.total_calls += other.total_calls;
        self.predicted_calls += other.predicted_calls;
        self.correct_calls += other.correct_calls;
        self.pattern_mispredictions += other.pattern_mispredictions;
        self.timing_mispredictions += other.timing_mispredictions;
        self.declarations += other.declarations;
        self.rearms += other.rearms;
        self.ppa_invoked_calls += other.ppa_invoked_calls;
        self.ppa_overhead += other.ppa_overhead;
        self.intercept_overhead += other.intercept_overhead;
        self.lane_off_count += other.lane_off_count;
        self.low_power_time += other.low_power_time;
        self.deep_time += other.deep_time;
        self.rate_time += other.rate_time;
        self.total_penalty += other.total_penalty;
        self.nominal_duration += other.nominal_duration;
        self.storms += other.storms;
        self.holdoff_calls += other.holdoff_calls;
        self.suppressed_directives += other.suppressed_directives;
    }

    /// Total mechanism-added time: interception + PPA overheads plus all
    /// reactivation stalls. This is what the resilience controller's
    /// slowdown budget bounds against [`RankStats::nominal_duration`].
    pub fn mechanism_added_time(&self) -> SimDuration {
        self.intercept_overhead + self.ppa_overhead + self.total_penalty
    }

    /// Mechanism-added time as a percentage of the nominal duration (an
    /// upper bound on this rank's slowdown; overlap can only hide cost).
    pub fn added_time_pct(&self) -> f64 {
        let total = self.nominal_duration.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.mechanism_added_time().as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankStats {
        RankStats {
            total_calls: 1000,
            predicted_calls: 800,
            correct_calls: 780,
            ppa_invoked_calls: 40,
            ppa_overhead: SimDuration::from_us(600),
            intercept_overhead: SimDuration::from_us(1000),
            low_power_time: SimDuration::from_ms(570),
            nominal_duration: SimDuration::from_secs(1),
            ..RankStats::default()
        }
    }

    #[test]
    fn hit_rate() {
        assert!((sample().hit_rate_pct() - 78.0).abs() < 1e-12);
        assert_eq!(RankStats::default().hit_rate_pct(), 0.0);
    }

    #[test]
    fn table4_metrics() {
        let s = sample();
        assert!((s.ppa_invocation_pct() - 4.0).abs() < 1e-12);
        assert!((s.overhead_per_invoked_call_us() - 15.0).abs() < 1e-12);
        // (600 + 1000) µs over 1000 calls = 1.6 µs/call.
        assert!((s.overhead_per_call_us() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn power_estimate() {
        let s = sample();
        assert!((s.low_power_fraction() - 0.57).abs() < 1e-12);
        // 57% of time in low power at 43% draw → 0.57 * 0.57 = 32.49%.
        assert!((s.est_power_saving_pct(0.43) - 32.49).abs() < 1e-10);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total_calls, 2000);
        assert_eq!(a.ppa_overhead, SimDuration::from_us(1200));
        assert!((a.hit_rate_pct() - 78.0).abs() < 1e-12, "ratios preserved");
    }

    #[test]
    fn low_power_fraction_clamped() {
        let s = RankStats {
            low_power_time: SimDuration::from_secs(2),
            nominal_duration: SimDuration::from_secs(1),
            ..RankStats::default()
        };
        assert_eq!(s.low_power_fraction(), 1.0);
    }
}
