//! The PMPI-layer runtime: interception loop + power-mode control.
//!
//! [`RankRuntime`] is the per-process state machine of the paper's Fig. 1.
//! It consumes the stream of MPI events exactly as a PMPI hook would —
//! one `(call, idle-since-previous-call)` pair at a time — and transitions
//! between two components:
//!
//! * **Pattern prediction** (mode [`Mode::Learning`]): gram formation
//!   (Algorithm 1) feeds the PPA (Algorithm 2). On a declaration the
//!   runtime switches to…
//! * **Power-mode control** (mode [`Mode::Predicting`], Algorithm 3): the
//!   PPA is disabled (its overhead vanishes); arriving calls are checked
//!   against the declared pattern; when an expected gram completes, a
//!   lane-off directive with a programmed wake-up timer is issued for the
//!   predicted idle gap. Inter-communication times keep being folded into
//!   the per-slot running means so timers track drift.
//!
//! Two misprediction kinds are handled as in the paper: a *pattern*
//! misprediction (the call stream diverges) falls back to Learning and
//! relaunches the PPA; a *timing* misprediction (idle shorter than
//! predicted) charges a reactivation stall of at most `T_react` to the
//! affected call.

use crate::config::{PowerConfig, ResilienceConfig, SleepKind};
use crate::gram::{Gram, GramBuilder, GramId, GramInterner};
use crate::pattern::PatternId;
use crate::ppa::{seed_slot_gaps, Ppa};
use crate::snapshot::{
    ModeSnapshot, PendingSleepSnapshot, ResilienceSnapshot, RuntimeSnapshot, SnapshotError,
    SNAPSHOT_VERSION,
};
use crate::stats::RankStats;
use ibp_simcore::SimDuration;
use ibp_trace::{MpiCall, Rank, RankTrace};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A lane power directive: after event `after_event` completes, shut the
/// three inactive lanes down and program the HCA timer to wake them after
/// `timer` (lanes ready `timer + T_react` after the event completes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneDirective {
    /// Index of the MPI event (within the rank's stream) whose completion
    /// triggers the lane shutdown.
    pub after_event: usize,
    /// Delay between the event's completion and the shutdown. Zero for
    /// the paper's predictive mechanism (deactivation overlaps compute);
    /// non-zero for reactive idle-timeout baselines.
    #[serde(default)]
    pub delay: SimDuration,
    /// Programmed timer: low-power window measured from the shutdown.
    pub timer: SimDuration,
    /// The full predicted idle interval the timer was derived from.
    pub predicted_idle: SimDuration,
    /// Depth of the sleep (WRPS lane reduction or deep switch sleep).
    #[serde(default = "default_kind")]
    pub kind: SleepKind,
}

fn default_kind() -> SleepKind {
    SleepKind::Wrps
}

/// Everything the runtime derived for one rank: directives for the
/// network simulator, per-event overheads/penalties to replay, and the
/// summary counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankAnnotation {
    /// The rank these annotations apply to.
    pub rank: Rank,
    /// Lane-off directives in event order.
    pub directives: Vec<LaneDirective>,
    /// Per-event mechanism overhead (interception + PPA), added to the
    /// compute burst preceding the event.
    pub overhead: Vec<SimDuration>,
    /// Per-event reactivation stall (late lane wake-up), added before the
    /// event's communication can start.
    pub penalty: Vec<SimDuration>,
    /// Summary counters.
    pub stats: RankStats,
}

#[derive(Debug)]
enum Mode {
    Learning,
    Predicting {
        /// Interned id of the declared pattern — slot-gap refreshes while
        /// predicting are direct indexed loads, no hashing at all.
        pattern: PatternId,
        /// Expected call-id sequence of each pattern slot.
        shapes: Vec<Box<[u16]>>,
        /// Slot whose gram is currently being matched.
        slot: usize,
        /// Calls already matched within the current slot's gram.
        progress: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct PendingSleep {
    timer: SimDuration,
    kind: SleepKind,
}

/// Mutable state of the adaptive resilience controller (see
/// [`ResilienceConfig`]). All transitions are no-ops when the controller
/// is disabled, preserving the paper's exact behaviour.
/// A run of late wake-ups only counts as a storm at this multiple of
/// [`ResilienceConfig::storm_threshold`]: sparse timing misses are the
/// guard band's job; the hold-off is for wake-up latencies that stay on
/// the critical path call after call.
const TIMING_STORM_FACTOR: u32 = 3;

#[derive(Debug, Default)]
struct ResilienceState {
    /// Call indices (1-based `total_calls` values) of recent pattern
    /// mispredictions, pruned to the sliding storm window.
    recent_pattern: VecDeque<u64>,
    /// Call indices of recent timing mispredictions (late wake-ups).
    recent_timing: VecDeque<u64>,
    /// Calls left in the current prediction hold-off (0 = armed).
    holdoff_remaining: u32,
    /// Length of the next hold-off (doubles per storm, capped).
    next_holdoff: u32,
    /// Guard band: extra displacement added to every planned sleep.
    guard: f64,
}

/// Push `call_idx` into a sliding misprediction window, prune entries
/// older than `window` calls, and report the resulting count.
fn push_window(win: &mut VecDeque<u64>, window: u32, call_idx: u64) -> u32 {
    win.push_back(call_idx);
    while let Some(&oldest) = win.front() {
        if call_idx.saturating_sub(oldest) >= u64::from(window) {
            win.pop_front();
        } else {
            break;
        }
    }
    win.len() as u32
}

impl ResilienceState {
    /// Record a pattern misprediction at `call_idx`; returns `true` when
    /// this tips the window over the storm threshold (the caller then
    /// finds `holdoff_remaining` armed).
    fn note_pattern_misprediction(&mut self, cfg: &ResilienceConfig, call_idx: u64) -> bool {
        if !cfg.enabled {
            return false;
        }
        if push_window(&mut self.recent_pattern, cfg.storm_window, call_idx)
            >= cfg.storm_threshold
        {
            self.recent_pattern.clear();
            self.arm_holdoff(cfg);
            true
        } else {
            false
        }
    }

    /// A sleep window woke late: widen the guard band, and feed the
    /// timing-storm window — a dense run of late wake-ups (the guard
    /// band failing to catch up) also warrants backing off. Returns
    /// `true` when a storm tips over.
    fn note_timing_misprediction(&mut self, cfg: &ResilienceConfig, call_idx: u64) -> bool {
        if !cfg.enabled {
            return false;
        }
        self.guard = (self.guard + cfg.guard_step).min(cfg.max_guard);
        if push_window(&mut self.recent_timing, cfg.storm_window, call_idx)
            >= cfg.storm_threshold * TIMING_STORM_FACTOR
        {
            self.recent_timing.clear();
            self.arm_holdoff(cfg);
            true
        } else {
            false
        }
    }

    /// Start (or restart) a hold-off, doubling the next one up to the cap.
    fn arm_holdoff(&mut self, cfg: &ResilienceConfig) {
        let hold = if self.next_holdoff == 0 {
            cfg.base_holdoff
        } else {
            self.next_holdoff
        };
        self.holdoff_remaining = hold;
        self.next_holdoff = hold.saturating_mul(2).min(cfg.max_holdoff);
    }

    /// A sleep window resolved cleanly: decay the guard band.
    fn note_clean_wake(&mut self, cfg: &ResilienceConfig) {
        if cfg.enabled {
            self.guard *= cfg.guard_decay;
            if self.guard < 1e-6 {
                self.guard = 0.0;
            }
        }
    }
}

/// Is the mechanism's added time over the configured share of the
/// nominal duration? (Free function so call sites can borrow `stats`
/// and the runtime's other fields disjointly.)
fn budget_exceeded(cfg: &ResilienceConfig, stats: &RankStats) -> bool {
    if !cfg.enabled || cfg.slowdown_budget_pct <= 0.0 {
        return false;
    }
    let nominal = stats.nominal_duration.as_secs_f64();
    nominal > 0.0
        && stats.mechanism_added_time().as_secs_f64() > nominal * cfg.slowdown_budget_pct / 100.0
}

/// Per-rank interception runtime (see module docs).
#[derive(Debug)]
pub struct RankRuntime {
    cfg: PowerConfig,
    rank: Rank,
    interner: GramInterner,
    builder: GramBuilder,
    grams: Vec<Gram>,
    gram_ids: Vec<GramId>,
    ppa: Ppa,
    mode: Mode,
    pending: Option<PendingSleep>,
    resilience: ResilienceState,
    stats: RankStats,
    directives: Vec<LaneDirective>,
    overhead: Vec<SimDuration>,
    penalty: Vec<SimDuration>,
    event_idx: usize,
}

impl RankRuntime {
    /// Create a runtime for `rank` with the given configuration.
    pub fn new(rank: Rank, cfg: PowerConfig) -> Self {
        let ppa = Ppa::with_window(
            cfg.min_consecutive,
            cfg.max_pattern_size,
            cfg.occurrence_window,
        );
        let builder = GramBuilder::new(&cfg);
        RankRuntime {
            cfg,
            rank,
            interner: GramInterner::new(),
            builder,
            grams: Vec::new(),
            gram_ids: Vec::new(),
            ppa,
            mode: Mode::Learning,
            pending: None,
            resilience: ResilienceState::default(),
            stats: RankStats::default(),
            directives: Vec::new(),
            overhead: Vec::new(),
            penalty: Vec::new(),
            event_idx: 0,
        }
    }

    /// Pre-size the per-event output buffers for `additional` upcoming
    /// intercepts. With this reservation in place, the steady-state
    /// (predicting) intercept path performs no heap allocation at all —
    /// asserted by the counting-allocator test in `tests/alloc_free.rs`.
    pub fn reserve_events(&mut self, additional: usize) {
        self.overhead.reserve(additional);
        self.penalty.reserve(additional);
        // At most one directive per event; grams only close on gram
        // boundaries but never outnumber events.
        self.directives.reserve(additional);
        self.grams.reserve(additional);
        self.gram_ids.reserve(additional);
    }

    /// Whether prediction (power-mode control) is currently active.
    pub fn predicting(&self) -> bool {
        matches!(self.mode, Mode::Predicting { .. })
    }

    /// Whether the resilience controller currently holds prediction off
    /// after a misprediction storm.
    pub fn holdoff_active(&self) -> bool {
        self.resilience.holdoff_remaining > 0
    }

    /// Current guard band (extra displacement) of the resilience
    /// controller; zero when disabled or fully decayed.
    pub fn guard_band(&self) -> f64 {
        self.resilience.guard
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// All lane directives issued so far, in event order. Streaming
    /// consumers (the `ibp-serve` sessions) drain this incrementally by
    /// remembering how many they have already forwarded.
    pub fn directives(&self) -> &[LaneDirective] {
        &self.directives
    }

    /// Number of events intercepted so far.
    pub fn events_seen(&self) -> usize {
        self.event_idx
    }

    /// Phase of the declared pattern while predicting:
    /// `(slot, progress, slots)` — the slot whose gram is currently
    /// being matched, the calls already matched within it, and the
    /// pattern length in slots. `None` while learning.
    #[must_use]
    pub fn pattern_phase(&self) -> Option<(usize, usize, usize)> {
        match &self.mode {
            Mode::Learning => None,
            Mode::Predicting { shapes, slot, progress, .. } => {
                Some((*slot, *progress, shapes.len()))
            }
        }
    }

    /// The armed sleep window, if a lane-off directive is outstanding:
    /// its depth and the programmed HCA wake-up timer.
    #[must_use]
    pub fn pending_sleep(&self) -> Option<(SleepKind, SimDuration)> {
        self.pending.map(|p| (p.kind, p.timer))
    }

    /// The PPA's current prediction horizon: the mean idle gap predicted
    /// for the upcoming pattern slot (what the next issued timer is
    /// derived from). `None` while learning.
    #[must_use]
    pub fn predicted_horizon(&self) -> Option<SimDuration> {
        match &self.mode {
            Mode::Learning => None,
            Mode::Predicting { pattern, shapes, slot, progress } => {
                let next = if *progress == 0 { *slot } else { (*slot + 1) % shapes.len() };
                Some(
                    self.ppa
                        .pattern_list()
                        .entry(*pattern)
                        .and_then(|e| e.slot_gaps.get(next))
                        .map(|m| m.mean())
                        .unwrap_or(SimDuration::ZERO),
                )
            }
        }
    }

    /// Occupancy of the resilience controller's sliding misprediction
    /// windows: `(pattern, timing)` mispredictions currently inside the
    /// storm window. Both zero when the controller is disabled.
    #[must_use]
    pub fn resilience_windows(&self) -> (usize, usize) {
        (
            self.resilience.recent_pattern.len(),
            self.resilience.recent_timing.len(),
        )
    }

    /// Calls left in the current prediction hold-off (0 = no hold-off).
    #[must_use]
    pub fn holdoff_remaining(&self) -> u32 {
        self.resilience.holdoff_remaining
    }

    /// Intercept one MPI call: `gap` is the idle time since the previous
    /// call on this rank (the `compute_before` of the trace record).
    pub fn intercept(&mut self, call: MpiCall, gap: SimDuration) {
        let mut event_overhead = self.cfg.intercept_overhead;
        let mut event_penalty = SimDuration::ZERO;
        self.stats.total_calls += 1;
        self.stats.intercept_overhead += self.cfg.intercept_overhead;
        self.stats.nominal_duration += gap;

        match &mut self.mode {
            Mode::Learning if self.resilience.holdoff_remaining > 0 => {
                // Storm hold-off: prediction and the PPA stay suspended;
                // only the interception cost is charged. When the
                // hold-off expires, learning restarts from a clean slate.
                self.resilience.holdoff_remaining -= 1;
                self.stats.holdoff_calls += 1;
                if self.resilience.holdoff_remaining == 0 {
                    self.builder = GramBuilder::new(&self.cfg);
                    self.ppa.relaunch(self.gram_ids.len());
                }
            }
            Mode::Learning => {
                if let Some(closed) = self.builder.push(call, gap, &mut self.interner) {
                    self.grams.push(closed.clone());
                    self.gram_ids.push(closed.id);
                    let decl = self.ppa.advance(&self.gram_ids);
                    if self.ppa.last_elements() > 0 {
                        self.stats.ppa_invoked_calls += 1;
                        let cost = self.cfg.ppa_base_overhead
                            + self.cfg.ppa_per_element_overhead * self.ppa.last_elements();
                        self.stats.ppa_overhead += cost;
                        event_overhead += cost;
                    }
                    if let Some(decl) = decl {
                        self.stats.declarations += 1;
                        if decl.rearmed {
                            self.stats.rearms += 1;
                        }
                        self.enter_prediction(decl.pattern, call);
                    }
                }
            }
            Mode::Predicting {
                pattern,
                shapes,
                slot,
                progress,
            } => {
                let gt = self.cfg.grouping_threshold;
                let mut mispredicted = false;
                let mut timing_storm = false;

                if *progress == 0 {
                    // This event terminates the predicted idle gap.
                    if let Some(p) = self.pending.take() {
                        let react = self.cfg.react_of(p.kind);
                        // Lanes ready at gap start + timer + react time.
                        let ready = p.timer + react;
                        let stall = ready.saturating_sub(gap).min(react);
                        if !stall.is_zero() {
                            self.stats.timing_mispredictions += 1;
                            self.stats.total_penalty += stall;
                            event_penalty += stall;
                            if self.resilience.note_timing_misprediction(
                                &self.cfg.resilience,
                                self.stats.total_calls,
                            ) {
                                self.stats.storms += 1;
                                timing_storm = true;
                            }
                        } else {
                            self.resilience.note_clean_wake(&self.cfg.resilience);
                        }
                        // Low-power span actually achieved: from the off
                        // transition's end until the timer fired — or
                        // until the early call forced a wake-up.
                        let span = p.timer.min(gap).saturating_sub(react);
                        match p.kind {
                            SleepKind::Wrps => self.stats.low_power_time += span,
                            SleepKind::Rate => self.stats.rate_time += span,
                            SleepKind::Deep => self.stats.deep_time += span,
                        }
                    }
                    if gap < gt {
                        // The previous gram was not over: the pattern has
                        // more calls than predicted → pattern break.
                        mispredicted = true;
                    } else {
                        // Fold the observed gap into the slot mean so the
                        // next occurrence's timer tracks drift.
                        if let Some(entry) = self.ppa.pattern_list_mut().entry_mut(*pattern) {
                            if let Some(m) = entry.slot_gaps.get_mut(*slot) {
                                m.push(gap);
                            }
                        }
                    }
                } else if gap >= gt {
                    // A long gap arrived mid-gram: the gram ended early.
                    mispredicted = true;
                }

                if !mispredicted {
                    let shape = &shapes[*slot];
                    if call.id() != shape[*progress] {
                        mispredicted = true;
                    } else {
                        *progress += 1;
                        self.stats.predicted_calls += 1;
                        self.stats.correct_calls += 1;
                        if *progress == shape.len() {
                            // Expected gram complete: program the lane-off
                            // for the gap before the next slot.
                            let next = (*slot + 1) % shapes.len();
                            let predicted_idle = self
                                .ppa
                                .pattern_list()
                                .entry(*pattern)
                                .and_then(|e| e.slot_gaps.get(next))
                                .map(|m| m.mean())
                                .unwrap_or(SimDuration::ZERO);
                            let plan = if budget_exceeded(&self.cfg.resilience, &self.stats) {
                                self.stats.suppressed_directives += 1;
                                None
                            } else {
                                let disp = self.cfg.displacement + self.resilience.guard;
                                self.cfg.plan_sleep_with(disp, predicted_idle)
                            };
                            if let Some((kind, timer)) = plan {
                                self.directives.push(LaneDirective {
                                    after_event: self.event_idx,
                                    delay: SimDuration::ZERO,
                                    timer,
                                    predicted_idle,
                                    kind,
                                });
                                self.stats.lane_off_count += 1;
                                self.pending = Some(PendingSleep { timer, kind });
                            }
                            *slot = next;
                            *progress = 0;
                        }
                    }
                }

                if mispredicted {
                    self.stats.pattern_mispredictions += 1;
                    if self
                        .resilience
                        .note_pattern_misprediction(&self.cfg.resilience, self.stats.total_calls)
                    {
                        self.stats.storms += 1;
                    }
                    self.fall_back_to_learning(call, gap);
                } else if timing_storm {
                    // A storm of late wake-ups: abandon the (correctly
                    // matched) pattern and let the hold-off run. The call
                    // itself was predicted fine, so no pattern
                    // misprediction is charged.
                    self.fall_back_to_learning(call, gap);
                }
            }
        }

        self.overhead.push(event_overhead);
        self.penalty.push(event_penalty);
        self.event_idx += 1;
    }

    /// Intercept a batch of events through the allocation-free hot path,
    /// reserving output capacity once up front.
    pub fn intercept_batch(&mut self, events: &[(MpiCall, SimDuration)]) {
        self.reserve_events(events.len());
        for &(call, gap) in events {
            self.intercept(call, gap);
        }
    }

    /// Capture the complete learned state (see [`RuntimeSnapshot`]).
    /// The per-event output vectors are *not* captured: a restored
    /// runtime starts them empty and continues pushing directives with
    /// the correct absolute `after_event` indices.
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            rank: self.rank,
            interner: self.interner.snapshot(),
            builder: self.builder.snapshot(),
            grams: self.grams.clone(),
            gram_ids: self.gram_ids.clone(),
            ppa: self.ppa.snapshot(),
            mode: match &self.mode {
                Mode::Learning => ModeSnapshot::Learning,
                Mode::Predicting {
                    pattern,
                    shapes,
                    slot,
                    progress,
                } => ModeSnapshot::Predicting {
                    pattern: *pattern,
                    shapes: shapes.iter().map(|s| s.to_vec()).collect(),
                    slot: *slot,
                    progress: *progress,
                },
            },
            pending: self.pending.map(|p| PendingSleepSnapshot {
                timer: p.timer,
                kind: p.kind,
            }),
            resilience: ResilienceSnapshot {
                recent_pattern: self.resilience.recent_pattern.iter().copied().collect(),
                recent_timing: self.resilience.recent_timing.iter().copied().collect(),
                holdoff_remaining: self.resilience.holdoff_remaining,
                next_holdoff: self.resilience.next_holdoff,
                guard: self.resilience.guard,
            },
            stats: self.stats.clone(),
            event_idx: self.event_idx,
        }
    }

    /// Rebuild a runtime from a snapshot, revalidating every internal
    /// invariant (snapshots may arrive over the wire). The restored
    /// runtime produces declarations and directives byte-identical to
    /// the original continuing uninterrupted.
    pub fn from_snapshot(snap: &RuntimeSnapshot) -> Result<Self, SnapshotError> {
        snap.validate_version()?;
        // The same invariant checks `protocol::validate_config` runs on
        // an `Open` — a hostile Restore must not smuggle in a config
        // that `Open` would have rejected (e.g. a negative displacement
        // later asserts in `SimDuration::mul_f64` and kills the worker).
        snap.cfg.validate().map_err(SnapshotError::Inconsistent)?;
        let guard = snap.resilience.guard;
        if !guard.is_finite() || guard < 0.0 {
            return Err(SnapshotError::Inconsistent(format!(
                "resilience guard {guard} must be finite and >= 0"
            )));
        }
        if snap.gram_ids.len() != snap.grams.len() {
            return Err(SnapshotError::Inconsistent(format!(
                "{} gram ids for {} grams",
                snap.gram_ids.len(),
                snap.grams.len()
            )));
        }
        let interner = GramInterner::from_snapshot(&snap.interner)?;
        for (gram, &gid) in snap.grams.iter().zip(&snap.gram_ids) {
            if gid as usize >= interner.len() || gram.id != gid {
                return Err(SnapshotError::DanglingId {
                    what: "gram",
                    id: u64::from(gid),
                    len: interner.len(),
                });
            }
        }
        let ppa = Ppa::from_snapshot(&snap.ppa)?;
        for key in &snap.ppa.pattern_list.keys {
            for &gid in key {
                if gid as usize >= interner.len() {
                    return Err(SnapshotError::DanglingId {
                        what: "gram",
                        id: u64::from(gid),
                        len: interner.len(),
                    });
                }
            }
        }
        let mode = match &snap.mode {
            ModeSnapshot::Learning => Mode::Learning,
            ModeSnapshot::Predicting {
                pattern,
                shapes,
                slot,
                progress,
            } => {
                if *pattern as usize >= snap.ppa.pattern_list.keys.len() {
                    return Err(SnapshotError::DanglingId {
                        what: "pattern",
                        id: u64::from(*pattern),
                        len: snap.ppa.pattern_list.keys.len(),
                    });
                }
                let ok = *slot < shapes.len()
                    && shapes.iter().all(|s| !s.is_empty())
                    && (*progress == 0 || *progress < shapes[*slot].len());
                if !ok {
                    return Err(SnapshotError::Inconsistent(format!(
                        "predicting mode out of range: slot {slot}, progress {progress}, {} shapes",
                        shapes.len()
                    )));
                }
                Mode::Predicting {
                    pattern: *pattern,
                    shapes: shapes.iter().map(|s| s.clone().into_boxed_slice()).collect(),
                    slot: *slot,
                    progress: *progress,
                }
            }
        };
        Ok(RankRuntime {
            builder: GramBuilder::from_snapshot(&snap.cfg, &snap.builder),
            cfg: snap.cfg.clone(),
            rank: snap.rank,
            interner,
            grams: snap.grams.clone(),
            gram_ids: snap.gram_ids.clone(),
            ppa,
            mode,
            pending: snap.pending.map(|p| PendingSleep {
                timer: p.timer,
                kind: p.kind,
            }),
            resilience: ResilienceState {
                recent_pattern: snap.resilience.recent_pattern.iter().copied().collect(),
                recent_timing: snap.resilience.recent_timing.iter().copied().collect(),
                holdoff_remaining: snap.resilience.holdoff_remaining,
                next_holdoff: snap.resilience.next_holdoff,
                guard: snap.resilience.guard,
            },
            stats: snap.stats.clone(),
            directives: Vec::new(),
            overhead: Vec::new(),
            penalty: Vec::new(),
            event_idx: snap.event_idx,
        })
    }

    /// Finish the stream and return the annotations.
    pub fn finish(mut self, final_compute: SimDuration) -> RankAnnotation {
        self.stats.nominal_duration += final_compute;
        if let Some(closed) = self.builder.flush(&mut self.interner) {
            self.grams.push(closed.clone());
            self.gram_ids.push(closed.id);
        }
        RankAnnotation {
            rank: self.rank,
            directives: self.directives,
            overhead: self.overhead,
            penalty: self.penalty,
            stats: self.stats,
        }
    }

    /// Switch to prediction mode for `pattern`; `first_call` is the call
    /// that triggered the declaration — it is the first call of the first
    /// predicted occurrence (it opened the gram at `predict_from`).
    fn enter_prediction(&mut self, pattern: Box<[GramId]>, first_call: MpiCall) {
        // Resolve expected call-id sequences.
        let shapes: Vec<Box<[u16]>> = pattern
            .iter()
            .map(|&gid| self.interner.shape(gid).into())
            .collect();
        let pattern_id = self
            .ppa
            .pattern_list()
            .id_of(&pattern)
            .expect("declared pattern is interned");

        // Seed the per-slot idle means from the occurrences that proved
        // the pattern, unless a previous prediction phase already did.
        {
            let grams = &self.grams;
            let entry = self
                .ppa
                .pattern_list_mut()
                .entry_mut(pattern_id)
                .expect("declared pattern is in the list");
            if entry.slot_gaps.is_empty() {
                entry.slot_gaps = seed_slot_gaps(entry.occurrences.iter(), pattern.len(), |i| {
                    grams.get(i).map(|g| g.preceding_idle)
                });
                entry.mpi_calls = shapes.iter().map(|s| s.len() as u32).sum();
            }
        }

        // The declaring call opened the first predicted occurrence; it is
        // predicted to be slot 0's first call. If the stream diverges on
        // this very call (e.g. an aperiodic gram follows a re-arm), that
        // is an immediate pattern misprediction: stay in learning — the
        // builder already holds the diverging call as its open gram.
        if shapes[0][0] != first_call.id() {
            self.stats.pattern_mispredictions += 1;
            if self
                .resilience
                .note_pattern_misprediction(&self.cfg.resilience, self.stats.total_calls)
            {
                self.stats.storms += 1;
            }
            return;
        }
        self.stats.predicted_calls += 1;
        self.stats.correct_calls += 1;

        // Drop the open gram from the builder: prediction tracks it now.
        self.builder = GramBuilder::new(&self.cfg);

        let single_call_slot0 = shapes[0].len() == 1;
        if single_call_slot0 {
            // Slot 0's gram is already complete; issue its directive and
            // move to slot 1 (or wrap).
            let next = 1 % shapes.len();
            let predicted_idle = self
                .ppa
                .pattern_list()
                .entry(pattern_id)
                .and_then(|e| e.slot_gaps.get(next))
                .map(|m| m.mean())
                .unwrap_or(SimDuration::ZERO);
            let plan = if budget_exceeded(&self.cfg.resilience, &self.stats) {
                self.stats.suppressed_directives += 1;
                None
            } else {
                let disp = self.cfg.displacement + self.resilience.guard;
                self.cfg.plan_sleep_with(disp, predicted_idle)
            };
            if let Some((kind, timer)) = plan {
                self.directives.push(LaneDirective {
                    after_event: self.event_idx,
                    delay: SimDuration::ZERO,
                    timer,
                    predicted_idle,
                    kind,
                });
                self.stats.lane_off_count += 1;
                self.pending = Some(PendingSleep { timer, kind });
            }
            self.mode = Mode::Predicting {
                pattern: pattern_id,
                shapes,
                slot: next,
                progress: 0,
            };
        } else {
            self.mode = Mode::Predicting {
                pattern: pattern_id,
                shapes,
                slot: 0,
                progress: 1,
            };
        }
    }

    /// Pattern misprediction: relaunch the PPA and restart gram formation
    /// with the diverging call as the first event of a fresh gram.
    fn fall_back_to_learning(&mut self, call: MpiCall, gap: SimDuration) {
        self.pending = None;
        self.mode = Mode::Learning;
        self.builder = GramBuilder::new(&self.cfg);
        self.ppa.relaunch(self.gram_ids.len());
        // Feed the diverging call as the opening event of a new gram (it
        // cannot close a gram, so no PPA work happens here).
        let none = self.builder.push(call, gap, &mut self.interner);
        debug_assert!(none.is_none());
    }
}

/// Run the full mechanism over one rank's recorded stream.
pub fn annotate_rank(trace: &RankTrace, cfg: &PowerConfig) -> RankAnnotation {
    let mut rt = RankRuntime::new(trace.rank, cfg.clone());
    rt.reserve_events(trace.call_count());
    for (call, gap) in trace.call_stream() {
        rt.intercept(call, gap);
    }
    rt.finish(trace.final_compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{ModeSnapshot, RuntimeSnapshot, SnapshotError};
    use ibp_trace::MpiCall::{Allreduce, Sendrecv};

    fn cfg() -> PowerConfig {
        PowerConfig::paper(SimDuration::from_us(20), 0.10)
    }

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    /// Feed `iters` Alya iterations (Fig. 2): 41,41,41 close together,
    /// then 10, 10 with long gaps.
    fn feed_alya(rt: &mut RankRuntime, iters: usize, long_gap: u64) {
        for it in 0..iters {
            let lead = if it == 0 { us(0) } else { us(long_gap) };
            rt.intercept(Sendrecv, lead);
            rt.intercept(Sendrecv, us(2));
            rt.intercept(Sendrecv, us(3));
            rt.intercept(Allreduce, us(long_gap));
            rt.intercept(Allreduce, us(long_gap));
        }
    }

    #[test]
    fn prediction_activates_at_event_21() {
        // Fig. 3: prediction flips to true on the 21st MPI event.
        let mut rt = RankRuntime::new(0, cfg());
        let mut activation_event = None;
        let calls: Vec<(MpiCall, SimDuration)> = {
            let mut v = Vec::new();
            for it in 0..6 {
                let lead = if it == 0 { us(0) } else { us(300) };
                v.push((Sendrecv, lead));
                v.push((Sendrecv, us(2)));
                v.push((Sendrecv, us(3)));
                v.push((Allreduce, us(300)));
                v.push((Allreduce, us(300)));
            }
            v
        };
        for (i, (call, gap)) in calls.into_iter().enumerate() {
            rt.intercept(call, gap);
            if rt.predicting() && activation_event.is_none() {
                activation_event = Some(i + 1); // 1-based like the paper
            }
        }
        assert_eq!(activation_event, Some(21));
    }

    #[test]
    fn directives_issued_while_predicting() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 12, 300);
        let ann = rt.finish(SimDuration::ZERO);
        assert!(ann.stats.lane_off_count > 0, "no directives issued");
        // All timers obey Algorithm 3: timer = idle − idle·disp − T_react.
        for d in &ann.directives {
            let expect = d
                .predicted_idle
                .saturating_sub(d.predicted_idle.mul_f64(0.10) + us(10));
            assert_eq!(d.timer, expect);
            assert!(d.timer > us(10), "unprofitable directive issued");
        }
        // Steady state with constant gaps: no penalties.
        assert_eq!(ann.stats.timing_mispredictions, 0);
        assert_eq!(ann.stats.pattern_mispredictions, 0);
        assert!(ann.penalty.iter().all(|p| p.is_zero()));
    }

    #[test]
    fn hit_rate_grows_with_iterations() {
        let run = |iters: usize| {
            let mut rt = RankRuntime::new(0, cfg());
            feed_alya(&mut rt, iters, 300);
            rt.finish(SimDuration::ZERO).stats.hit_rate_pct()
        };
        let short = run(6);
        let long = run(60);
        assert!(long > short, "hit rate should amortise learning: {short} vs {long}");
        assert!(long > 85.0, "steady-state Alya hit rate ~93%: got {long}");
    }

    #[test]
    fn shorter_gap_than_predicted_charges_bounded_stall() {
        let mut rt = RankRuntime::new(0, cfg());
        // Learn with 300 µs gaps…
        feed_alya(&mut rt, 8, 300);
        assert!(rt.predicting());
        // …then one iteration arrives much earlier than predicted.
        rt.intercept(Sendrecv, us(40)); // expected ~300 µs gap
        let ann = rt.finish(SimDuration::ZERO);
        assert!(ann.stats.timing_mispredictions >= 1);
        let max_pen = ann.penalty.iter().max().copied().unwrap();
        assert!(max_pen > SimDuration::ZERO);
        assert!(max_pen <= us(10), "stall capped at T_react");
    }

    #[test]
    fn diverging_call_stream_falls_back_and_rearms() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 8, 300);
        assert!(rt.predicting());
        // Inject a foreign call: pattern break.
        rt.intercept(ibp_trace::MpiCall::Barrier, us(300));
        assert!(!rt.predicting(), "must fall back to learning");
        // Resume the pattern; a detected pattern re-arms on first sighting.
        feed_alya(&mut rt, 3, 300);
        assert!(rt.predicting(), "detected pattern should re-arm quickly");
        let ann = rt.finish(SimDuration::ZERO);
        assert_eq!(ann.stats.pattern_mispredictions, 1);
        assert!(ann.stats.rearms >= 1);
    }

    #[test]
    fn ppa_overhead_only_during_learning() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 30, 300);
        let ann = rt.finish(SimDuration::ZERO);
        // PPA ran on a small share of calls (learning prefix only).
        assert!(ann.stats.ppa_invocation_pct() < 25.0);
        assert!(ann.stats.ppa_invoked_calls > 0);
        // Every event carries at least the interception overhead.
        assert!(ann.overhead.iter().all(|o| *o >= us(1)));
    }

    #[test]
    fn low_power_time_accumulates() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 40, 500);
        let ann = rt.finish(SimDuration::ZERO);
        assert!(ann.stats.low_power_time > SimDuration::ZERO);
        let frac = ann.stats.low_power_fraction();
        assert!(frac > 0.3 && frac < 1.0, "fraction {frac}");
        let est = ann.stats.est_power_saving_pct(0.43);
        assert!(est > 15.0 && est < 57.0, "estimate {est}");
    }

    #[test]
    fn annotate_rank_matches_manual_loop() {
        use ibp_trace::{MpiOp, TraceBuilder};
        let mut b = TraceBuilder::new("alya-like", 1);
        for it in 0..10 {
            let lead = if it == 0 { us(0) } else { us(300) };
            b.compute(0, lead);
            b.op(0, MpiOp::Sendrecv { to: 0, send_bytes: 1, from: 0, recv_bytes: 1 });
            b.compute(0, us(2));
            b.op(0, MpiOp::Sendrecv { to: 0, send_bytes: 1, from: 0, recv_bytes: 1 });
            b.compute(0, us(3));
            b.op(0, MpiOp::Sendrecv { to: 0, send_bytes: 1, from: 0, recv_bytes: 1 });
            b.compute(0, us(300));
            b.op(0, MpiOp::Allreduce { bytes: 8 });
            b.compute(0, us(300));
            b.op(0, MpiOp::Allreduce { bytes: 8 });
        }
        let trace = b.build();
        let ann = annotate_rank(&trace.ranks[0], &cfg());
        assert_eq!(ann.overhead.len(), trace.ranks[0].call_count());
        assert_eq!(ann.penalty.len(), trace.ranks[0].call_count());
        assert!(ann.stats.correct_calls > 0);

        let mut rt = RankRuntime::new(0, cfg());
        for (call, gap) in trace.ranks[0].call_stream() {
            rt.intercept(call, gap);
        }
        let manual = rt.finish(trace.ranks[0].final_compute);
        assert_eq!(ann, manual);
    }

    fn resilient_cfg() -> PowerConfig {
        cfg().with_resilience(crate::config::ResilienceConfig::standard())
    }

    /// Alternate two incompatible periodic patterns so every declaration
    /// is broken shortly after it arms: a misprediction storm.
    fn feed_storm(rt: &mut RankRuntime, rounds: usize) {
        use ibp_trace::MpiCall::{Barrier, Bcast};
        for round in 0..rounds {
            feed_alya(rt, 4, 300);
            // Foreign tail that breaks whatever was declared.
            for _ in 0..2 {
                rt.intercept(Barrier, us(300));
                rt.intercept(Bcast, us(round as u64 % 7 + 25));
            }
        }
    }

    #[test]
    fn disabled_resilience_is_bit_identical_to_paper() {
        let run = |c: PowerConfig| {
            let mut rt = RankRuntime::new(0, c);
            feed_storm(&mut rt, 10);
            feed_alya(&mut rt, 20, 300);
            rt.finish(SimDuration::ZERO)
        };
        let paper = run(cfg());
        let with_disabled = run(cfg().with_resilience(Default::default()));
        assert_eq!(paper, with_disabled);
    }

    #[test]
    fn storm_triggers_exponential_holdoff() {
        let mut rt = RankRuntime::new(0, resilient_cfg());
        feed_storm(&mut rt, 30);
        let holding = rt.holdoff_active();
        let ann = rt.finish(SimDuration::ZERO);
        assert!(
            ann.stats.storms >= 1,
            "storm not detected: {:?}",
            ann.stats
        );
        assert!(ann.stats.holdoff_calls > 0 || holding);
        // The unguarded runtime keeps mispredicting; the hold-off must
        // cut the misprediction count.
        let mut raw = RankRuntime::new(0, cfg());
        feed_storm(&mut raw, 30);
        let raw_ann = raw.finish(SimDuration::ZERO);
        assert!(
            ann.stats.pattern_mispredictions < raw_ann.stats.pattern_mispredictions,
            "backoff should reduce mispredictions: {} vs {}",
            ann.stats.pattern_mispredictions,
            raw_ann.stats.pattern_mispredictions
        );
    }

    #[test]
    fn prediction_rearms_after_holdoff_expires() {
        let mut rt = RankRuntime::new(0, resilient_cfg());
        feed_storm(&mut rt, 30);
        // A long stable run: the hold-off (≤ max 6400 calls) drains and
        // the clean pattern re-arms.
        feed_alya(&mut rt, 2000, 300);
        assert!(rt.predicting(), "prediction must come back after backoff");
        let ann = rt.finish(SimDuration::ZERO);
        assert!(ann.stats.lane_off_count > 0);
    }

    #[test]
    fn guard_band_widens_on_late_wakes_and_decays() {
        let mut rt = RankRuntime::new(0, resilient_cfg());
        feed_alya(&mut rt, 8, 300);
        assert!(rt.predicting());
        assert_eq!(rt.guard_band(), 0.0);
        // Early arrival → late wake-up → guard widens.
        rt.intercept(Sendrecv, us(40));
        // That was also a timing mispredict; pattern may have fallen
        // back. Re-learn, then check the guard decays on clean wakes.
        let after_miss = rt.guard_band();
        assert!(after_miss > 0.0, "guard should widen after a late wake");
        feed_alya(&mut rt, 40, 300);
        assert!(
            rt.guard_band() < after_miss,
            "guard should decay on clean wakes: {} -> {}",
            after_miss,
            rt.guard_band()
        );
    }

    #[test]
    fn guarded_timers_are_more_conservative() {
        // Same pattern; a widened guard must shorten issued timers.
        let c = resilient_cfg();
        let mut rt = RankRuntime::new(0, c);
        feed_alya(&mut rt, 8, 300);
        rt.intercept(Sendrecv, us(40)); // widen the guard
        feed_alya(&mut rt, 8, 300);
        let ann = rt.finish(SimDuration::ZERO);

        let mut plain = RankRuntime::new(0, cfg());
        feed_alya(&mut plain, 8, 300);
        plain.intercept(Sendrecv, us(40));
        feed_alya(&mut plain, 8, 300);
        let plain_ann = plain.finish(SimDuration::ZERO);

        // Compare the last directive of each (issued post-widening with
        // the same predicted idle).
        let g = ann.directives.last().expect("guarded directives");
        let p = plain_ann.directives.last().expect("plain directives");
        assert!(
            g.timer < p.timer,
            "guarded timer {} not shorter than plain {}",
            g.timer,
            p.timer
        );
    }

    #[test]
    fn budget_guard_suppresses_directives() {
        // A tiny budget: the ~1 µs/call interception overhead over 300 µs
        // gaps is ~0.33%, so a 0.01% budget is immediately exhausted.
        let c = cfg().with_resilience(crate::config::ResilienceConfig::with_budget(0.0001));
        let mut rt = RankRuntime::new(0, c);
        feed_alya(&mut rt, 40, 300);
        let ann = rt.finish(SimDuration::ZERO);
        assert_eq!(ann.stats.lane_off_count, 0, "budget must block sleeps");
        assert!(ann.stats.suppressed_directives > 0);
        // Added time stays bounded: no stalls were ever risked.
        assert_eq!(ann.stats.total_penalty, SimDuration::ZERO);
    }

    /// The Alya stream as a flat event list, for splitting tests.
    fn alya_events(iters: usize, long_gap: u64) -> Vec<(MpiCall, SimDuration)> {
        let mut v = Vec::new();
        for it in 0..iters {
            let lead = if it == 0 { us(0) } else { us(long_gap) };
            v.push((Sendrecv, lead));
            v.push((Sendrecv, us(2)));
            v.push((Sendrecv, us(3)));
            v.push((Allreduce, us(long_gap)));
            v.push((Allreduce, us(long_gap)));
        }
        v
    }

    /// Stream `events` with a snapshot/restore break after `split`
    /// events; outputs (pre-break ++ post-break) must equal an unbroken
    /// run exactly.
    fn assert_split_parity(c: PowerConfig, events: &[(MpiCall, SimDuration)], split: usize) {
        let mut whole = RankRuntime::new(0, c.clone());
        whole.intercept_batch(events);
        let whole_ann = whole.finish(us(5));

        let mut first = RankRuntime::new(0, c);
        first.intercept_batch(&events[..split]);
        let pre: Vec<LaneDirective> = first.directives().to_vec();
        let snap = first.snapshot();
        // Round-trip through the JSON wire form, as ibp-serve does.
        let snap = RuntimeSnapshot::from_json_bytes(&snap.to_json_bytes()).expect("wire form");
        let mut second = RankRuntime::from_snapshot(&snap).expect("restore");
        second.intercept_batch(&events[split..]);
        let ann = second.finish(us(5));

        let mut directives = pre;
        directives.extend_from_slice(&ann.directives);
        assert_eq!(directives, whole_ann.directives, "split at {split}");
        assert_eq!(ann.stats, whole_ann.stats, "split at {split}");
    }

    #[test]
    fn snapshot_restore_is_transparent_at_every_phase() {
        let events = alya_events(12, 300);
        // Splits inside learning, right at declaration, mid-prediction,
        // and inside a gram.
        for split in [1, 7, 20, 21, 33, 47, events.len() - 1] {
            assert_split_parity(cfg(), &events, split);
        }
    }

    #[test]
    fn snapshot_restore_preserves_resilience_state() {
        let mut events = alya_events(8, 300);
        events.push((Sendrecv, us(40))); // timing mispredict → guard band
        events.extend(alya_events(8, 300).into_iter().skip(1));
        for split in [38, 41, 44] {
            assert_split_parity(resilient_cfg(), &events, split);
        }
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 8, 300);
        let good = rt.snapshot();

        let mut bad = good.clone();
        bad.version = 99;
        assert!(matches!(
            RankRuntime::from_snapshot(&bad),
            Err(SnapshotError::VersionMismatch { found: 99, .. })
        ));

        let mut bad = good.clone();
        bad.gram_ids.push(10_000);
        assert!(RankRuntime::from_snapshot(&bad).is_err());

        let mut bad = good.clone();
        bad.ppa.detected.push((9_999, 7));
        assert!(matches!(
            RankRuntime::from_snapshot(&bad),
            Err(SnapshotError::DanglingId { what: "pattern", .. })
        ));

        let mut bad = good.clone();
        if let ModeSnapshot::Predicting { slot, .. } = &mut bad.mode {
            *slot = 1_000;
            assert!(RankRuntime::from_snapshot(&bad).is_err());
        } else {
            panic!("runtime should be predicting after 8 iterations");
        }

        // The untouched snapshot still restores.
        assert!(RankRuntime::from_snapshot(&good).is_ok());
    }

    #[test]
    fn restore_rejects_hostile_configs_and_guards() {
        // A snapshot's embedded config gets the same scrutiny an Open
        // does: out-of-range values must fail restore instead of
        // asserting later inside `SimDuration::mul_f64` when the
        // restored runtime plans a directive.
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 8, 300);
        let good = rt.snapshot();

        for bad_disp in [-0.5, 1.0, 1.5, f64::NAN] {
            let mut bad = good.clone();
            bad.cfg.displacement = bad_disp;
            assert!(
                matches!(
                    RankRuntime::from_snapshot(&bad),
                    Err(SnapshotError::Inconsistent(_))
                ),
                "displacement {bad_disp} restored"
            );
        }

        let mut bad = good.clone();
        bad.cfg.grouping_threshold = SimDuration::from_ns(1);
        assert!(RankRuntime::from_snapshot(&bad).is_err());

        let mut bad = good.clone();
        bad.cfg.resilience = crate::ResilienceConfig {
            guard_step: f64::NAN,
            ..crate::ResilienceConfig::standard()
        };
        assert!(RankRuntime::from_snapshot(&bad).is_err());

        for bad_guard in [-0.1, f64::NAN, f64::INFINITY] {
            let mut bad = good.clone();
            bad.resilience.guard = bad_guard;
            assert!(
                matches!(
                    RankRuntime::from_snapshot(&bad),
                    Err(SnapshotError::Inconsistent(_))
                ),
                "guard {bad_guard} restored"
            );
        }
    }

    #[test]
    fn intercept_batch_matches_loop() {
        let events = alya_events(10, 300);
        let mut a = RankRuntime::new(0, cfg());
        a.intercept_batch(&events);
        let mut b = RankRuntime::new(0, cfg());
        for &(call, gap) in &events {
            b.intercept(call, gap);
        }
        assert_eq!(a.finish(us(0)), b.finish(us(0)));
    }

    #[test]
    fn directive_after_event_points_at_gram_last_call() {
        let mut rt = RankRuntime::new(0, cfg());
        feed_alya(&mut rt, 10, 300);
        let ann = rt.finish(SimDuration::ZERO);
        // Every directive is anchored to a valid event index.
        for d in &ann.directives {
            assert!(d.after_event < ann.overhead.len());
        }
        // Directives are strictly ordered by event.
        for w in ann.directives.windows(2) {
            assert!(w[0].after_event < w[1].after_event);
        }
    }
}
