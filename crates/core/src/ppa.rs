//! The Pattern Prediction Algorithm (PPA) — Algorithm 2 of the paper.
//!
//! The PPA scans the (growing) array of grams produced by gram formation
//! and looks for *continuously repeating* patterns. Its observable policy,
//! validated against the paper's Fig. 3 walk-through:
//!
//! 1. Bi-grams (pairs of grams) are read left to right and inserted into
//!    the pattern list.
//! 2. When a bi-gram re-appears, the scanner locks onto that position and
//!    tries to *grow* the pattern one gram at a time. A growth step is
//!    accepted only if the grown pattern can also be constructed at a
//!    previous occurrence of its prefix (`checkO`); otherwise the grown
//!    candidate is discarded and scanning resumes with bi-grams.
//! 3. After a candidate stops growing, consecutive repetitions are
//!    counted. Once the pattern has appeared at `min_consecutive`
//!    consecutive positions (3 in the paper), it is **declared**: the
//!    `detected` flag is set, `maxPatternSize` is frozen to the declared
//!    length (pinning the application's natural iteration), and
//!    prediction begins at the next position.
//! 4. A pattern that was declared once re-arms on its *first*
//!    re-appearance after a misprediction — no need for three consecutive
//!    sightings again.
//!
//! ## Hot-path shape
//!
//! `advance` runs inside the PMPI interception path, so it is written to
//! do O(1) work per newly closed gram without heap allocation: pattern
//! keys are probed as borrowed gram-array slices against the FxHash
//! interner (no `Box` per lookup), the re-arm check probes one
//! array-suffix per *distinct detected pattern length* instead of
//! linearly scanning every detected key, and `checkO` walks a bounded
//! occurrence window rather than the full occurrence history.
//!
//! For the Fig. 2 Alya stream (grams `A B B A B B …`, `A = 41-41-41`,
//! `B = 10`) this declares `A,B,B` with occurrences {3, 6, 9} and starts
//! predicting from gram position 12, exactly as printed in Fig. 3.

use crate::gram::GramId;
use crate::pattern::{PatternId, PatternList, RunningMean, DEFAULT_OCCURRENCE_WINDOW};
use crate::snapshot::{PhaseSnapshot, PpaSnapshot, SnapshotError};
use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

/// The outcome of a PPA declaration: prediction may start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// The declared pattern (gram shape-id sequence).
    pub pattern: Box<[GramId]>,
    /// Gram position from which occurrences are predicted (the position
    /// immediately after the last observed occurrence).
    pub predict_from: usize,
    /// True when this declaration re-armed a previously detected pattern
    /// (single sighting) rather than completing a fresh 3-repeat proof.
    pub rearmed: bool,
}

/// Scanner phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    /// Sliding over bi-grams looking for a repeat.
    Seek,
    /// Locked on a candidate at `pos`; growing it and counting
    /// consecutive repeats.
    Track {
        /// Number of consecutive repeats observed so far.
        consecutive: u32,
    },
}

/// Counters describing how much work the PPA has done — inputs to the
/// Table IV overhead model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PpaWork {
    /// Number of `advance` calls that made progress (PPA invocations).
    pub invocations: u64,
    /// Gram elements examined across all invocations (comparisons,
    /// hash-key constructions).
    pub elements: u64,
}

/// The PPA state machine for one MPI process.
#[derive(Debug)]
pub struct Ppa {
    pl: PatternList,
    pos: usize,
    pattern_size: usize,
    phase: Phase,
    min_consecutive: u32,
    max_pattern_size: usize,
    /// Set once a pattern has been declared; freezes `max_pattern_size`.
    frozen: bool,
    /// Declaration order of every pattern ever declared, keyed by its
    /// interned id. After a misprediction these re-arm on a *single*
    /// re-appearance; ties between matching suffixes go to the most
    /// recently first-declared pattern (the old list's `rposition`).
    detected_order: FxHashMap<PatternId, u32>,
    /// Distinct lengths among detected patterns — the re-arm check probes
    /// one gram-array suffix per length (length-bucketed suffix index)
    /// instead of scanning every detected key.
    detected_lens: Vec<usize>,
    next_detected_order: u32,
    /// First gram position that counts as "fresh" for the re-arm check:
    /// a re-appearance must consist entirely of grams observed after the
    /// last declaration or relaunch.
    min_fresh: usize,
    work: PpaWork,
    /// Work done by the most recent `advance` call (for per-call overhead
    /// attribution).
    last_elements: u64,
}

impl Ppa {
    /// Create a scanner with the given declaration policy and the default
    /// occurrence-window bound.
    #[must_use]
    pub fn new(min_consecutive: u32, max_pattern_size: usize) -> Self {
        Self::with_window(min_consecutive, max_pattern_size, DEFAULT_OCCURRENCE_WINDOW)
    }

    /// Create a scanner whose pattern entries retain at most `window`
    /// occurrence positions (bounds `checkO` to O(window)).
    #[must_use]
    pub fn with_window(min_consecutive: u32, max_pattern_size: usize, window: usize) -> Self {
        assert!(min_consecutive >= 2, "need at least 2 consecutive repeats");
        assert!(max_pattern_size >= 2, "patterns are at least bi-grams");
        Ppa {
            pl: PatternList::with_window(window),
            pos: 0,
            pattern_size: 2,
            phase: Phase::Seek,
            min_consecutive,
            max_pattern_size,
            frozen: false,
            detected_order: FxHashMap::default(),
            detected_lens: Vec::new(),
            next_detected_order: 0,
            min_fresh: 0,
            work: PpaWork::default(),
            last_elements: 0,
        }
    }

    /// The pattern list (exposed for statistics and for the runtime to
    /// seed/refresh slot-gap means).
    #[must_use]
    pub fn pattern_list(&self) -> &PatternList {
        &self.pl
    }

    /// Mutable access to the pattern list (the runtime updates slot-gap
    /// means while predicting).
    pub fn pattern_list_mut(&mut self) -> &mut PatternList {
        &mut self.pl
    }

    /// Cumulative work counters.
    #[must_use]
    pub fn work(&self) -> PpaWork {
        self.work
    }

    /// Gram elements examined by the most recent `advance` call.
    #[must_use]
    pub fn last_elements(&self) -> u64 {
        self.last_elements
    }

    /// Snapshot the complete scanner state. The detected-order map is
    /// flattened to a vector sorted by pattern id so the serialized form
    /// is deterministic.
    pub(crate) fn snapshot(&self) -> PpaSnapshot {
        let mut detected: Vec<(PatternId, u32)> =
            self.detected_order.iter().map(|(&k, &v)| (k, v)).collect();
        detected.sort_unstable();
        PpaSnapshot {
            pattern_list: self.pl.snapshot(),
            pos: self.pos,
            pattern_size: self.pattern_size,
            phase: match self.phase {
                Phase::Seek => PhaseSnapshot::Seek,
                Phase::Track { consecutive } => PhaseSnapshot::Track { consecutive },
            },
            min_consecutive: self.min_consecutive,
            max_pattern_size: self.max_pattern_size,
            frozen: self.frozen,
            detected,
            detected_lens: self.detected_lens.clone(),
            next_detected_order: self.next_detected_order,
            min_fresh: self.min_fresh,
            work: self.work,
            last_elements: self.last_elements,
        }
    }

    /// Rebuild a scanner from a snapshot, revalidating the declaration
    /// policy and every pattern id the detected index references.
    pub(crate) fn from_snapshot(snap: &PpaSnapshot) -> Result<Self, SnapshotError> {
        if snap.min_consecutive < 2 || snap.max_pattern_size < 2 || snap.pattern_size < 2 {
            return Err(SnapshotError::Inconsistent(format!(
                "PPA policy out of range: min_consecutive {}, max_pattern_size {}, pattern_size {}",
                snap.min_consecutive, snap.max_pattern_size, snap.pattern_size
            )));
        }
        let pl = PatternList::from_snapshot(&snap.pattern_list)?;
        let nkeys = snap.pattern_list.keys.len();
        let mut detected_order = FxHashMap::default();
        for &(id, ord) in &snap.detected {
            if id as usize >= nkeys {
                return Err(SnapshotError::DanglingId {
                    what: "pattern",
                    id: u64::from(id),
                    len: nkeys,
                });
            }
            if detected_order.insert(id, ord).is_some() {
                return Err(SnapshotError::Inconsistent(format!(
                    "pattern id {id} listed twice in detected index"
                )));
            }
        }
        Ok(Ppa {
            pl,
            pos: snap.pos,
            pattern_size: snap.pattern_size,
            phase: match snap.phase {
                PhaseSnapshot::Seek => Phase::Seek,
                PhaseSnapshot::Track { consecutive } => Phase::Track { consecutive },
            },
            min_consecutive: snap.min_consecutive,
            max_pattern_size: snap.max_pattern_size,
            frozen: snap.frozen,
            detected_order,
            detected_lens: snap.detected_lens.clone(),
            next_detected_order: snap.next_detected_order,
            min_fresh: snap.min_fresh,
            work: snap.work,
            last_elements: snap.last_elements,
        })
    }

    /// Restart scanning from gram position `from` after a misprediction.
    /// The pattern list (with its `detected` flags) is retained, so a
    /// re-appearing pattern re-arms on first sighting.
    pub fn relaunch(&mut self, from: usize) {
        self.pos = self.pos.max(from);
        self.min_fresh = self.min_fresh.max(from);
        self.pattern_size = 2;
        self.phase = Phase::Seek;
    }

    /// Advance the scan over the gram array (shape ids). Call after each
    /// newly closed gram. Returns a [`Declaration`] when a pattern becomes
    /// predictable.
    pub fn advance(&mut self, grams: &[GramId]) -> Option<Declaration> {
        self.last_elements = 0;
        let mut progressed = false;
        // Fast re-arm: a previously declared pattern re-appears once. The
        // paper: "if the pattern is mispredicted and in near future the
        // same pattern appears again we don't wait for three consecutive
        // appearances but declare on the first new appearance". Checked
        // against the newly-closed suffix of the gram array so rotated
        // re-alignments cannot hide the pattern from the scanner.
        if let Some(decl) = self.check_rearm(grams, &mut progressed) {
            if progressed {
                self.work.invocations += 1;
                self.work.elements += self.last_elements;
            }
            return Some(decl);
        }
        let result = self.scan(grams, &mut progressed);
        if progressed {
            self.work.invocations += 1;
            self.work.elements += self.last_elements;
        }
        result
    }

    fn check_rearm(&mut self, grams: &[GramId], progressed: &mut bool) -> Option<Declaration> {
        if self.detected_order.is_empty() {
            return None;
        }
        // The suffix must be entirely fresh material (observed after the
        // last declaration or relaunch). One interner probe per distinct
        // detected length; among matches the latest-declared wins,
        // preserving the old linear list's newest-last `rposition`.
        let n = grams.len();
        let min_fresh = self.min_fresh;
        let mut best: Option<(u32, PatternId, usize)> = None;
        for &len in &self.detected_lens {
            if n >= len && n - len >= min_fresh {
                if let Some(id) = self.pl.id_of(&grams[n - len..]) {
                    if let Some(&ord) = self.detected_order.get(&id) {
                        if best.is_none_or(|(b, _, _)| ord > b) {
                            best = Some((ord, id, len));
                        }
                    }
                }
            }
        }
        let (_, id, len) = best?;
        *progressed = true;
        self.last_elements += len as u64;
        let pattern: Box<[GramId]> = self.pl.key(id).into();
        let predict_from = n;
        let _ = self.pl.record(id, predict_from - len);
        self.after_declaration(predict_from);
        Some(Declaration {
            pattern,
            predict_from,
            rearmed: true,
        })
    }

    fn scan(&mut self, grams: &[GramId], progressed: &mut bool) -> Option<Declaration> {
        loop {
            match self.phase {
                Phase::Seek => {
                    // Need the bi-gram at `pos`.
                    if self.pos + 2 > grams.len() {
                        return None;
                    }
                    *progressed = true;
                    self.last_elements += 2;
                    let key = &grams[self.pos..self.pos + 2];
                    let up = self.pl.update(key, self.pos);
                    if up.detected {
                        // Fast re-arm: a previously declared (bi-gram)
                        // pattern re-appeared once.
                        let pattern: Box<[GramId]> = key.into();
                        let predict_from = self.pos + 2;
                        self.after_declaration(predict_from);
                        return Some(Declaration {
                            pattern,
                            predict_from,
                            rearmed: true,
                        });
                    }
                    if !up.is_new {
                        // Bi-gram match detected: lock on and try to grow.
                        self.pattern_size = 2;
                        self.phase = Phase::Track { consecutive: 0 };
                    } else {
                        self.pos += 1;
                    }
                }
                Phase::Track { consecutive } => {
                    let size = self.pattern_size;
                    // Need the window at pos and the candidate repeat
                    // window right after it.
                    if self.pos + 2 * size > grams.len() {
                        return None;
                    }
                    *progressed = true;
                    self.last_elements += 2 * size as u64;
                    let (cur, rest) = grams[self.pos..].split_at(size);
                    if &rest[..size] == cur {
                        // Consecutive repeat found.
                        let repeats = consecutive + 1;
                        let repeat_pos = self.pos + size;
                        let up = self.pl.update(cur, repeat_pos);
                        self.pos = repeat_pos;
                        let detected = up.detected;
                        if repeats + 1 >= self.min_consecutive || detected {
                            // Declared: `min_consecutive` consecutive
                            // occurrences observed (start + repeats), or a
                            // previously detected pattern re-armed.
                            let pattern: Box<[GramId]> = cur.into();
                            let predict_from = self.pos + size;
                            self.pl
                                .entry_mut(up.id)
                                .expect("pattern present")
                                .detected = true;
                            self.register_detected(up.id, size);
                            if !self.frozen {
                                self.max_pattern_size = size;
                                self.frozen = true;
                            }
                            self.after_declaration(predict_from);
                            return Some(Declaration {
                                pattern,
                                predict_from,
                                rearmed: detected,
                            });
                        }
                        self.phase = Phase::Track {
                            consecutive: repeats,
                        };
                    } else if consecutive > 0 {
                        // The run of repeats ended before reaching the
                        // threshold; resume seeking after the run.
                        self.pattern_size = 2;
                        self.pos += 1;
                        self.phase = Phase::Seek;
                    } else {
                        // No immediate repeat: try to grow the pattern.
                        if size < self.max_pattern_size && self.try_grow(grams) {
                            // Grown (checkO succeeded). If the grown
                            // pattern was previously declared, re-arm now.
                            let grown = &grams[self.pos..self.pos + self.pattern_size];
                            if self.pl.get(grown).is_some_and(|e| e.detected) {
                                let pattern: Box<[GramId]> = grown.into();
                                let predict_from = self.pos + self.pattern_size;
                                self.after_declaration(predict_from);
                                return Some(Declaration {
                                    pattern,
                                    predict_from,
                                    rearmed: true,
                                });
                            }
                            self.phase = Phase::Track { consecutive: 0 };
                        } else {
                            // Growth impossible or rejected: discard and
                            // resume bi-gram seeking one position on.
                            self.pattern_size = 2;
                            self.pos += 1;
                            self.phase = Phase::Seek;
                        }
                    }
                }
            }
        }
    }

    /// Enter `id` into the detected suffix index (first declaration only:
    /// re-declarations keep their original order, as the old newest-last
    /// key list did).
    fn register_detected(&mut self, id: PatternId, len: usize) {
        if let std::collections::hash_map::Entry::Vacant(v) = self.detected_order.entry(id) {
            v.insert(self.next_detected_order);
            self.next_detected_order += 1;
            if !self.detected_lens.contains(&len) {
                self.detected_lens.push(len);
            }
        }
    }

    /// Attempt to grow the candidate at `pos` from `pattern_size` to
    /// `pattern_size + 1` grams. Implements the paper's `appendGram` +
    /// `checkO`: the grown pattern is kept only if it can also be
    /// constructed at a previous occurrence of its prefix. Returns whether
    /// growth succeeded (and bumps `pattern_size` if so).
    fn try_grow(&mut self, grams: &[GramId]) -> bool {
        let size = self.pattern_size;
        if self.pos + size + 1 > grams.len() {
            return false;
        }
        let prefix = &grams[self.pos..self.pos + size];
        let grown = &grams[self.pos..self.pos + size + 1];
        self.last_elements += (size + 1) as u64;

        // checkO: find a previous, non-overlapping occurrence of the
        // prefix that extends to the same grown pattern. The occurrence
        // window bounds this scan to O(window).
        let constructible = self.pl.get(prefix).is_some_and(|entry| {
            entry.occurrences.iter().any(|q| {
                q + size <= self.pos && q + size < grams.len() && grams[q..q + size + 1] == *grown
            })
        });

        if constructible {
            // Frequency transfer: the grown pattern absorbs the occurrence;
            // (the paper increments the (n+1)-gram and decrements the
            // n-gram — we record the grown occurrence at `pos`).
            let _ = self.pl.update(grown, self.pos);
            self.pattern_size = size + 1;
            true
        } else {
            // Algorithm 2 line 38: discard the failed candidate if it was
            // speculatively inserted (we never inserted it, so this is a
            // no-op kept for parity with the paper).
            self.pl.remove(grown);
            false
        }
    }

    /// Reset scan state after a declaration so that a later `relaunch`
    /// resumes cleanly past the declared region.
    fn after_declaration(&mut self, predict_from: usize) {
        self.pos = predict_from;
        self.min_fresh = predict_from;
        self.pattern_size = 2;
        self.phase = Phase::Seek;
    }
}

/// Compute per-slot idle-gap running means for a declared pattern from its
/// observed occurrences (used to seed the power controller's timers).
///
/// `slot_gap(j)` is the idle preceding the pattern's j-th gram; for each
/// occurrence position `p` in `occurrences`, the gap of gram `p + j` is
/// accumulated. Out-of-range grams (occurrence at the array edge) are
/// skipped.
pub fn seed_slot_gaps(
    occurrences: impl IntoIterator<Item = usize>,
    pattern_len: usize,
    gap_of: impl Fn(usize) -> Option<ibp_simcore::SimDuration>,
) -> Vec<RunningMean> {
    let mut slots = vec![RunningMean::new(); pattern_len];
    for p in occurrences {
        for (j, slot) in slots.iter_mut().enumerate() {
            if let Some(gap) = gap_of(p + j) {
                slot.push(gap);
            }
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shape ids: A = 0 (the `41-41-41` gram), B = 1 (the `10` gram).
    const A: GramId = 0;
    const B: GramId = 1;

    /// The Fig. 2/Fig. 3 gram stream: A B B repeated.
    fn alya_grams(n: usize) -> Vec<GramId> {
        (0..n).map(|i| if i % 3 == 0 { A } else { B }).collect()
    }

    /// Feed grams one at a time, as the online pipeline does, returning
    /// the first declaration and the gram count at which it fired.
    fn feed_until_declaration(grams: &[GramId], ppa: &mut Ppa) -> Option<(Declaration, usize)> {
        for n in 1..=grams.len() {
            if let Some(d) = ppa.advance(&grams[..n]) {
                return Some((d, n));
            }
        }
        None
    }

    #[test]
    fn fig3_walkthrough_declares_abb_from_position_12() {
        let grams = alya_grams(18);
        let mut ppa = Ppa::new(3, 64);
        let (decl, at) = feed_until_declaration(&grams, &mut ppa).expect("must declare");
        // Fig. 3: pattern "41-41-41,10,10" = (A,B,B); predicted from
        // gram position 12; declared once gram 11 is available.
        assert_eq!(&*decl.pattern, &[A, B, B]);
        assert_eq!(decl.predict_from, 12);
        assert!(!decl.rearmed);
        assert_eq!(at, 12, "declaration needs grams 0..=11");
        // Fig. 3 insertion table: occurrences {3, 6, 9}, frequency 3.
        let entry = ppa.pattern_list().get(&[A, B, B]).unwrap();
        assert_eq!(entry.occurrences.to_vec(), vec![3, 6, 9]);
        assert!(entry.detected);
    }

    #[test]
    fn fig3_bigram_bookkeeping() {
        let grams = alya_grams(18);
        let mut ppa = Ppa::new(3, 64);
        let _ = feed_until_declaration(&grams, &mut ppa);
        // The seed bi-grams of Fig. 3's insertion table are present.
        let ab = ppa.pattern_list().get(&[A, B]).unwrap();
        assert!(ab.occurrences.contains(0));
        assert!(ab.occurrences.contains(3));
        assert!(ppa.pattern_list().get(&[B, B]).is_some());
        assert!(ppa.pattern_list().get(&[B, A]).is_some());
    }

    #[test]
    fn rearm_after_relaunch_is_immediate() {
        let grams = alya_grams(30);
        let mut ppa = Ppa::new(3, 64);
        let (first, _) = feed_until_declaration(&grams, &mut ppa).unwrap();
        assert_eq!(first.predict_from, 12);

        // Simulate a misprediction at gram 15; scanning relaunches there.
        ppa.relaunch(15);
        // Feed grams one at a time, as the online pipeline does; the
        // detected (A,B,B) must re-arm on its first complete re-sighting,
        // not after three repeats.
        let mut fired = None;
        for n in 16..=grams.len() {
            if let Some(d) = ppa.advance(&grams[..n]) {
                fired = Some(d);
                break;
            }
        }
        let d = fired.expect("re-arm expected");
        assert_eq!(&*d.pattern, &[A, B, B]);
        assert!(d.rearmed);
        // Re-arm must happen at the first complete fresh occurrence
        // (grams 15..18 → predict_from 18), far earlier than three full
        // repeats (15 + 3*3 = 24) would allow.
        assert_eq!(d.predict_from, 18);
    }

    #[test]
    fn no_declaration_without_three_consecutive_repeats() {
        // A B B A B B — only two occurrences of (A,B,B).
        let grams = alya_grams(6);
        let mut ppa = Ppa::new(3, 64);
        assert!(feed_until_declaration(&grams, &mut ppa).is_none());
    }

    #[test]
    fn aperiodic_stream_never_declares() {
        // Distinct gram ids: nothing ever repeats.
        let grams: Vec<GramId> = (0..50).collect();
        let mut ppa = Ppa::new(3, 64);
        assert!(feed_until_declaration(&grams, &mut ppa).is_none());
        // But the pattern list has been filling with unique bi-grams.
        assert!(ppa.pattern_list().len() >= 48);
    }

    #[test]
    fn period_one_stream_declares_bigram() {
        // B B B B B … : the bi-gram (B,B) repeats consecutively.
        let grams = vec![B; 10];
        let mut ppa = Ppa::new(3, 64);
        let (d, _) = feed_until_declaration(&grams, &mut ppa).expect("declare");
        assert_eq!(&*d.pattern, &[B, B]);
    }

    #[test]
    fn long_period_pattern_declares() {
        // Period-4 pattern: A B A B B? no — use distinct: 0 1 2 3 repeated.
        let base = [0u32, 1, 2, 3];
        let grams: Vec<GramId> = (0..40).map(|i| base[i % 4]).collect();
        let mut ppa = Ppa::new(3, 64);
        let (d, _) = feed_until_declaration(&grams, &mut ppa).expect("declare");
        assert_eq!(d.pattern.len(), 4, "pattern {:?}", d.pattern);
        // The declared pattern is a rotation of the base period.
        let doubled: Vec<GramId> = base.iter().chain(base.iter()).copied().collect();
        assert!(
            doubled.windows(4).any(|w| w == &*d.pattern),
            "declared pattern {:?} is not a rotation of {:?}",
            d.pattern,
            base
        );
    }

    #[test]
    fn max_pattern_size_freezes_after_declaration() {
        let grams = alya_grams(18);
        let mut ppa = Ppa::new(3, 64);
        let _ = feed_until_declaration(&grams, &mut ppa).unwrap();
        assert!(ppa.frozen);
        assert_eq!(ppa.max_pattern_size, 3);
    }

    #[test]
    fn work_counters_accumulate() {
        let grams = alya_grams(18);
        let mut ppa = Ppa::new(3, 64);
        let _ = feed_until_declaration(&grams, &mut ppa);
        let w = ppa.work();
        assert!(w.invocations > 0);
        assert!(w.elements >= w.invocations, "each invocation examines >= 1 element");
    }

    #[test]
    fn seed_slot_gaps_averages_occurrences() {
        use ibp_simcore::SimDuration;
        // Gaps: gram i has gap 100 + i µs.
        let gap_of =
            |i: usize| (i < 12).then(|| SimDuration::from_us(100 + i as u64));
        let slots = seed_slot_gaps([3, 6, 9], 3, gap_of);
        // Slot 0: gaps of grams 3, 6, 9 → mean 106 µs.
        assert_eq!(slots[0].mean(), SimDuration::from_us(106));
        // Slot 2: grams 5, 8, 11 → mean 108 µs.
        assert_eq!(slots[2].mean(), SimDuration::from_us(108));
        assert_eq!(slots[0].count(), 3);
    }

    #[test]
    fn noise_between_repeats_still_declares_eventually() {
        // Pattern with occasional noise grams; consecutive runs of 3+
        // exist after the noise.
        let mut grams = Vec::new();
        for block in 0..4 {
            if block == 1 {
                grams.push(99); // noise gram breaks the run
            }
            for _ in 0..4 {
                grams.extend_from_slice(&[A, B, B]);
            }
        }
        let mut ppa = Ppa::new(3, 64);
        let (d, _) = feed_until_declaration(&grams, &mut ppa).expect("declare");
        assert_eq!(d.pattern.len(), 3);
    }

    #[test]
    fn tiny_occurrence_window_still_follows_fig3() {
        // Even a 2-deep window retains enough history for checkO on the
        // Alya stream: declarations and occurrences match the unbounded
        // walk-through.
        let grams = alya_grams(18);
        let mut ppa = Ppa::with_window(3, 64, 2);
        let (decl, at) = feed_until_declaration(&grams, &mut ppa).expect("must declare");
        assert_eq!(&*decl.pattern, &[A, B, B]);
        assert_eq!((decl.predict_from, at), (12, 12));
    }

    #[test]
    fn windowed_and_unbounded_declarations_agree_on_long_streams() {
        // Feed a long periodic stream with noise injections through a
        // bounded and an effectively-unbounded scanner; every declaration
        // must agree (the window only forgets ancient occurrences that
        // checkO never needs for a live pattern).
        let mut grams = Vec::new();
        for block in 0..40 {
            if block % 7 == 3 {
                grams.push(100 + block as GramId); // unique noise gram
            }
            for _ in 0..3 {
                grams.extend_from_slice(&[A, B, B]);
            }
        }
        let mut bounded = Ppa::with_window(3, 64, DEFAULT_OCCURRENCE_WINDOW);
        let mut unbounded = Ppa::with_window(3, 64, usize::MAX);
        for n in 1..=grams.len() {
            let b = bounded.advance(&grams[..n]);
            let u = unbounded.advance(&grams[..n]);
            assert_eq!(b, u, "divergence at gram {n}");
            // Mirror the runtime: a declaration relaunches scanning only
            // via after_declaration, which both sides share.
        }
        assert_eq!(bounded.work(), unbounded.work());
    }
}
