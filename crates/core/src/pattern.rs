//! The pattern list — the hash table of observed gram patterns.
//!
//! The paper stores pattern objects in a `uthash` table keyed by the
//! pattern string; we intern each gram-id sequence once (the way gram
//! shapes already are) and address entries by a dense [`PatternId`].
//! The hot path — `update` / `get` / the `checkO` occurrence scan —
//! therefore never allocates and never SipHashes: lookups borrow the
//! gram-array slice directly and hash it with the vendored FxHash.
//!
//! Each entry remembers where the pattern was observed (a bounded
//! recency window, so the scan stays O(window) on arbitrarily long
//! traces), whether it was ever *declared* predictable (the `detected`
//! flag that enables the fast re-arm after a misprediction), and the
//! running mean of the idle gap preceding each slot of the pattern
//! (what the power controller uses to program the lane-off timer).

use fxhash::FxHashMap;
use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::gram::GramId;
use crate::snapshot::{
    OccurrenceWindowSnapshot, PatternEntrySnapshot, PatternListSnapshot, SnapshotError,
};

/// A pattern key: the sequence of gram shape-ids.
pub type PatternKey = Box<[GramId]>;

/// Dense identifier of an interned pattern key (stable across removal
/// and re-insertion of the entry).
pub type PatternId = u32;

/// Default bound on the per-pattern occurrence window. The paper keeps
/// every occurrence (its traces are short); 64 retains far more history
/// than `checkO` ever needs — a growth step only looks for *one*
/// previous non-overlapping occurrence of the prefix, and prefixes of a
/// live pattern recur every period — while keeping the scan O(1) in the
/// trace length.
pub const DEFAULT_OCCURRENCE_WINDOW: usize = 64;

/// Running mean over `u64` nanosecond durations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    n: u64,
    mean_ns: f64,
}

impl RunningMean {
    /// Create an empty mean.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    #[inline]
    pub fn push(&mut self, d: SimDuration) {
        self.n += 1;
        self.mean_ns += (d.as_ns() as f64 - self.mean_ns) / self.n as f64;
    }

    /// Current mean (zero when empty).
    #[inline]
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_ns(self.mean_ns.round() as u64)
    }

    /// Number of observations.
    #[inline]
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Bounded recency window over gram positions: keeps the newest
/// `capacity` recorded positions (a ring buffer) plus the all-time
/// count, so `frequency` keeps the paper's semantics while `checkO`
/// walks at most `capacity` entries.
#[derive(Debug, Clone)]
pub struct OccurrenceWindow {
    buf: Vec<usize>,
    /// Index of the oldest element once the ring has wrapped.
    start: usize,
    capacity: usize,
    total: u64,
}

impl OccurrenceWindow {
    /// Create an empty window bounded to `capacity` positions (≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        OccurrenceWindow {
            buf: Vec::new(),
            start: 0,
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Record `pos`, evicting the oldest retained position when full.
    /// A position equal to the most recent one is ignored (rescans after
    /// a relaunch may revisit positions). Returns whether it was kept.
    #[inline]
    pub fn record(&mut self, pos: usize) -> bool {
        if self.last() == Some(pos) {
            return false;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(pos);
        } else {
            self.buf[self.start] = pos;
            self.start = (self.start + 1) % self.capacity;
        }
        self.total += 1;
        true
    }

    /// Most recently recorded position.
    #[inline]
    #[must_use]
    pub fn last(&self) -> Option<usize> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.capacity || self.start == 0 {
            self.buf.last().copied()
        } else {
            Some(self.buf[self.start - 1])
        }
    }

    /// Retained positions, oldest first. Allocation-free.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.buf[self.start..]
            .iter()
            .chain(self.buf[..self.start].iter())
            .copied()
    }

    /// Retained positions as a vector, oldest first (test/debug helper).
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Whether `pos` is retained in the window.
    #[must_use]
    pub fn contains(&self, pos: usize) -> bool {
        self.iter().any(|p| p == pos)
    }

    /// Number of positions currently retained (≤ capacity).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was ever recorded.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// All-time number of recorded positions (the paper's `frequency`).
    #[inline]
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Snapshot, normalized oldest-first (`start = 0`). Behaviourally
    /// identical to the live ring: every reader goes through `iter`
    /// (oldest first) or `last`, both of which are rotation-invariant.
    pub(crate) fn snapshot(&self) -> OccurrenceWindowSnapshot {
        OccurrenceWindowSnapshot {
            positions: self.to_vec(),
            capacity: self.capacity,
            total: self.total,
        }
    }

    /// Rebuild from a snapshot, revalidating the ring invariants.
    pub(crate) fn from_snapshot(snap: &OccurrenceWindowSnapshot) -> Result<Self, SnapshotError> {
        let capacity = snap.capacity.max(1);
        if snap.positions.len() > capacity {
            return Err(SnapshotError::Inconsistent(format!(
                "occurrence window holds {} positions over capacity {capacity}",
                snap.positions.len()
            )));
        }
        if snap.total < snap.positions.len() as u64 {
            return Err(SnapshotError::Inconsistent(format!(
                "occurrence window total {} below retained {}",
                snap.total,
                snap.positions.len()
            )));
        }
        Ok(OccurrenceWindow {
            buf: snap.positions.clone(),
            start: 0,
            capacity,
            total: snap.total,
        })
    }
}

/// One pattern object (the paper's `pattern` struct: sequence, length,
/// positions, frequency, inter-gram times, number of MPI calls).
#[derive(Debug, Clone)]
pub struct PatternEntry {
    /// Recent gram positions at which the scanner observed this pattern.
    pub occurrences: OccurrenceWindow,
    /// Set when the pattern was declared predictable; enables immediate
    /// re-arm on the first later re-appearance.
    pub detected: bool,
    /// Running mean of the idle gap preceding each pattern slot
    /// (`slot_gaps[j]` = gap before the j-th gram of the pattern).
    /// Populated at declaration and refined while predicting.
    pub slot_gaps: Vec<RunningMean>,
    /// Total number of MPI calls covered by one pattern occurrence.
    pub mpi_calls: u32,
}

impl PatternEntry {
    fn new(first_pos: usize, window: usize) -> Self {
        let mut occurrences = OccurrenceWindow::new(window);
        occurrences.record(first_pos);
        PatternEntry {
            occurrences,
            detected: false,
            slot_gaps: Vec::new(),
            mpi_calls: 0,
        }
    }

    /// All-time number of recorded occurrences (the paper's `frequency`).
    #[must_use]
    pub fn frequency(&self) -> usize {
        self.occurrences.total() as usize
    }
}

/// Interner mapping gram-id sequences to dense [`PatternId`]s. Each key
/// is stored once (an `Arc<[GramId]>` shared between the map and the
/// id-indexed table); lookups borrow the caller's slice, so the hit
/// path neither allocates nor copies.
#[derive(Debug, Default)]
pub struct PatternInterner {
    ids: FxHashMap<Arc<[GramId]>, PatternId>,
    keys: Vec<Arc<[GramId]>>,
}

impl PatternInterner {
    /// Intern `key`, returning its stable id.
    pub fn intern(&mut self, key: &[GramId]) -> PatternId {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.keys.len() as PatternId;
        let shared: Arc<[GramId]> = key.into();
        self.keys.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// Id of an already-interned key (allocation-free).
    #[inline]
    #[must_use]
    pub fn get(&self, key: &[GramId]) -> Option<PatternId> {
        self.ids.get(key).copied()
    }

    /// The key behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    #[inline]
    #[must_use]
    pub fn key(&self, id: PatternId) -> &[GramId] {
        &self.keys[id as usize]
    }

    /// Number of distinct keys interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Outcome of [`PatternList::update`], so the scanner learns everything
/// it needs from the single hash lookup the call performs.
#[derive(Debug, Clone, Copy)]
#[must_use]
pub struct PatternUpdate {
    /// Dense id of the pattern (stable across remove/re-insert).
    pub id: PatternId,
    /// `true` if this was the pattern's first occurrence (or the first
    /// after a removal).
    pub is_new: bool,
    /// The entry's `detected` flag (always `false` when `is_new`).
    pub detected: bool,
}

/// The pattern list: interned keys + id-indexed entries.
///
/// Removal (Algorithm 2 line 38) tombstones the entry but keeps the key
/// interned; a later `update` of the same key revives the slot with a
/// fresh entry under the *same* id, matching the paper's
/// delete-then-reinsert `uthash` behaviour.
#[derive(Debug)]
pub struct PatternList {
    interner: PatternInterner,
    entries: Vec<Option<PatternEntry>>,
    live: usize,
    window: usize,
}

impl Default for PatternList {
    fn default() -> Self {
        Self::new()
    }
}

impl PatternList {
    /// Create an empty list with the default occurrence window.
    #[must_use]
    pub fn new() -> Self {
        Self::with_window(DEFAULT_OCCURRENCE_WINDOW)
    }

    /// Create an empty list whose entries retain at most `window`
    /// occurrence positions each.
    #[must_use]
    pub fn with_window(window: usize) -> Self {
        PatternList {
            interner: PatternInterner::default(),
            entries: Vec::new(),
            live: 0,
            window: window.max(1),
        }
    }

    /// The configured occurrence-window bound.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Record an occurrence of `key` at gram position `pos` (the paper's
    /// `updatePL`), hashing the key exactly once. Returns the entry's id
    /// and state so hot-path callers need no follow-up lookup.
    pub fn update(&mut self, key: &[GramId], pos: usize) -> PatternUpdate {
        match self.interner.get(key) {
            Some(id) => self.record(id, pos),
            None => {
                let id = self.interner.intern(key);
                debug_assert_eq!(id as usize, self.entries.len());
                self.entries.push(Some(PatternEntry::new(pos, self.window)));
                self.live += 1;
                PatternUpdate {
                    id,
                    is_new: true,
                    detected: false,
                }
            }
        }
    }

    /// Record an occurrence by id (no hashing at all). Revives a
    /// tombstoned entry with a fresh one, exactly as `update` would.
    pub fn record(&mut self, id: PatternId, pos: usize) -> PatternUpdate {
        let slot = &mut self.entries[id as usize];
        match slot {
            Some(entry) => {
                entry.occurrences.record(pos);
                PatternUpdate {
                    id,
                    is_new: false,
                    detected: entry.detected,
                }
            }
            None => {
                *slot = Some(PatternEntry::new(pos, self.window));
                self.live += 1;
                PatternUpdate {
                    id,
                    is_new: true,
                    detected: false,
                }
            }
        }
    }

    /// Id of `key` if it was ever inserted (live or tombstoned).
    /// Allocation-free; the scanner's suffix probes use this.
    #[inline]
    #[must_use]
    pub fn id_of(&self, key: &[GramId]) -> Option<PatternId> {
        self.interner.get(key)
    }

    /// The key behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this list.
    #[inline]
    #[must_use]
    pub fn key(&self, id: PatternId) -> &[GramId] {
        self.interner.key(id)
    }

    /// Look up a live entry by id.
    #[inline]
    #[must_use]
    pub fn entry(&self, id: PatternId) -> Option<&PatternEntry> {
        self.entries.get(id as usize)?.as_ref()
    }

    /// Look up a live entry by id, mutably.
    #[inline]
    #[must_use]
    pub fn entry_mut(&mut self, id: PatternId) -> Option<&mut PatternEntry> {
        self.entries.get_mut(id as usize)?.as_mut()
    }

    /// Look up a pattern (allocation-free).
    #[inline]
    #[must_use]
    pub fn get(&self, key: &[GramId]) -> Option<&PatternEntry> {
        self.entry(self.id_of(key)?)
    }

    /// Look up a pattern mutably (allocation-free).
    #[inline]
    #[must_use]
    pub fn get_mut(&mut self, key: &[GramId]) -> Option<&mut PatternEntry> {
        let id = self.id_of(key)?;
        self.entry_mut(id)
    }

    /// Remove a pattern (Algorithm 2 line 38: a grown n-gram whose
    /// construction check failed is discarded). The key stays interned;
    /// only the entry dies.
    pub fn remove(&mut self, key: &[GramId]) -> Option<PatternEntry> {
        let id = self.id_of(key)?;
        let removed = self.entries[id as usize].take();
        if removed.is_some() {
            self.live -= 1;
        }
        removed
    }

    /// Snapshot the whole list: keys in id order, entries id-indexed.
    pub(crate) fn snapshot(&self) -> PatternListSnapshot {
        PatternListSnapshot {
            window: self.window,
            keys: self.interner.keys.iter().map(|k| k.to_vec()).collect(),
            entries: self
                .entries
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|e| PatternEntrySnapshot {
                        occurrences: e.occurrences.snapshot(),
                        detected: e.detected,
                        slot_gaps: e.slot_gaps.clone(),
                        mpi_calls: e.mpi_calls,
                    })
                })
                .collect(),
        }
    }

    /// Rebuild a list from a snapshot, revalidating interner/entry
    /// alignment. Keys interned in order reproduce the original ids.
    pub(crate) fn from_snapshot(snap: &PatternListSnapshot) -> Result<Self, SnapshotError> {
        if snap.entries.len() != snap.keys.len() {
            return Err(SnapshotError::Inconsistent(format!(
                "pattern list snapshot has {} entries for {} keys",
                snap.entries.len(),
                snap.keys.len()
            )));
        }
        let mut interner = PatternInterner::default();
        for key in &snap.keys {
            let _ = interner.intern(key);
        }
        if interner.len() != snap.keys.len() {
            return Err(SnapshotError::Inconsistent(format!(
                "pattern list snapshot holds duplicate keys: {} distinct of {}",
                interner.len(),
                snap.keys.len()
            )));
        }
        let mut entries = Vec::with_capacity(snap.entries.len());
        let mut live = 0;
        for slot in &snap.entries {
            entries.push(match slot {
                None => None,
                Some(e) => {
                    live += 1;
                    Some(PatternEntry {
                        occurrences: OccurrenceWindow::from_snapshot(&e.occurrences)?,
                        detected: e.detected,
                        slot_gaps: e.slot_gaps.clone(),
                        mpi_calls: e.mpi_calls,
                    })
                }
            });
        }
        Ok(PatternList {
            interner,
            entries,
            live,
            window: snap.window.max(1),
        })
    }

    /// Number of stored (live) patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no patterns are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), SimDuration::ZERO);
        m.push(SimDuration::from_us(100));
        m.push(SimDuration::from_us(200));
        assert_eq!(m.mean(), SimDuration::from_us(150));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn update_reports_novelty() {
        let mut pl = PatternList::new();
        assert!(pl.update(&[1, 2], 0).is_new, "first occurrence is new");
        assert!(!pl.update(&[1, 2], 3).is_new, "second occurrence is not");
        assert_eq!(pl.get(&[1, 2]).unwrap().frequency(), 2);
        assert_eq!(pl.get(&[1, 2]).unwrap().occurrences.to_vec(), vec![0, 3]);
    }

    #[test]
    fn duplicate_position_ignored() {
        let mut pl = PatternList::new();
        let _ = pl.update(&[1, 2], 5);
        let _ = pl.update(&[1, 2], 5);
        assert_eq!(pl.get(&[1, 2]).unwrap().frequency(), 1);
    }

    #[test]
    fn remove_discards_entry() {
        let mut pl = PatternList::new();
        let _ = pl.update(&[1, 2, 3], 0);
        assert!(pl.remove(&[1, 2, 3]).is_some());
        assert!(pl.get(&[1, 2, 3]).is_none());
        assert!(pl.is_empty());
        assert!(pl.remove(&[1, 2, 3]).is_none(), "double remove is a no-op");
    }

    #[test]
    fn removed_key_keeps_id_and_revives_fresh() {
        let mut pl = PatternList::new();
        let first = pl.update(&[7, 8], 2);
        pl.get_mut(&[7, 8]).unwrap().detected = true;
        pl.remove(&[7, 8]);
        // The id survives the tombstone (the suffix index relies on it)…
        assert_eq!(pl.id_of(&[7, 8]), Some(first.id));
        assert!(pl.entry(first.id).is_none());
        // …and re-inserting revives a fresh entry under the same id.
        let again = pl.update(&[7, 8], 9);
        assert_eq!(again.id, first.id);
        assert!(again.is_new);
        assert!(!again.detected, "revived entry starts undetected");
        assert_eq!(pl.get(&[7, 8]).unwrap().occurrences.to_vec(), vec![9]);
        assert_eq!(pl.len(), 1);
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut pl = PatternList::new();
        let _ = pl.update(&[1, 2], 0);
        let _ = pl.update(&[2, 1], 1);
        assert_eq!(pl.len(), 2);
        assert_eq!(pl.get(&[1, 2]).unwrap().occurrences.to_vec(), vec![0]);
        assert_eq!(pl.get(&[2, 1]).unwrap().occurrences.to_vec(), vec![1]);
    }

    #[test]
    fn update_detected_reflects_entry_state() {
        let mut pl = PatternList::new();
        assert!(!pl.update(&[4, 5], 0).detected);
        pl.get_mut(&[4, 5]).unwrap().detected = true;
        let up = pl.update(&[4, 5], 6);
        assert!(up.detected && !up.is_new);
    }

    #[test]
    fn occurrence_window_bounds_retention_but_counts_all() {
        let mut w = OccurrenceWindow::new(4);
        for pos in 0..10 {
            assert!(w.record(pos * 3));
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.total(), 10);
        // Newest four positions retained, oldest first.
        assert_eq!(w.to_vec(), vec![18, 21, 24, 27]);
        assert_eq!(w.last(), Some(27));
        assert!(w.contains(21));
        assert!(!w.contains(0), "old positions evicted");
        // Consecutive duplicate ignored even across the ring boundary.
        assert!(!w.record(27));
        assert_eq!(w.total(), 10);
    }

    #[test]
    fn pattern_list_honours_window_bound() {
        let mut pl = PatternList::with_window(2);
        for pos in [0, 5, 10, 15] {
            let _ = pl.update(&[1, 2], pos);
        }
        let e = pl.get(&[1, 2]).unwrap();
        assert_eq!(e.occurrences.to_vec(), vec![10, 15]);
        assert_eq!(e.frequency(), 4, "frequency keeps the all-time count");
    }

    #[test]
    fn interner_shares_one_allocation_per_key() {
        let mut pi = PatternInterner::default();
        let id = pi.intern(&[1, 2, 3]);
        assert_eq!(pi.intern(&[1, 2, 3]), id, "re-intern is a lookup");
        assert_eq!(pi.len(), 1);
        // Map key and table slot share the same Arc allocation: exactly
        // two strong references, not two copies of the data.
        assert_eq!(Arc::strong_count(&pi.keys[id as usize]), 2);
    }
}
