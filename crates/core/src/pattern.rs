//! The pattern list — the hash table of observed gram patterns.
//!
//! The paper stores pattern objects in a `uthash` table keyed by the
//! pattern string; we key a `HashMap` by the interned gram-id sequence.
//! Each entry remembers where the pattern was observed, whether it was
//! ever *declared* predictable (the `detected` flag that enables the
//! fast re-arm after a misprediction), and the running mean of the idle
//! gap preceding each slot of the pattern (what the power controller
//! uses to program the lane-off timer).

use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::gram::GramId;

/// A pattern key: the sequence of gram shape-ids.
pub type PatternKey = Box<[GramId]>;

/// Running mean over `u64` nanosecond durations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    n: u64,
    mean_ns: f64,
}

impl RunningMean {
    /// Create an empty mean.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn push(&mut self, d: SimDuration) {
        self.n += 1;
        self.mean_ns += (d.as_ns() as f64 - self.mean_ns) / self.n as f64;
    }

    /// Current mean (zero when empty).
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_ns(self.mean_ns.round() as u64)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// One pattern object (the paper's `pattern` struct: sequence, length,
/// positions, frequency, inter-gram times, number of MPI calls).
#[derive(Debug, Clone)]
pub struct PatternEntry {
    /// Gram positions at which the scanner observed this pattern.
    pub occurrences: Vec<usize>,
    /// Set when the pattern was declared predictable; enables immediate
    /// re-arm on the first later re-appearance.
    pub detected: bool,
    /// Running mean of the idle gap preceding each pattern slot
    /// (`slot_gaps[j]` = gap before the j-th gram of the pattern).
    /// Populated at declaration and refined while predicting.
    pub slot_gaps: Vec<RunningMean>,
    /// Total number of MPI calls covered by one pattern occurrence.
    pub mpi_calls: u32,
}

impl PatternEntry {
    fn new(first_pos: usize) -> Self {
        PatternEntry {
            occurrences: vec![first_pos],
            detected: false,
            slot_gaps: Vec::new(),
            mpi_calls: 0,
        }
    }

    /// Number of recorded occurrences (the paper's `frequency`).
    pub fn frequency(&self) -> usize {
        self.occurrences.len()
    }
}

/// The pattern list: hash table keyed by gram-id sequence.
#[derive(Debug, Default)]
pub struct PatternList {
    map: HashMap<PatternKey, PatternEntry>,
}

impl PatternList {
    /// Create an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an occurrence of `key` at gram position `pos`
    /// (the paper's `updatePL`). Returns `true` if the pattern is *new*
    /// (first occurrence), `false` if it already existed.
    ///
    /// Duplicate positions are ignored (a rescans after relaunch may
    /// revisit positions).
    pub fn update(&mut self, key: &[GramId], pos: usize) -> bool {
        match self.map.get_mut(key) {
            Some(entry) => {
                if entry.occurrences.last() != Some(&pos) {
                    entry.occurrences.push(pos);
                }
                false
            }
            None => {
                self.map.insert(key.into(), PatternEntry::new(pos));
                true
            }
        }
    }

    /// Look up a pattern.
    pub fn get(&self, key: &[GramId]) -> Option<&PatternEntry> {
        self.map.get(key)
    }

    /// Look up a pattern mutably.
    pub fn get_mut(&mut self, key: &[GramId]) -> Option<&mut PatternEntry> {
        self.map.get_mut(key)
    }

    /// Remove a pattern (Algorithm 2 line 38: a grown n-gram whose
    /// construction check failed is discarded).
    pub fn remove(&mut self, key: &[GramId]) -> Option<PatternEntry> {
        self.map.remove(key)
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basic() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), SimDuration::ZERO);
        m.push(SimDuration::from_us(100));
        m.push(SimDuration::from_us(200));
        assert_eq!(m.mean(), SimDuration::from_us(150));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn update_reports_novelty() {
        let mut pl = PatternList::new();
        assert!(pl.update(&[1, 2], 0), "first occurrence is new");
        assert!(!pl.update(&[1, 2], 3), "second occurrence is not");
        assert_eq!(pl.get(&[1, 2]).unwrap().frequency(), 2);
        assert_eq!(pl.get(&[1, 2]).unwrap().occurrences, vec![0, 3]);
    }

    #[test]
    fn duplicate_position_ignored() {
        let mut pl = PatternList::new();
        pl.update(&[1, 2], 5);
        pl.update(&[1, 2], 5);
        assert_eq!(pl.get(&[1, 2]).unwrap().frequency(), 1);
    }

    #[test]
    fn remove_discards_entry() {
        let mut pl = PatternList::new();
        pl.update(&[1, 2, 3], 0);
        assert!(pl.remove(&[1, 2, 3]).is_some());
        assert!(pl.get(&[1, 2, 3]).is_none());
        assert!(pl.is_empty());
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut pl = PatternList::new();
        pl.update(&[1, 2], 0);
        pl.update(&[2, 1], 1);
        assert_eq!(pl.len(), 2);
        assert_eq!(pl.get(&[1, 2]).unwrap().occurrences, vec![0]);
        assert_eq!(pl.get(&[2, 1]).unwrap().occurrences, vec![1]);
    }
}
