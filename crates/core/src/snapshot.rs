//! Serializable snapshots of the streaming runtime.
//!
//! A [`RuntimeSnapshot`] captures **everything** a [`RankRuntime`]
//! ([`crate::runtime::RankRuntime`]) has learned — interned gram shapes,
//! the pattern list with occurrence windows and slot-gap means, the PPA
//! scan position, the prediction mode, the resilience controller and the
//! cumulative statistics — but *not* the per-event output vectors
//! (directives, overheads, penalties), which belong to whoever consumed
//! them. Restoring a snapshot therefore yields a runtime that continues
//! the stream exactly where the original left off: every subsequent
//! declaration and lane directive is byte-identical to an unbroken run
//! (property-tested over all five paper workloads in the integration
//! suite).
//!
//! This is what `ibp-serve` uses to let a disconnected client resume
//! prediction without re-learning its pattern dictionary.
//!
//! Snapshots are plain-old-data with `serde` derives; hash maps are
//! stored as sorted key/value vectors and ring buffers are normalized
//! (oldest first), so the serialized form is deterministic for a given
//! runtime state.

use crate::config::SleepKind;
use crate::gram::{Gram, GramId};
use crate::pattern::{PatternId, RunningMean};
use crate::ppa::PpaWork;
use crate::stats::RankStats;
use crate::PowerConfig;
use ibp_simcore::SimDuration;
use ibp_trace::Rank;
use serde::{Deserialize, Serialize};

/// Version stamp embedded in every snapshot. Bump on layout changes so
/// a server can reject snapshots from an incompatible build.
///
/// Version history:
/// * 1 — initial layout (two-depth `SleepKind`, no ladder fields).
/// * 2 — sleep-depth ladder: `SleepKind::Rate`, `RankStats::rate_time`,
///   and the `rate_*` ladder parameters in [`PowerConfig`].
pub const SNAPSHOT_VERSION: u32 = 2;

/// A snapshot failed validation on restore.
///
/// Snapshots may arrive over the wire, so restoring revalidates every
/// internal invariant instead of trusting the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The snapshot was produced by an incompatible layout version.
    VersionMismatch {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// An id referenced by the snapshot does not exist in its own tables.
    DanglingId {
        /// What kind of id dangled (`"gram"`, `"pattern"`, …).
        what: &'static str,
        /// The out-of-range id.
        id: u64,
        /// Size of the table it was supposed to index.
        len: usize,
    },
    /// A structural invariant does not hold (duplicate interner keys,
    /// occurrence window larger than its capacity, …).
    Inconsistent(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with expected {expected}")
            }
            SnapshotError::DanglingId { what, id, len } => {
                write!(f, "snapshot references {what} id {id} outside table of {len}")
            }
            SnapshotError::Inconsistent(msg) => write!(f, "inconsistent snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Interned gram shapes, in id order (index = [`GramId`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GramInternerSnapshot {
    /// Call-id sequence of each shape.
    pub shapes: Vec<Vec<u16>>,
}

/// Mutable fields of the online gram builder (the open, not-yet-closed
/// gram). The grouping threshold itself comes from the config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GramBuilderSnapshot {
    /// Calls accumulated in the open gram.
    pub current_calls: Vec<u16>,
    /// Stream index of the open gram's first event.
    pub current_first_event: usize,
    /// Idle gap that preceded the open gram.
    pub current_preceding_idle: SimDuration,
    /// Next event index the builder will assign.
    pub next_event: usize,
}

/// A bounded occurrence ring buffer, normalized oldest-first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccurrenceWindowSnapshot {
    /// Retained positions, oldest first (≤ `capacity` of them).
    pub positions: Vec<usize>,
    /// Retention bound.
    pub capacity: usize,
    /// All-time number of recorded positions.
    pub total: u64,
}

/// One live pattern entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternEntrySnapshot {
    /// Recent occurrence positions.
    pub occurrences: OccurrenceWindowSnapshot,
    /// Whether the pattern was ever declared predictable.
    pub detected: bool,
    /// Per-slot idle-gap running means.
    pub slot_gaps: Vec<RunningMean>,
    /// MPI calls covered by one occurrence.
    pub mpi_calls: u32,
}

/// The pattern list: interned keys in id order plus id-indexed entries
/// (`None` = tombstoned key, exactly as the live structure keeps them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternListSnapshot {
    /// Occurrence-window bound for every entry.
    pub window: usize,
    /// Interned keys, in id order (index = [`PatternId`]).
    pub keys: Vec<Vec<GramId>>,
    /// Entries; `entries[id]` is `None` when the key is tombstoned.
    pub entries: Vec<Option<PatternEntrySnapshot>>,
}

/// The PPA scanner phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseSnapshot {
    /// Sliding over bi-grams looking for a repeat.
    Seek,
    /// Locked on a candidate, counting consecutive repeats.
    Track {
        /// Consecutive repeats observed so far.
        consecutive: u32,
    },
}

/// Full PPA scanner state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpaSnapshot {
    /// The pattern list.
    pub pattern_list: PatternListSnapshot,
    /// Current scan position in the gram array.
    pub pos: usize,
    /// Candidate pattern size being tracked.
    pub pattern_size: usize,
    /// Scanner phase.
    pub phase: PhaseSnapshot,
    /// Declaration policy: consecutive repeats required.
    pub min_consecutive: u32,
    /// Pattern-length cap (frozen to the declared length once declared).
    pub max_pattern_size: usize,
    /// Whether `max_pattern_size` has been frozen by a declaration.
    pub frozen: bool,
    /// Declaration order of every detected pattern, sorted by pattern id.
    pub detected: Vec<(PatternId, u32)>,
    /// Distinct detected pattern lengths, in first-seen order.
    pub detected_lens: Vec<usize>,
    /// Next declaration-order stamp.
    pub next_detected_order: u32,
    /// First gram position considered fresh for the re-arm check.
    pub min_fresh: usize,
    /// Cumulative work counters.
    pub work: PpaWork,
    /// Elements examined by the most recent `advance`.
    pub last_elements: u64,
}

/// The runtime's prediction mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeSnapshot {
    /// Gram formation + PPA are running.
    Learning,
    /// Power-mode control is tracking a declared pattern.
    Predicting {
        /// Interned id of the declared pattern.
        pattern: PatternId,
        /// Expected call-id sequence of each pattern slot.
        shapes: Vec<Vec<u16>>,
        /// Slot currently being matched.
        slot: usize,
        /// Calls already matched within the current slot's gram.
        progress: usize,
    },
}

/// An armed lane-off timer awaiting its wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingSleepSnapshot {
    /// Programmed low-power window.
    pub timer: SimDuration,
    /// Sleep depth.
    pub kind: SleepKind,
}

/// The adaptive resilience controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceSnapshot {
    /// Call indices of recent pattern mispredictions, oldest first.
    pub recent_pattern: Vec<u64>,
    /// Call indices of recent timing mispredictions, oldest first.
    pub recent_timing: Vec<u64>,
    /// Calls left in the current prediction hold-off.
    pub holdoff_remaining: u32,
    /// Length of the next hold-off.
    pub next_holdoff: u32,
    /// Current guard band (extra displacement).
    pub guard: f64,
}

/// Complete learned state of one [`crate::runtime::RankRuntime`], minus
/// its per-event output vectors. See the module docs for the contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The runtime's configuration.
    pub cfg: PowerConfig,
    /// The rank this runtime annotates.
    pub rank: Rank,
    /// Interned gram shapes.
    pub interner: GramInternerSnapshot,
    /// The open (not yet closed) gram.
    pub builder: GramBuilderSnapshot,
    /// All closed grams, in stream order.
    pub grams: Vec<Gram>,
    /// Shape ids of the closed grams (the PPA's input array).
    pub gram_ids: Vec<GramId>,
    /// The PPA scanner.
    pub ppa: PpaSnapshot,
    /// Prediction mode.
    pub mode: ModeSnapshot,
    /// Armed lane-off timer, if any.
    pub pending: Option<PendingSleepSnapshot>,
    /// Resilience controller state.
    pub resilience: ResilienceSnapshot,
    /// Cumulative statistics (carried so post-restore stats match an
    /// unbroken run).
    pub stats: RankStats,
    /// Number of events intercepted so far (`after_event` indices of
    /// post-restore directives continue from here).
    pub event_idx: usize,
}

impl RuntimeSnapshot {
    /// Serialize to the canonical JSON wire form used by `ibp-serve`.
    #[must_use]
    pub fn to_json_bytes(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("snapshot serialization cannot fail")
            .into_bytes()
    }

    /// Parse the canonical JSON wire form.
    pub fn from_json_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| SnapshotError::Inconsistent(format!("snapshot not utf-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| SnapshotError::Inconsistent(format!("snapshot not valid JSON: {e}")))
    }

    /// Check the layout version alone, without the full invariant
    /// revalidation `RankRuntime::from_snapshot` performs. The durable
    /// snapshot store runs this during crash recovery so a record from
    /// an incompatible build is skipped with a precise reason instead
    /// of surfacing as a generic restore failure later.
    pub fn validate_version(&self) -> Result<(), SnapshotError> {
        if self.version == SNAPSHOT_VERSION {
            Ok(())
        } else {
            Err(SnapshotError::VersionMismatch {
                found: self.version,
                expected: SNAPSHOT_VERSION,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_error_displays() {
        let e = SnapshotError::VersionMismatch { found: 9, expected: 1 };
        assert!(e.to_string().contains("version 9"));
        let e = SnapshotError::DanglingId { what: "pattern", id: 7, len: 3 };
        assert!(e.to_string().contains("pattern id 7"));
        let e = SnapshotError::Inconsistent("x".into());
        assert!(e.to_string().contains("inconsistent"));
    }

    #[test]
    fn json_bytes_reject_garbage() {
        assert!(RuntimeSnapshot::from_json_bytes(b"\xff\xfe").is_err());
        assert!(RuntimeSnapshot::from_json_bytes(b"{not json").is_err());
        assert!(RuntimeSnapshot::from_json_bytes(b"[1,2,3]").is_err());
    }
}
