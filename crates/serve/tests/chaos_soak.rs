//! Chaos soak: the serving stack under a fault-injecting transport.
//!
//! These tests drive real sessions through seeded chaos wrappers —
//! partial writes, short reads, stalls, resets, bit flips — on the
//! client side, the server side, and both, and assert the *invariants*
//! the stack promises rather than exact fault counts (socket read
//! sizes vary run to run, so the fault sequence is only seed-stable
//! per connection):
//!
//! - zero worker panics and zero worker respawns,
//! - every session finishes and matches the offline golden annotation
//!   byte for byte, however many reconnect cycles it took,
//! - no session gives up: reconnect cycles stay within the retry
//!   budget (an exhausted budget is reported as `gave_up` in the load
//!   report, and the soak asserts that count is zero),
//! - observability counters sampled mid-chaos via `Query` frames are
//!   monotonic scrape to scrape and agree with the final
//!   `ServeSummary` once the fleet drains.

use ibp_core::{annotate_rank, PowerConfig};
use ibp_serve::{
    run_load, ChaosConfig, Client, Endpoint, LoadConfig, ProtocolError, RetryPolicy, ServeConfig,
    Server, SessionSpec, SnapshotStore,
};
use ibp_workloads::AppKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ibp-chaos-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn specs_for(app: AppKind, nprocs: u32, sessions: usize) -> Vec<SessionSpec> {
    let cfg = PowerConfig::default();
    let trace = app.workload().generate(nprocs, 42);
    (0..sessions)
        .map(|i| {
            let rank = &trace.ranks[i % nprocs as usize];
            let golden = annotate_rank(rank, &cfg);
            SessionSpec {
                rank: rank.rank,
                config: cfg.clone(),
                events: rank
                    .call_stream()
                    .map(|(call, gap)| (call.id(), gap.as_ns()))
                    .collect(),
                final_compute_ns: rank.final_compute.as_ns(),
                golden_directives: Some(golden.directives.clone()),
                golden_stats: Some(golden.stats),
            }
        })
        .collect()
}

/// A retry budget generous enough that a soak run never flakes on an
/// unlucky fault cluster, while still being a real bound.
fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 5,
        max_backoff_ms: 100,
        ..Default::default()
    }
}

struct SoakOutcome {
    report: ibp_serve::LoadReport,
    summary: ibp_serve::ServeSummary,
}

fn soak(tag: &str, serve_cfg: ServeConfig, load_cfg: &LoadConfig, with_store: bool) -> SoakOutcome {
    let dir = temp_dir(tag);
    let endpoint = Endpoint::Unix(dir.join("soak.sock"));
    let mut server = Server::bind(&endpoint, serve_cfg).expect("bind");
    if with_store {
        let (store, _) = SnapshotStore::open(&dir.join("store")).expect("store");
        server = server.with_store(Arc::new(store));
    }
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    let specs = specs_for(AppKind::Alya, 4, 6);
    let report = run_load(&bound, specs, load_cfg).expect("soak load");
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
    SoakOutcome { report, summary }
}

fn assert_invariants(out: &SoakOutcome) {
    assert!(out.report.parity_checked, "golden annotations were supplied");
    assert!(out.report.parity_ok, "parity failed: {:?}", out.report.per_session);
    assert_eq!(out.report.gave_up, 0, "session(s) gave up: {:?}", out.report.per_session);
    assert_eq!(out.summary.worker_panics, 0, "{:?}", out.summary);
    assert_eq!(out.summary.worker_respawns, 0, "{:?}", out.summary);
    // Reconnect cycles are bounded: each cycle burns at least one
    // attempt from a budget that resets only on progress, so a runaway
    // reconnect loop would blow well past this.
    let cap = 16 * out.report.per_session.len() as u64 * 8;
    assert!(out.report.reconnects <= cap, "runaway reconnects: {:?}", out.report);
}

#[test]
fn client_side_chaos_preserves_parity() {
    let out = soak(
        "client",
        ServeConfig { workers: 3, persist_every: 64, ..Default::default() },
        &LoadConfig {
            batch: 23,
            check: true,
            chaos: Some(ChaosConfig::with_intensity(0xC0FFEE, 0.05)),
            retry: soak_retry(),
            ..Default::default()
        },
        true,
    );
    assert_invariants(&out);
}

#[test]
fn server_side_chaos_preserves_parity() {
    let out = soak(
        "server",
        ServeConfig {
            workers: 3,
            persist_every: 64,
            chaos: Some(ChaosConfig::with_intensity(0x5EED, 0.05)),
            ..Default::default()
        },
        &LoadConfig { batch: 23, check: true, retry: soak_retry(), ..Default::default() },
        true,
    );
    assert_invariants(&out);
}

#[test]
fn chaos_with_mid_stream_splits_preserves_parity() {
    // Snapshot/restore splits and transport faults at the same time:
    // the client snapshots at 40%, drops the connection, restores, and
    // meanwhile both directions inject faults.
    let out = soak(
        "split",
        ServeConfig {
            workers: 2,
            persist_every: 32,
            chaos: Some(ChaosConfig::with_intensity(0xAB, 0.03)),
            ..Default::default()
        },
        &LoadConfig {
            batch: 17,
            split: Some(0.4),
            check: true,
            chaos: Some(ChaosConfig::with_intensity(0xBA, 0.03)),
            retry: soak_retry(),
            ..Default::default()
        },
        true,
    );
    assert_invariants(&out);
}

#[test]
fn chaos_without_store_still_converges() {
    // No snapshot store: every reconnect falls back to a fresh Open
    // and a full resend. Parity must still hold — the engine is
    // deterministic — it just costs more retransmission.
    let out = soak(
        "nostore",
        ServeConfig { workers: 2, ..Default::default() },
        &LoadConfig {
            batch: 31,
            check: true,
            chaos: Some(ChaosConfig::with_intensity(0xD15C, 0.04)),
            retry: soak_retry(),
            ..Default::default()
        },
        false,
    );
    assert_invariants(&out);
}

/// The counter fields of a `ServeSummary` as a flat vector, for
/// scrape-to-scrape monotonicity checks.
fn counter_vec(s: &ibp_serve::ServeSummary) -> [u64; 12] {
    [
        s.sessions_opened,
        s.sessions_closed,
        s.events_applied,
        s.directives_sent,
        s.protocol_errors,
        s.responses_shed,
        s.worker_panics,
        s.worker_respawns,
        s.snapshots_persisted,
        s.persist_failures,
        s.sessions_rehydrated,
        s.evictions,
    ]
}

#[test]
fn metrics_coherent_under_chaos() {
    // A scraper fires Query frames over its own (healthy) connection
    // while a chaos-wrapped fleet streams. Invariants: every counter is
    // monotonic scrape to scrape — a probe can never observe a counter
    // going backwards, whatever faults, reconnects, and restores are in
    // flight — and a post-drain probe agrees exactly with the
    // `ServeSummary` the server returns when it stops.
    let dir = temp_dir("coherent");
    let endpoint = Endpoint::Unix(dir.join("soak.sock"));
    let mut server =
        Server::bind(&endpoint, ServeConfig { workers: 3, persist_every: 64, ..Default::default() })
            .expect("bind");
    let (store, _) = SnapshotStore::open(&dir.join("store")).expect("store");
    server = server.with_store(Arc::new(store));
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let bound = bound.clone();
        let scrape_stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut scraper = Client::connect(&bound).expect("scraper connect");
            let mut prev: Option<[u64; 12]> = None;
            let mut scrapes = 0u32;
            while !scrape_stop.load(Ordering::Relaxed) {
                let report = scraper.query_server().expect("mid-chaos query");
                let now = counter_vec(&report.server.summary);
                if let Some(prev) = prev {
                    for (i, (&p, &n)) in prev.iter().zip(&now).enumerate() {
                        assert!(n >= p, "counter {i} went backwards: {p} -> {n}");
                    }
                }
                prev = Some(now);
                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            scrapes
        })
    };

    let report = run_load(
        &bound,
        specs_for(AppKind::Alya, 4, 6),
        &LoadConfig {
            batch: 19,
            check: true,
            chaos: Some(ChaosConfig::with_intensity(0x0B5E, 0.05)),
            retry: soak_retry(),
            ..Default::default()
        },
    )
    .expect("soak load");
    assert!(report.parity_ok, "parity under scraping: {:?}", report.per_session);
    assert_eq!(report.gave_up, 0, "{:?}", report.per_session);

    scrape_stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    assert!(scrapes > 0, "the scraper never got a probe in");

    // The fleet has drained and the scraper is gone: one final Query
    // must agree exactly with the summary `run()` hands back.
    let mut last = Client::connect(&bound).expect("final connect");
    let final_probe = last.query_server().expect("final query");
    drop(last);
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    let probed = &final_probe.server.summary;
    assert_eq!(probed.responses_shed, summary.responses_shed, "{probed:?} vs {summary:?}");
    assert_eq!(probed.worker_respawns, summary.worker_respawns, "{probed:?} vs {summary:?}");
    assert_eq!(probed.worker_panics, summary.worker_panics, "{probed:?} vs {summary:?}");
    assert_eq!(probed.sessions_opened, summary.sessions_opened, "{probed:?} vs {summary:?}");
    assert_eq!(probed.sessions_closed, summary.sessions_closed, "{probed:?} vs {summary:?}");
    assert_eq!(probed.events_applied, summary.events_applied, "{probed:?} vs {summary:?}");
    assert_eq!(probed.directives_sent, summary.directives_sent, "{probed:?} vs {summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_is_isolated_to_its_session() {
    let dir = temp_dir("panic");
    let endpoint = Endpoint::Unix(dir.join("soak.sock"));
    let server = Server::bind(
        &endpoint,
        ServeConfig { workers: 2, panic_on_call: Some(0xBEEF), ..Default::default() },
    )
    .expect("bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let cfg = PowerConfig::default();
    let mut victim = Client::connect(&bound).expect("connect");
    victim.open(0, 0, &cfg).expect("open");
    let (applied, _) = victim.send_events(0, &[(41, 0), (41, 2_000)]).expect("events");
    assert_eq!(applied, 2);
    // The poisoned batch blows up its worker; the panic must come back
    // as an in-band INTERNAL error, not a dead connection.
    let err = victim.send_events(0, &[(0xBEEF, 0)]).unwrap_err();
    match err {
        ProtocolError::Remote { code, .. } => {
            assert_eq!(code, ibp_serve::protocol::error_code::INTERNAL);
        }
        other => panic!("expected in-band Remote error, got {other:?}"),
    }

    // A healthy session on the same server keeps working end to end.
    let mut healthy = Client::connect(&bound).expect("connect");
    healthy.open(1, 0, &cfg).expect("open");
    let (applied, _) = healthy.send_events(1, &[(41, 0), (41, 2_000), (41, 2_000)]).expect("events");
    assert_eq!(applied, 3);
    let (_tail, _total, _stats) = healthy.close(1, 0).expect("close");

    victim.abandon();
    drop(healthy);
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.worker_panics, 1, "{summary:?}");
    assert_eq!(summary.sessions_closed, 1, "{summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_stop_persists_unclosed_sessions() {
    // A client streams halfway and never closes; stopping the server
    // must persist the session so a restarted server (same store) can
    // rehydrate it and the client can resume where it left off.
    let dir = temp_dir("drain");
    let store_dir = dir.join("store");
    let endpoint = Endpoint::Unix(dir.join("soak.sock"));
    let cfg = PowerConfig::default();
    let spec = &specs_for(AppKind::Alya, 4, 1)[0];
    let half = spec.events.len() / 2;

    // First server: stream half the events, abandon, stop.
    let (store, _) = SnapshotStore::open(&store_dir).expect("store");
    let server = Server::bind(&endpoint, ServeConfig::default())
        .expect("bind")
        .with_store(Arc::new(store));
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&bound).expect("connect");
    client.open(9, spec.rank, &cfg).expect("open");
    let mut sent = Vec::new();
    for chunk in spec.events[..half].chunks(37) {
        let (_, d) = client.send_events(9, chunk).expect("events");
        sent.extend(d);
    }
    client.abandon(); // vanish without Close
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert!(summary.snapshots_persisted > 0, "{summary:?}");

    // Second server, same store: an empty-body Restore must rehydrate
    // the session at (or before) the abandon point, replaying a
    // directive history that prefixes what the first run streamed.
    let (store, recovery) = SnapshotStore::open(&store_dir).expect("reopen store");
    assert_eq!(recovery.loaded, 1, "{recovery:?}");
    let server = Server::bind(&endpoint, ServeConfig::default())
        .expect("rebind")
        .with_store(Arc::new(store));
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(&bound).expect("reconnect");
    let (resume_at, history) = client.restore_from_store(9).expect("rehydrate");
    assert!(resume_at as usize <= half, "cannot resume past what was sent");
    assert!(resume_at > 0, "drain persisted nothing");
    assert_eq!(history.as_slice(), &sent[..history.len()], "history must prefix the live run");

    // Resume streaming to the end and check full-session parity.
    let mut journal = history;
    for chunk in spec.events[resume_at as usize..].chunks(53) {
        let (_, d) = client.send_events(9, chunk).expect("resume events");
        journal.extend(d);
    }
    let (tail, _total, stats) = client.close(9, spec.final_compute_ns).expect("close");
    journal.extend(tail);
    assert_eq!(Some(&journal), spec.golden_directives.as_ref(), "resumed parity");
    assert_eq!(Some(&stats), spec.golden_stats.as_ref(), "resumed stats parity");

    drop(client);
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.sessions_rehydrated, 1, "{summary:?}");
    assert_eq!(summary.sessions_closed, 1, "{summary:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
