//! End-to-end server tests over real sockets: streamed directives must
//! be byte-identical to the offline `annotate_rank` golden path, across
//! transports, batch sizes, and snapshot/restore reconnects.

use ibp_core::{annotate_rank, PowerConfig};
use ibp_serve::{
    run_load, Client, Endpoint, LoadConfig, ProtocolError, ServeConfig, Server, SessionSpec,
};
use ibp_workloads::AppKind;
use std::sync::atomic::Ordering;

fn temp_uds(tag: &str) -> Endpoint {
    let dir = std::env::temp_dir().join("ibp-serve-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let pid = std::process::id();
    Endpoint::Unix(dir.join(format!("{tag}-{pid}.sock")))
}

fn specs_for(app: AppKind, nprocs: u32, sessions: usize, check: bool) -> Vec<SessionSpec> {
    let cfg = PowerConfig::default();
    let trace = app.workload().generate(nprocs, 42);
    (0..sessions)
        .map(|i| {
            let rank = &trace.ranks[i % nprocs as usize];
            let golden = check.then(|| annotate_rank(rank, &cfg));
            SessionSpec {
                rank: rank.rank,
                config: cfg.clone(),
                events: rank
                    .call_stream()
                    .map(|(call, gap)| (call.id(), gap.as_ns()))
                    .collect(),
                final_compute_ns: rank.final_compute.as_ns(),
                golden_directives: golden.as_ref().map(|g| g.directives.clone()),
                golden_stats: golden.map(|g| g.stats),
            }
        })
        .collect()
}

fn serve_and_load(
    endpoint: &Endpoint,
    serve_cfg: ServeConfig,
    specs: Vec<SessionSpec>,
    load_cfg: &LoadConfig,
) -> (ibp_serve::LoadReport, ibp_serve::ServeSummary) {
    let server = Server::bind(endpoint, serve_cfg).expect("bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    let report = run_load(&bound, specs, load_cfg).expect("load");
    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    (report, summary)
}

#[test]
fn uds_roundtrip_matches_offline_annotation() {
    let endpoint = temp_uds("parity");
    let specs = specs_for(AppKind::Alya, 4, 4, true);
    let events_expected: u64 = specs.iter().map(|s| s.events.len() as u64).sum();
    let (report, summary) = serve_and_load(
        &endpoint,
        ServeConfig { workers: 2, ..Default::default() },
        specs,
        &LoadConfig { batch: 33, ..Default::default() },
    );
    // parity check must actually run
    let (report2, _) = serve_and_load(
        &endpoint,
        ServeConfig::default(),
        specs_for(AppKind::Alya, 4, 4, true),
        &LoadConfig { batch: 33, check: true, ..Default::default() },
    );
    assert!(report2.parity_checked && report2.parity_ok, "parity failed: {report2:?}");
    assert_eq!(report.events_total, events_expected);
    assert_eq!(summary.events_applied, events_expected);
    assert_eq!(summary.sessions_opened, 4);
    assert_eq!(summary.sessions_closed, 4);
    assert_eq!(summary.directives_sent, report.directives_total);
}

#[test]
fn tcp_roundtrip_with_snapshot_split_is_transparent() {
    let endpoint = Endpoint::Tcp("127.0.0.1:0".into());
    let specs = specs_for(AppKind::NasBt, 9, 6, true);
    let (report, summary) = serve_and_load(
        &endpoint,
        ServeConfig { workers: 3, ..Default::default() },
        specs,
        &LoadConfig { batch: 17, split: Some(0.5), check: true, ..Default::default() },
    );
    assert!(report.parity_ok, "split-parity failed: {report:?}");
    // A split session opens twice (fresh + restored) but closes once.
    assert_eq!(summary.sessions_opened, 12);
    assert_eq!(summary.sessions_closed, 6);
}

#[test]
fn every_paper_app_streams_with_parity() {
    for app in AppKind::ALL {
        let nprocs = app.workload().paper_procs()[0];
        let endpoint = temp_uds(app.name());
        let specs = specs_for(app, nprocs, 2, true);
        let (report, _) = serve_and_load(
            &endpoint,
            ServeConfig { workers: 2, ..Default::default() },
            specs,
            &LoadConfig { batch: 64, check: true, ..Default::default() },
        );
        assert!(report.parity_ok, "{}: parity failed: {report:?}", app.name());
    }
}

#[test]
fn mid_stream_queries_do_not_perturb_the_stream() {
    // The tentpole acceptance criterion for observability: a session
    // interleaving Query frames into its event stream receives the
    // byte-identical directive stream a query-free run produces. The
    // server answers Query inline on the connection reader — it never
    // enters the session mailbox — so probes are invisible to the FIFO.
    let endpoint = temp_uds("query-parity");
    let server = Server::bind(&endpoint, ServeConfig { workers: 2, ..Default::default() })
        .expect("bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let spec = &specs_for(AppKind::Alya, 4, 1, true)[0];
    let golden = spec.golden_directives.as_ref().expect("checked spec");

    let mut client = Client::connect(&bound).expect("connect");
    client.open(0, spec.rank, &spec.config).expect("open");
    let mut journal = Vec::new();
    let mut probes = 0u32;
    for (i, chunk) in spec.events.chunks(29).enumerate() {
        let (_, d) = client.send_events(0, chunk).expect("events");
        journal.extend(d);
        // Probe between every other batch: own session, then the fleet.
        if i % 2 == 0 {
            let report = client.query(0).expect("own-session query");
            assert_eq!(report.sessions.len(), 1, "{report:?}");
            assert_eq!(report.sessions[0].session, 0);
            probes += 1;
        } else {
            let report = client.query_server().expect("fleet query");
            assert_eq!(report.server.sessions_live, 1, "{report:?}");
            probes += 1;
        }
    }
    let (tail, _total, stats) = client.close(0, spec.final_compute_ns).expect("close");
    journal.extend(tail);
    assert!(probes > 4, "the interleave exercised real probes");
    assert_eq!(&journal, golden, "queries perturbed the directive stream");
    assert_eq!(Some(&stats), spec.golden_stats.as_ref(), "queries perturbed final stats");

    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.events_applied, spec.events.len() as u64);
}

#[test]
fn scale_mode_multiplexes_sessions_with_parity() {
    // Scale mode: many sessions over few driver connections, with the
    // LRU hot cap well below the session count, must still match the
    // offline annotation per session — and must really have paged.
    let endpoint = temp_uds("scale");
    let specs = specs_for(AppKind::Alya, 4, 24, true);
    let server = Server::bind(
        &endpoint,
        ServeConfig {
            workers: 2,
            io_threads: 2,
            max_hot_sessions: Some(6),
            ..Default::default()
        },
    )
    .expect("bind");
    let store_dir = std::env::temp_dir()
        .join("ibp-serve-e2e")
        .join(format!("scale-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let (store, _) = ibp_serve::SnapshotStore::open(&store_dir).expect("store");
    let server = server.with_store(std::sync::Arc::new(store));
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let report = run_load(
        &bound,
        specs,
        &LoadConfig {
            batch: 48,
            check: true,
            drivers: 4,
            open_rate: 4_000,
            ..Default::default()
        },
    )
    .expect("scale load");
    assert!(report.parity_checked && report.parity_ok, "scale parity failed: {report:?}");
    assert_eq!(report.per_session.len(), 24);

    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.sessions_closed, 24, "{summary:?}");
    assert!(summary.evictions > 0, "hot cap 6 < 24 sessions must evict: {summary:?}");
    assert!(summary.sessions_rehydrated > 0, "evicted sessions were touched: {summary:?}");
    assert_eq!(summary.worker_panics, 0, "{summary:?}");
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn scale_mode_rejects_split_and_chaos() {
    let endpoint = temp_uds("scale-invalid");
    let server = Server::bind(&endpoint, ServeConfig::default()).expect("bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());
    let err = run_load(
        &bound,
        specs_for(AppKind::Alya, 4, 2, false),
        &LoadConfig { drivers: 2, split: Some(0.5), ..Default::default() },
    )
    .unwrap_err();
    assert!(
        matches!(&err, ProtocolError::Io(e) if e.kind() == std::io::ErrorKind::InvalidInput),
        "got {err:?}"
    );
    stop.store(true, Ordering::Relaxed);
    handle.join().expect("server thread");
}

#[test]
fn session_limit_stops_the_server() {
    let endpoint = temp_uds("limit");
    let server = Server::bind(
        &endpoint,
        ServeConfig { session_limit: Some(2), ..Default::default() },
    )
    .expect("bind");
    let bound = server.endpoint().clone();
    let handle = std::thread::spawn(move || server.run());
    let specs = specs_for(AppKind::Alya, 4, 2, false);
    run_load(&bound, specs, &LoadConfig::default()).expect("load");
    // run() must return on its own — no stop flag raised here.
    let summary = handle.join().expect("server thread");
    assert_eq!(summary.sessions_closed, 2);
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let endpoint = temp_uds("errors");
    let server = Server::bind(&endpoint, ServeConfig::default()).expect("bind");
    let bound = server.endpoint().clone();
    let stop = server.stop_flag();
    let handle = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&bound).expect("connect");
    // Events for a session that was never opened -> remote error.
    let err = client.send_events(7, &[(41, 0)]).unwrap_err();
    assert!(matches!(err, ProtocolError::Remote { .. }), "got {err:?}");

    // Duplicate open -> remote error, original session intact.
    let mut c2 = Client::connect(&bound).expect("connect");
    c2.open(1, 0, &PowerConfig::default()).expect("open");
    let err = c2.open(1, 0, &PowerConfig::default()).unwrap_err();
    assert!(matches!(err, ProtocolError::Remote { .. }), "got {err:?}");
    let (applied, _) = c2.send_events(1, &[(41, 0), (41, 2_000)]).expect("events");
    assert_eq!(applied, 2);

    // Restoring garbage -> remote error with the snapshot code.
    let err = c2.restore(2, b"junk").unwrap_err();
    match err {
        ProtocolError::Remote { code, .. } => {
            assert_eq!(code, ibp_serve::protocol::error_code::BAD_SNAPSHOT);
        }
        other => panic!("expected Remote, got {other:?}"),
    }

    stop.store(true, Ordering::Relaxed);
    let summary = handle.join().expect("server thread");
    assert!(summary.protocol_errors >= 3, "{summary:?}");
}
