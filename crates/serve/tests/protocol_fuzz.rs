//! Fuzz-style decode tests: the frame decoders are *total* — arbitrary
//! byte soup must always return `Ok` or a typed error, never panic —
//! and structured frames survive an encode/decode round trip bit-for-bit.

use ibp_serve::protocol::{decode_client, decode_server, read_frame, ClientFrame};
use ibp_serve::{ObsReport, ServerFrame, SessionProbe};
use ibp_core::{LaneDirective, RankStats, SleepKind};
use ibp_simcore::SimDuration;
use proptest::prelude::*;

proptest! {
    /// Arbitrary payload bytes never panic either decoder.
    #[test]
    fn decoders_are_total_on_byte_soup(
        payload in proptest::collection::vec(0u8..=255, 0..512)
    ) {
        let _ = decode_client(&payload);
        let _ = decode_server(&payload);
    }

    /// Byte soup with a *valid leading kind byte* still never panics —
    /// this drives the per-kind body parsers rather than dying at the
    /// unknown-kind check.
    #[test]
    fn decoders_are_total_with_valid_kinds(
        kind_idx in 0usize..14,
        body in proptest::collection::vec(0u8..=255, 0..256)
    ) {
        let kinds = [
            0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0xEF,
        ];
        let mut payload = vec![kinds[kind_idx]];
        payload.extend_from_slice(&body);
        let _ = decode_client(&payload);
        let _ = decode_server(&payload);
    }

    /// Events frames round-trip for any batch content.
    #[test]
    fn events_roundtrip(
        session in 0u32..u32::MAX,
        events in proptest::collection::vec((0u16..u16::MAX, 0u64..u64::MAX), 0..200)
    ) {
        let frame = ClientFrame::Events { session, events };
        let back = decode_client(&frame.encode()).expect("valid frame decodes");
        prop_assert_eq!(back, frame);
    }

    /// Directives frames round-trip for any directive content.
    #[test]
    fn directives_roundtrip(
        session in 0u32..u32::MAX,
        applied in 0u64..u64::MAX,
        raw in proptest::collection::vec(
            (0u64..1_000_000, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u8..2),
            0..64
        )
    ) {
        let directives: Vec<LaneDirective> = raw
            .iter()
            .map(|&(after, delay, timer, idle, kind)| LaneDirective {
                after_event: after as usize,
                delay: SimDuration::from_ns(delay),
                timer: SimDuration::from_ns(timer),
                predicted_idle: SimDuration::from_ns(idle),
                kind: if kind == 0 { SleepKind::Wrps } else { SleepKind::Deep },
            })
            .collect();
        let frame = ServerFrame::Directives { session, events_applied: applied, directives };
        let back = decode_server(&frame.encode()).expect("valid frame decodes");
        prop_assert_eq!(back, frame);
    }

    /// Truncating any valid client frame at any point yields an error,
    /// not a panic and not a bogus success.
    #[test]
    fn truncation_never_decodes(
        cut_fraction in 0.0f64..1.0,
        events in proptest::collection::vec((0u16..100, 0u64..1_000_000), 1..50)
    ) {
        let frame = ClientFrame::Events { session: 1, events };
        let payload = frame.encode();
        let cut = ((payload.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(decode_client(&payload[..cut]).is_err());
    }

    /// `Query` round-trips for every session id — including the
    /// reserved fleet-query id `u32::MAX`, which `Query` alone among
    /// client frames is allowed to carry.
    #[test]
    fn query_roundtrip(session in 0u32..=u32::MAX) {
        let frame = ClientFrame::Query { session };
        let back = decode_client(&frame.encode()).expect("valid frame decodes");
        prop_assert_eq!(back, frame);
    }

    /// `QueryReply` round-trips with arbitrary counter values and any
    /// number of (busy) session probes, and truncating the encoding at
    /// any point errors instead of panicking or half-decoding.
    #[test]
    fn query_reply_roundtrip_and_truncation(
        session in 0u32..=u32::MAX,
        live in 0u32..10_000,
        probes in 0u32..8,
        cut_fraction in 0.0f64..1.0
    ) {
        let mut report = ObsReport::default();
        report.server.sessions_live = live;
        report.sessions = (0..probes).map(|i| SessionProbe::busy(i, i * 2, i)).collect();
        let frame = ServerFrame::QueryReply { session, report: Box::new(report) };
        let payload = frame.encode();
        let back = decode_server(&payload).expect("valid frame decodes");
        prop_assert_eq!(back, frame);
        let cut = ((payload.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(decode_server(&payload[..cut]).is_err());
    }

    /// `read_frame` on arbitrary bytes never panics and never returns a
    /// payload longer than the cap.
    #[test]
    fn read_frame_is_total(
        bytes in proptest::collection::vec(0u8..=255, 0..64)
    ) {
        let mut r = &bytes[..];
        if let Ok(Some(payload)) = read_frame(&mut r) {
            prop_assert!(payload.len() <= ibp_serve::protocol::MAX_FRAME_LEN as usize);
        }
    }
}

#[test]
fn stats_and_closed_roundtrip_default_stats() {
    let stats = RankStats::default();
    let f = ServerFrame::Stats { session: 3, stats: Box::new(stats.clone()) };
    assert_eq!(decode_server(&f.encode()).unwrap(), f);
    let f = ServerFrame::Closed { session: 3, directives_total: 0, stats: Box::new(stats) };
    assert_eq!(decode_server(&f.encode()).unwrap(), f);
}
