//! Counting-allocator proof that the metrics layer keeps the serving
//! hot path allocation-free — the observability extension of the core
//! crate's `alloc_free` suite. Three claims:
//!
//! 1. bumping every [`MetricsRegistry`] counter and gauge (what the
//!    server does per event batch, per directive frame, per queue
//!    transition) never touches the heap — they are plain atomics;
//! 2. reading them back (`summary()`, the value a `Query` reply and a
//!    scrape start from) never touches the heap;
//! 3. probing a live, predicting session engine ([`Session::probe`],
//!    the per-link row `ibpower stat`/`top` render) never touches the
//!    heap — every `SessionProbe` field is a scalar.
//!
//! The serve library itself forbids `unsafe`; this integration-test
//! binary is a separate crate, so a `#[global_allocator]` wrapper is
//! allowed here.

use ibp_serve::{MetricsRegistry, Session};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Pass-through to the system allocator that counts every heap request
/// (alloc, zeroed alloc, and growth via realloc) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Tests in this binary run concurrently; the armed window must not see
/// another test's allocations, so armed sections take this lock.
static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with allocation counting armed and return how many heap
/// requests it made.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let _guard = GATE.lock().unwrap();
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}

#[test]
fn metric_updates_are_allocation_free() {
    const ROUNDS: u64 = 10_000;
    let m = MetricsRegistry::default();
    let (allocs, ()) = count_allocs(|| {
        for i in 0..ROUNDS {
            m.sessions_opened.fetch_add(1, Ordering::Relaxed);
            m.sessions_closed.fetch_add(1, Ordering::Relaxed);
            m.events_applied.fetch_add(64, Ordering::Relaxed);
            m.directives_sent.fetch_add(3, Ordering::Relaxed);
            m.protocol_errors.fetch_add(1, Ordering::Relaxed);
            m.responses_shed.fetch_add(1, Ordering::Relaxed);
            m.worker_panics.fetch_add(1, Ordering::Relaxed);
            m.worker_respawns.fetch_add(1, Ordering::Relaxed);
            m.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
            m.persist_failures.fetch_add(1, Ordering::Relaxed);
            m.sessions_rehydrated.fetch_add(1, Ordering::Relaxed);
            m.queries_answered.fetch_add(1, Ordering::Relaxed);
            m.scrapes_served.fetch_add(1, Ordering::Relaxed);
            m.sessions_live.store(i % 7, Ordering::Relaxed);
            m.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
            m.ready_queue_depth.fetch_sub(1, Ordering::Relaxed);
            m.writer_queue_depth.store(i % 3, Ordering::Relaxed);
        }
    });
    assert_eq!(allocs, 0, "metric updates allocated {allocs} times over {ROUNDS} rounds");
    assert_eq!(m.events_applied.load(Ordering::Relaxed), 64 * ROUNDS);
}

#[test]
fn summary_reads_are_allocation_free() {
    let m = MetricsRegistry::default();
    m.events_applied.store(12_345, Ordering::Relaxed);
    let (allocs, total) = count_allocs(|| {
        let mut total = 0u64;
        for _ in 0..1_000 {
            let s = m.summary();
            total = total.wrapping_add(s.events_applied + s.sessions_opened);
        }
        total
    });
    assert_eq!(allocs, 0, "summary() allocated {allocs} times");
    assert_eq!(total, 12_345 * 1_000);
}

#[test]
fn probing_a_live_engine_is_allocation_free() {
    // Train a session into prediction mode with the ALYA-like stream
    // (three Sendrecv, two Allreduce per period), then probe it
    // repeatedly with the allocator armed — the exact sampling
    // `build_report` does under a `Query`, minus the registry lock.
    let period: [(u16, u64); 5] = {
        use ibp_trace::MpiCall::{Allreduce, Sendrecv};
        [
            (Sendrecv.id(), 300_000),
            (Sendrecv.id(), 2_000),
            (Sendrecv.id(), 3_000),
            (Allreduce.id(), 250_000),
            (Allreduce.id(), 250_000),
        ]
    };
    let mut sess = Session::open(0, ibp_core::PowerConfig::default());
    for _ in 0..60 {
        let _ = sess.apply(&period);
    }
    let baseline = sess.probe(7, 2);
    assert!(baseline.predicting, "training stream must reach prediction mode");

    let (allocs, last) = count_allocs(|| {
        let mut last = None;
        for _ in 0..1_000 {
            last = Some(sess.probe(7, 2));
        }
        last
    });
    assert_eq!(allocs, 0, "probe() allocated {allocs} times");
    assert_eq!(last.expect("probed"), baseline, "probing is idempotent");
}
