//! Counting-allocator proof that the metrics layer keeps the serving
//! hot path allocation-free — the observability extension of the core
//! crate's `alloc_free` suite. Three claims:
//!
//! 1. bumping every [`MetricsRegistry`] counter and gauge (what the
//!    server does per event batch, per directive frame, per queue
//!    transition) never touches the heap — they are plain atomics;
//! 2. reading them back (`summary()`, the value a `Query` reply and a
//!    scrape start from) never touches the heap;
//! 3. probing a live, predicting session engine ([`Session::probe`],
//!    the per-link row `ibpower stat`/`top` render) never touches the
//!    heap — every `SessionProbe` field is a scalar.
//!
//! The serve library itself forbids `unsafe`; this integration-test
//! binary is a separate crate, so a `#[global_allocator]` wrapper is
//! allowed here.

use ibp_serve::{MetricsRegistry, Session};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Pass-through to the system allocator that counts every heap request
/// (alloc, zeroed alloc, and growth via realloc) while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Tests in this binary run concurrently; the armed window must not see
/// another test's allocations, so armed sections take this lock.
static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with allocation counting armed, up to `ATTEMPTS` times, and
/// return the *minimum* count observed (plus the last run's result).
/// The counter is global, so the armed window can catch stray
/// allocations from the libtest harness's own threads (progress
/// output, result plumbing) — transient noise under a loaded machine.
/// A real allocation in the measured code is deterministic and shows
/// up in every attempt, so the minimum still proves allocation-freedom
/// while ignoring one-off bystanders.
const ATTEMPTS: usize = 5;

fn count_allocs<R>(mut f: impl FnMut() -> R) -> (u64, R) {
    let _guard = GATE.lock().unwrap();
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..ATTEMPTS {
        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        out = Some(f());
        ARMED.store(false, Ordering::SeqCst);
        best = best.min(ALLOCS.load(Ordering::SeqCst));
        if best == 0 {
            break;
        }
    }
    (best, out.expect("at least one attempt"))
}

#[test]
fn metric_updates_are_allocation_free() {
    const ROUNDS: u64 = 10_000;
    let m = MetricsRegistry::default();
    let (allocs, ()) = count_allocs(|| {
        for i in 0..ROUNDS {
            m.sessions_opened.fetch_add(1, Ordering::Relaxed);
            m.sessions_closed.fetch_add(1, Ordering::Relaxed);
            m.events_applied.fetch_add(64, Ordering::Relaxed);
            m.directives_sent.fetch_add(3, Ordering::Relaxed);
            m.protocol_errors.fetch_add(1, Ordering::Relaxed);
            m.responses_shed.fetch_add(1, Ordering::Relaxed);
            m.worker_panics.fetch_add(1, Ordering::Relaxed);
            m.worker_respawns.fetch_add(1, Ordering::Relaxed);
            m.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
            m.persist_failures.fetch_add(1, Ordering::Relaxed);
            m.sessions_rehydrated.fetch_add(1, Ordering::Relaxed);
            m.queries_answered.fetch_add(1, Ordering::Relaxed);
            m.scrapes_served.fetch_add(1, Ordering::Relaxed);
            m.sessions_live.store(i % 7, Ordering::Relaxed);
            m.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
            m.ready_queue_depth.fetch_sub(1, Ordering::Relaxed);
            m.writer_queue_depth.store(i % 3, Ordering::Relaxed);
        }
    });
    assert_eq!(allocs, 0, "metric updates allocated {allocs} times over {ROUNDS} rounds");
    // The armed section may have run several times; every full pass
    // adds exactly 64 * ROUNDS.
    let applied = m.events_applied.load(Ordering::Relaxed);
    assert!(applied >= 64 * ROUNDS && applied % (64 * ROUNDS) == 0, "applied: {applied}");
}

#[test]
fn summary_reads_are_allocation_free() {
    let m = MetricsRegistry::default();
    m.events_applied.store(12_345, Ordering::Relaxed);
    let (allocs, total) = count_allocs(|| {
        let mut total = 0u64;
        for _ in 0..1_000 {
            let s = m.summary();
            total = total.wrapping_add(s.events_applied + s.sessions_opened);
        }
        total
    });
    assert_eq!(allocs, 0, "summary() allocated {allocs} times");
    assert_eq!(total, 12_345 * 1_000);
}

#[test]
fn probing_a_live_engine_is_allocation_free() {
    // Train a session into prediction mode with the ALYA-like stream
    // (three Sendrecv, two Allreduce per period), then probe it
    // repeatedly with the allocator armed — the exact sampling
    // `build_report` does under a `Query`, minus the registry lock.
    let period: [(u16, u64); 5] = {
        use ibp_trace::MpiCall::{Allreduce, Sendrecv};
        [
            (Sendrecv.id(), 300_000),
            (Sendrecv.id(), 2_000),
            (Sendrecv.id(), 3_000),
            (Allreduce.id(), 250_000),
            (Allreduce.id(), 250_000),
        ]
    };
    let mut sess = Session::open(0, ibp_core::PowerConfig::default());
    for _ in 0..60 {
        let _ = sess.apply(&period);
    }
    let baseline = sess.probe(7, 2);
    assert!(baseline.predicting, "training stream must reach prediction mode");

    let (allocs, last) = count_allocs(|| {
        let mut last = None;
        for _ in 0..1_000 {
            last = Some(sess.probe(7, 2));
        }
        last
    });
    assert_eq!(allocs, 0, "probe() allocated {allocs} times");
    assert_eq!(last.expect("probed"), baseline, "probing is idempotent");
}
