//! Property test for session paging: under an LRU hot-set cap smaller
//! than the session count, any interleaving of event batches,
//! evictions, transparent rehydrations, and mid-stream reconnects must
//! stream directives byte-identical to the offline `annotate_rank`
//! golden path — paging is invisible to clients or it is broken.

use ibp_core::{annotate_rank, PowerConfig};
use ibp_serve::{Client, Endpoint, ProtocolError, ServeConfig, Server, SnapshotStore};
use ibp_workloads::AppKind;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ibp-evict-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One session's script and its offline golden expectations.
struct Script {
    rank: u32,
    events: Vec<(u16, u64)>,
    final_compute_ns: u64,
    golden: Vec<ibp_core::LaneDirective>,
    golden_stats: ibp_core::RankStats,
}

fn scripts(sessions: usize) -> Vec<Script> {
    let cfg = PowerConfig::default();
    let trace = AppKind::Alya.workload().generate(4, 42);
    (0..sessions)
        .map(|i| {
            let rank = &trace.ranks[i % 4];
            let golden = annotate_rank(rank, &cfg);
            Script {
                rank: rank.rank,
                events: rank
                    .call_stream()
                    .map(|(call, gap)| (call.id(), gap.as_ns()))
                    .collect(),
                final_compute_ns: rank.final_compute.as_ns(),
                golden: golden.directives,
                golden_stats: golden.stats,
            }
        })
        .collect()
}

/// Reconnect and rehydrate with bounded retries: the server processes
/// the old connection's hangup asynchronously, so the first attempts
/// may race it and see a still-live (DUPLICATE) session.
fn reconnect(
    bound: &Endpoint,
    session: u32,
) -> (Client, u64, Vec<ibp_core::LaneDirective>) {
    for _ in 0..400 {
        let mut client = Client::connect(bound).expect("reconnect");
        match client.restore_from_store(session) {
            Ok((resume_at, history)) => return (client, resume_at, history),
            Err(ProtocolError::Remote { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(other) => panic!("rehydrate after reconnect: {other:?}"),
        }
    }
    panic!("session {session} never became restorable after reconnect");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random interleavings with `max_hot_sessions` below the session
    /// count: parity per session, and the run must really have paged
    /// (nonzero evictions and rehydrations) for the property to mean
    /// anything.
    #[test]
    fn paged_interleavings_match_offline_annotation(
        sessions in 3usize..=5,
        cap in 1usize..=2,
        chunk in 8usize..48,
        order_seed in any::<u64>(),
        reconnect_mask in any::<u8>(),
    ) {
        let dir = temp_dir();
        let endpoint = Endpoint::Unix(dir.join("evict.sock"));
        let (store, _) = SnapshotStore::open(&dir.join("store")).expect("store");
        let server = Server::bind(
            &endpoint,
            ServeConfig {
                workers: 2,
                io_threads: 2,
                persist_every: 64,
                max_hot_sessions: Some(cap),
                ..Default::default()
            },
        )
        .expect("bind")
        .with_store(Arc::new(store));
        let bound = server.endpoint().clone();
        let stop = server.stop_flag();
        let handle = std::thread::spawn(move || server.run());

        let scripts = scripts(sessions);
        let mut clients: Vec<Client> = (0..sessions)
            .map(|_| Client::connect(&bound).expect("connect"))
            .collect();
        for (i, (client, script)) in clients.iter_mut().zip(&scripts).enumerate() {
            client.open(i as u32, script.rank, &PowerConfig::default()).expect("open");
        }

        let mut cursors = vec![0usize; sessions];
        let mut journals: Vec<Vec<ibp_core::LaneDirective>> =
            vec![Vec::new(); sessions];
        let mut reconnected = vec![false; sessions];
        let mut rng = order_seed | 1;
        loop {
            let live: Vec<usize> = (0..sessions)
                .filter(|&i| cursors[i] < scripts[i].events.len())
                .collect();
            if live.is_empty() {
                break;
            }
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let i = live[(rng as usize) % live.len()];
            let script = &scripts[i];

            // Mid-stream reconnect for masked sessions: vanish without
            // Close, rehydrate from the store, and restart the parity
            // journal from the replayed history.
            if !reconnected[i]
                && reconnect_mask & (1 << i) != 0
                && cursors[i] >= script.events.len() / 2
            {
                reconnected[i] = true;
                let (client, resume_at, history) = {
                    let fresh = Client::connect(&bound).expect("pre-reconnect");
                    std::mem::replace(&mut clients[i], fresh).abandon();
                    reconnect(&bound, i as u32)
                };
                clients[i] = client;
                prop_assert!(
                    resume_at as usize <= cursors[i],
                    "resume past what was sent: {} > {}", resume_at, cursors[i]
                );
                prop_assert_eq!(
                    history.as_slice(),
                    &journals[i][..history.len()],
                    "replayed history must prefix the live stream"
                );
                journals[i] = history;
                cursors[i] = resume_at as usize;
            }

            let take = (1 + (rng >> 32) as usize % chunk)
                .min(script.events.len() - cursors[i]);
            let batch = &script.events[cursors[i]..cursors[i] + take];
            let (_, directives) =
                clients[i].send_events(i as u32, batch).expect("events");
            journals[i].extend(directives);
            cursors[i] += take;
        }

        for (i, (client, script)) in clients.iter_mut().zip(&scripts).enumerate() {
            let (tail, _total, stats) =
                client.close(i as u32, script.final_compute_ns).expect("close");
            journals[i].extend(tail);
            prop_assert_eq!(&journals[i], &script.golden, "session {} parity", i);
            prop_assert_eq!(&stats, &script.golden_stats, "session {} stats", i);
        }

        drop(clients);
        stop.store(true, Ordering::Relaxed);
        let summary = handle.join().expect("server thread");
        prop_assert!(summary.evictions > 0, "no evictions happened: {:?}", summary);
        prop_assert!(
            summary.sessions_rehydrated > 0,
            "no rehydrations happened: {:?}", summary
        );
        prop_assert_eq!(summary.worker_panics, 0, "workers panicked: {:?}", summary);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
