//! Property tests for snapshot-store recovery: no byte content on disk
//! may ever panic `SnapshotStore::open` or `load` — corruption is
//! always detected, skipped, and reported. Plus the durability
//! keystone: a snapshot survives save → restore → save byte-for-byte,
//! so a rehydrated session persists records identical to the original's.

use ibp_core::{PowerConfig, RankRuntime};
use ibp_serve::store::{record_file_name, MANIFEST_NAME};
use ibp_serve::{SnapshotStore, StoreRecord};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ibp-store-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A runtime that has really learned something, so records carry a
/// non-trivial snapshot and directive history.
fn trained_runtime(rank: u32, events: usize) -> RankRuntime {
    let mut rt = RankRuntime::new(rank, PowerConfig::default());
    for i in 0..events {
        let call = if i % 5 < 3 { MpiCall::Sendrecv } else { MpiCall::Allreduce };
        let gap = SimDuration::from_us(if i % 5 == 0 { 300 } else { 2 });
        rt.intercept(call, gap);
    }
    rt
}

fn sample_record(session: u32, events: usize) -> StoreRecord {
    let rt = trained_runtime(session, events);
    StoreRecord {
        record_version: ibp_serve::store::RECORD_VERSION,
        session,
        rank: session,
        events: events as u64,
        closed: false,
        history_complete: true,
        directives: rt.directives().to_vec(),
        snapshot: rt.snapshot(),
    }
}

/// Reopen the store over mutated bytes and require calm behaviour:
/// `open` succeeds, the file is either loaded or reported skipped, and
/// `load` never panics. Returns whether the record survived.
fn recover_after(dir: &std::path::Path, session: u32, mutated: &[u8]) -> bool {
    std::fs::write(dir.join(record_file_name(session)), mutated).unwrap();
    let (store, report) = SnapshotStore::open(dir).expect("open never fails on corruption");
    let loaded = store.load(session).expect("load never fails on corruption");
    match &loaded {
        Some(r) => {
            assert_eq!(r.session, session, "a surviving record must be internally consistent");
            assert_eq!(report.loaded, 1, "{report:?}");
        }
        None => {
            assert!(
                report.skipped.iter().any(|(name, _)| name == &record_file_name(session))
                    || report.loaded == 0,
                "dropped record must be accounted for: {report:?}"
            );
        }
    }
    loaded.is_some()
}

proptest! {
    /// Truncating a valid record at any byte never panics recovery, and
    /// only the untouched full-length file can survive.
    #[test]
    fn truncation_never_panics_recovery(
        events in 8usize..96,
        cut in 0.0f64..1.0,
    ) {
        let dir = temp_dir("trunc");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, events)).unwrap();
        drop(store);
        let bytes = std::fs::read(dir.join(record_file_name(1))).unwrap();
        let keep = ((bytes.len() as f64) * cut) as usize;
        let survived = recover_after(&dir, 1, &bytes[..keep]);
        prop_assert!(!survived || keep == bytes.len(), "truncated record must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping arbitrary bits anywhere in a record never panics
    /// recovery; a flip in the payload or header is always caught.
    #[test]
    fn bit_flips_never_panic_recovery(
        events in 8usize..96,
        flips in proptest::collection::vec((0u32..u32::MAX, 0u8..8), 1..6),
    ) {
        let dir = temp_dir("flip");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(2, events)).unwrap();
        drop(store);
        let mut bytes = std::fs::read(dir.join(record_file_name(2))).unwrap();
        let mut changed = false;
        for &(pos, bit) in &flips {
            let i = pos as usize % bytes.len();
            bytes[i] ^= 1 << bit;
            changed = true;
        }
        let survived = recover_after(&dir, 2, &bytes);
        // An odd number of flips at one position may cancel out across
        // entries, so only the must-not-panic half is unconditional;
        // still, a genuinely changed file surviving means the flips
        // cancelled — verify by re-reading.
        if survived && changed {
            let now = std::fs::read(dir.join(record_file_name(2))).unwrap();
            prop_assert_eq!(&now, &bytes);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pure byte soup under a record file name never panics recovery
    /// and never yields a record.
    #[test]
    fn byte_soup_never_panics_recovery(
        soup in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let dir = temp_dir("soup");
        std::fs::create_dir_all(&dir).unwrap();
        let survived = recover_after(&dir, 5, &soup);
        prop_assert!(!survived, "random bytes must never validate as a record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Arbitrary manifest corruption never panics recovery, never loses
    /// valid records, and is healed by the reopen.
    #[test]
    fn manifest_corruption_is_healed(
        soup in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let dir = temp_dir("manifest");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, 24)).unwrap();
        store.persist(&sample_record(2, 48)).unwrap();
        drop(store);
        std::fs::write(dir.join(MANIFEST_NAME), &soup).unwrap();

        let (store, report) = SnapshotStore::open(&dir).expect("open survives manifest soup");
        prop_assert_eq!(report.loaded, 2);
        prop_assert!(store.load(1).unwrap().is_some());
        prop_assert!(store.load(2).unwrap().is_some());
        drop(store);

        // The reopen rewrote the manifest from the records.
        let (_, report) = SnapshotStore::open(&dir).expect("healed reopen");
        prop_assert!(report.manifest_ok, "{:?}", report);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Save → restore → save is byte-stable: a restored runtime's
    /// snapshot serialises to exactly the bytes of the original's, for
    /// any training stream. This is what lets a rehydrated session
    /// persist records indistinguishable from the pre-crash server's.
    #[test]
    fn snapshot_save_restore_save_is_byte_stable(
        pattern in proptest::collection::vec((0u8..2, 0u8..3), 4..160),
    ) {
        let mut rt = RankRuntime::new(0, PowerConfig::default());
        for &(call, gap) in &pattern {
            let call = if call == 0 { MpiCall::Sendrecv } else { MpiCall::Allreduce };
            let gap = SimDuration::from_us(match gap { 0 => 2, 1 => 250, _ => 300 });
            rt.intercept(call, gap);
        }
        let snap = rt.snapshot();
        let first = serde_json::to_string(&snap).expect("snapshot serialises");
        let restored = RankRuntime::from_snapshot(&snap).expect("own snapshot restores");
        let second = serde_json::to_string(&restored.snapshot()).expect("re-snapshot serialises");
        prop_assert_eq!(&first, &second, "snapshot drifted across restore");
    }
}
