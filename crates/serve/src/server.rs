//! The streaming prediction server.
//!
//! ## Threading model
//!
//! ```text
//! listener thread ──accept──▶ one reader thread per connection
//!                                   │  Open/Restore handled inline
//!                                   │  Events/Flush/Snapshot/Close pushed
//!                                   ▼  into the session's bounded mailbox
//!                            per-session mailbox (VecDeque, cap = queue_depth)
//!                                   │  first push marks the session ready
//!                                   ▼
//!                            ready queue ──▶ bounded worker pool
//!                                              │ drains one session at a time
//!                                              ▼
//!                            per-connection writer (mutex-serialised frames)
//! ```
//!
//! **Backpressure.** A session's mailbox holds at most `queue_depth`
//! pending work items. When it is full the connection's reader thread
//! blocks in `push` — it stops reading that socket, so the kernel's
//! flow control eventually pushes back on the client. A slow *sender*
//! therefore throttles its own connection only. (Sessions multiplexed
//! on one connection share that connection's reader, so they share its
//! fate — clients wanting full isolation open one connection per
//! session, as the load generator does.)
//!
//! **Fairness.** A worker drains at most [`DRAIN_QUANTUM`] items from
//! one mailbox per scheduling turn, then re-enqueues the session, so a
//! continuously-fed session cannot pin a worker while other ready
//! sessions wait. One limitation is deliberate: responses are written
//! synchronously from worker threads, so a client that stops *reading*
//! its socket can block a worker inside the write once the kernel
//! buffer fills, and `workers` such stalled consumers stall the pool.
//! Full isolation would need per-connection writer threads with bounded
//! outbound queues; until then, size `workers` above the number of
//! untrusted slow readers.
//!
//! **Ordering.** The `scheduled` flag inside the mailbox mutex
//! guarantees at most one outstanding ready-queue entry per session, so
//! exactly one worker drains a session at a time and work is applied in
//! arrival order. The flag is cleared under the same lock that observes
//! the queue empty, so a concurrent push either sees `scheduled == true`
//! (the worker has not yet drained its item) or re-schedules the
//! session — a wakeup can never be lost. A worker whose quantum expires
//! with items still queued keeps the flag set and re-enqueues the cell
//! itself, preserving the single-drainer invariant.

use crate::protocol::{
    decode_client, error_code, read_frame_len, write_frame, ClientFrame, ProtocolError,
    ServerFrame, CONNECTION_SESSION,
};
use crate::session::Session;
use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl Endpoint {
    /// Connect a client stream to this endpoint.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection (Nagle disabled: frames are latency-sensitive).
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// Clone the handle so one side can read while the other writes.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    /// Bound every blocking read so the owner can poll a stop flag.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Shut down both directions so the peer sees EOF immediately.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads applying event batches (the bounded pool).
    pub workers: usize,
    /// Pending work items per session before its reader blocks.
    pub queue_depth: usize,
    /// Emit an unsolicited [`ServerFrame::Stats`] every this many events
    /// per session (0 disables; `Flush` always answers immediately).
    pub stats_every: u64,
    /// Stop the server after this many sessions have closed cleanly.
    /// `None` runs until [`Server::stop_flag`] is raised.
    pub session_limit: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            stats_every: 0,
            session_limit: None,
        }
    }
}

/// Lifetime counters reported when the server stops.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Sessions opened (fresh or restored).
    pub sessions_opened: u64,
    /// Sessions that finished with a `Close` frame.
    pub sessions_closed: u64,
    /// Events applied across all sessions.
    pub events_applied: u64,
    /// Lane directives streamed back.
    pub directives_sent: u64,
    /// Protocol-level errors (malformed frames, unknown sessions, …).
    pub protocol_errors: u64,
}

#[derive(Default)]
struct Counters {
    opened: AtomicU64,
    closed: AtomicU64,
    events: AtomicU64,
    directives: AtomicU64,
    errors: AtomicU64,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            sessions_opened: self.opened.load(Ordering::Relaxed),
            sessions_closed: self.closed.load(Ordering::Relaxed),
            events_applied: self.events.load(Ordering::Relaxed),
            directives_sent: self.directives.load(Ordering::Relaxed),
            protocol_errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

enum Work {
    Events(Vec<(u16, u64)>),
    Flush,
    Snapshot,
    Close(u64),
}

/// Work items a worker applies from one mailbox before handing the
/// session back to the ready queue (see the module docs on fairness).
const DRAIN_QUANTUM: usize = 32;

struct MailboxState {
    deque: VecDeque<Work>,
    scheduled: bool,
}

/// One live session plus its mailbox and its connection's writer.
struct SessionCell {
    id: u32,
    state: Mutex<Option<Session>>,
    mailbox: Mutex<MailboxState>,
    space: Condvar,
    cap: usize,
    writer: Arc<Mutex<BufWriter<Stream>>>,
}

impl SessionCell {
    /// Push work, blocking while the mailbox is full (backpressure).
    /// Returns whether the session must be (re-)scheduled.
    fn push(&self, work: Work, stop: &AtomicBool) -> bool {
        let mut mb = self.mailbox.lock().unwrap();
        while mb.deque.len() >= self.cap {
            if stop.load(Ordering::Relaxed) {
                return false;
            }
            let (guard, _) = self
                .space
                .wait_timeout(mb, Duration::from_millis(100))
                .unwrap();
            mb = guard;
        }
        mb.deque.push_back(work);
        let needs_schedule = !mb.scheduled;
        mb.scheduled = true;
        needs_schedule
    }

    /// Pop the next work item; clears `scheduled` (under the same lock)
    /// when the mailbox is empty.
    fn pop(&self) -> Option<Work> {
        let mut mb = self.mailbox.lock().unwrap();
        match mb.deque.pop_front() {
            Some(w) => {
                self.space.notify_one();
                Some(w)
            }
            None => {
                mb.scheduled = false;
                None
            }
        }
    }

    /// Called when a drain quantum expires while the worker still holds
    /// the `scheduled` token (i.e. `pop` never returned `None`): keep
    /// the token and report `true` if items remain (the caller must
    /// re-enqueue the cell), otherwise release the token so the next
    /// push re-schedules the session.
    fn needs_requeue(&self) -> bool {
        let mut mb = self.mailbox.lock().unwrap();
        if mb.deque.is_empty() {
            mb.scheduled = false;
            false
        } else {
            true
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// The streaming prediction server. [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: Listener,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    bound: Endpoint,
}

impl Server {
    /// Bind the listening socket (a stale Unix socket file is replaced).
    pub fn bind(endpoint: &Endpoint, cfg: ServeConfig) -> Result<Server, ProtocolError> {
        let (listener, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let bound = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), bound)
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l, path.clone()), Endpoint::Unix(path.clone()))
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        Ok(Server {
            listener,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
            bound,
        })
    }

    /// The actual bound endpoint (resolves a `:0` TCP port request).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.bound
    }

    /// A flag that stops [`Server::run`] when set from another thread.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accept and serve connections until the stop flag is raised or
    /// `session_limit` sessions have closed. Blocks; returns lifetime
    /// counters.
    pub fn run(self) -> ServeSummary {
        let counters = Arc::new(Counters::default());
        let (ready_tx, ready_rx) = mpsc::channel::<Arc<SessionCell>>();
        let ready_rx = Arc::new(Mutex::new(ready_rx));

        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&ready_rx);
                let tx = ready_tx.clone();
                let stop = Arc::clone(&self.stop);
                let counters = Arc::clone(&counters);
                let stats_every = self.cfg.stats_every;
                std::thread::spawn(move || worker_loop(&rx, &tx, &stop, &counters, stats_every))
            })
            .collect();

        let mut readers = Vec::new();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(limit) = self.cfg.session_limit {
                if counters.closed.load(Ordering::Relaxed) >= limit {
                    break;
                }
            }
            match self.listener.accept() {
                Ok(stream) => {
                    let cfg = self.cfg.clone();
                    let stop = Arc::clone(&self.stop);
                    let counters = Arc::clone(&counters);
                    let ready = ready_tx.clone();
                    readers.push(std::thread::spawn(move || {
                        serve_connection(stream, &cfg, &stop, &counters, &ready);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    counters.errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        for r in readers {
            let _ = r.join();
        }
        drop(ready_tx);
        for w in workers {
            let _ = w.join();
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        counters.summary()
    }
}

/// Fill `buf` completely, retrying read timeouts while the server runs.
/// `Ok(false)` means a clean EOF before the first byte.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<bool, ProtocolError> {
    let mut got = 0;
    while got < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "server shutting down",
            )));
        }
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )))
                }
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

fn send_frame(writer: &Mutex<BufWriter<Stream>>, frame: &ServerFrame) {
    let payload = frame.encode();
    let mut w = writer.lock().unwrap();
    match write_frame(&mut *w, &payload) {
        Ok(()) => {}
        Err(ProtocolError::FrameTooLarge { len, max }) => {
            // The response outgrew the frame cap (a snapshot embedding
            // a long stream's grams can). Nothing hit the wire yet, so
            // tell the client in-band instead of leaving it blocked on
            // a reply that will never come.
            let err = ServerFrame::Error {
                session: frame.session(),
                code: error_code::FRAME_TOO_LARGE,
                message: format!("response frame of {len} bytes exceeds the {max}-byte cap"),
            };
            if write_frame(&mut *w, &err.encode()).is_err() {
                let _ = w.get_ref().shutdown();
            }
        }
        Err(_) => {
            // A partial write leaves the stream mid-frame; no in-band
            // recovery is possible. Drop the connection so the client
            // sees EOF instead of a corrupt frame or a silent hang.
            let _ = w.get_ref().shutdown();
        }
    }
}

fn send_error(
    writer: &Mutex<BufWriter<Stream>>,
    counters: &Counters,
    session: u32,
    code: u16,
    message: String,
) {
    counters.errors.fetch_add(1, Ordering::Relaxed);
    send_frame(
        writer,
        &ServerFrame::Error { session, code, message },
    );
}

/// One connection's read loop: handshake, then route frames until EOF,
/// a protocol error, or server shutdown.
fn serve_connection(
    stream: Stream,
    cfg: &ServeConfig,
    stop: &AtomicBool,
    counters: &Arc<Counters>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(BufWriter::with_capacity(64 * 1024, w))),
        Err(_) => {
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = stream;

    // Handshake: validate the client's hello, then answer with ours.
    let mut hello = [0u8; 6];
    match fill(&mut reader, &mut hello, stop) {
        Ok(true) => {}
        _ => return,
    }
    if hello[..4] != crate::protocol::MAGIC {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let peer = u16::from_le_bytes([hello[4], hello[5]]);
    if peer != crate::protocol::PROTOCOL_VERSION {
        counters.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    {
        let mut w = writer.lock().unwrap();
        if crate::protocol::write_hello(&mut *w).is_err() {
            return;
        }
    }

    let mut sessions: HashMap<u32, Arc<SessionCell>> = HashMap::new();
    loop {
        let mut len_buf = [0u8; 4];
        match fill(&mut reader, &mut len_buf, stop) {
            Ok(true) => {}
            Ok(false) => break, // clean EOF at a frame boundary
            Err(_) => break,
        }
        let len = match read_frame_len(len_buf) {
            Ok(len) => len,
            Err(e) => {
                send_error(
                    &writer,
                    counters,
                    CONNECTION_SESSION,
                    error_code::MALFORMED,
                    e.to_string(),
                );
                break;
            }
        };
        let mut payload = vec![0u8; len];
        if !matches!(fill(&mut reader, &mut payload, stop), Ok(true)) {
            break;
        }
        let frame = match decode_client(&payload) {
            Ok(f) => f,
            Err(e) => {
                send_error(
                    &writer,
                    counters,
                    CONNECTION_SESSION,
                    error_code::MALFORMED,
                    e.to_string(),
                );
                break;
            }
        };
        route(frame, &mut sessions, cfg, stop, counters, ready, &writer);
    }
    // Dropping `sessions` abandons any session the client never closed;
    // queued work still drains (workers hold their own Arcs) but the
    // session no longer counts toward `session_limit`.
}

#[allow(clippy::too_many_arguments)]
fn route(
    frame: ClientFrame,
    sessions: &mut HashMap<u32, Arc<SessionCell>>,
    cfg: &ServeConfig,
    stop: &AtomicBool,
    counters: &Arc<Counters>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
    writer: &Arc<Mutex<BufWriter<Stream>>>,
) {
    match frame {
        ClientFrame::Open { session, rank, config } => {
            if sessions.contains_key(&session) {
                send_error(
                    writer,
                    counters,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            let cell = new_cell(session, Session::open(rank, *config), cfg, writer);
            sessions.insert(session, cell);
            counters.opened.fetch_add(1, Ordering::Relaxed);
            send_frame(writer, &ServerFrame::OpenAck { session });
        }
        ClientFrame::Restore { session, snapshot } => {
            if sessions.contains_key(&session) {
                send_error(
                    writer,
                    counters,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            match Session::restore(&snapshot) {
                Ok(restored) => {
                    let cell = new_cell(session, restored, cfg, writer);
                    sessions.insert(session, cell);
                    counters.opened.fetch_add(1, Ordering::Relaxed);
                    send_frame(writer, &ServerFrame::OpenAck { session });
                }
                Err(e) => send_error(
                    writer,
                    counters,
                    session,
                    error_code::BAD_SNAPSHOT,
                    e.to_string(),
                ),
            }
        }
        ClientFrame::Events { session, events } => {
            enqueue(sessions, session, Work::Events(events), stop, counters, ready, writer);
        }
        ClientFrame::Flush { session } => {
            enqueue(sessions, session, Work::Flush, stop, counters, ready, writer);
        }
        ClientFrame::Snapshot { session } => {
            enqueue(sessions, session, Work::Snapshot, stop, counters, ready, writer);
        }
        ClientFrame::Close { session, final_compute_ns } => {
            let routed = enqueue(
                sessions,
                session,
                Work::Close(final_compute_ns),
                stop,
                counters,
                ready,
                writer,
            );
            if routed {
                // No further frames may address this id on this
                // connection (a later Open may reuse it for a new
                // session).
                sessions.remove(&session);
            }
        }
    }
}

fn new_cell(
    id: u32,
    session: Session,
    cfg: &ServeConfig,
    writer: &Arc<Mutex<BufWriter<Stream>>>,
) -> Arc<SessionCell> {
    Arc::new(SessionCell {
        id,
        state: Mutex::new(Some(session)),
        mailbox: Mutex::new(MailboxState { deque: VecDeque::new(), scheduled: false }),
        space: Condvar::new(),
        cap: cfg.queue_depth.max(1),
        writer: Arc::clone(writer),
    })
}

fn enqueue(
    sessions: &mut HashMap<u32, Arc<SessionCell>>,
    session: u32,
    work: Work,
    stop: &AtomicBool,
    counters: &Arc<Counters>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
    writer: &Arc<Mutex<BufWriter<Stream>>>,
) -> bool {
    let Some(cell) = sessions.get(&session) else {
        send_error(
            writer,
            counters,
            session,
            error_code::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        );
        return false;
    };
    if cell.push(work, stop) {
        let _ = ready.send(Arc::clone(cell));
    }
    true
}

fn worker_loop(
    ready: &Mutex<mpsc::Receiver<Arc<SessionCell>>>,
    requeue: &mpsc::Sender<Arc<SessionCell>>,
    stop: &AtomicBool,
    counters: &Counters,
    stats_every: u64,
) {
    loop {
        // Workers hold a `requeue` sender, so the channel never
        // disconnects while they live — poll the stop flag instead of
        // relying on `recv` erroring out at shutdown.
        let cell = {
            let rx = ready.lock().unwrap();
            rx.recv_timeout(Duration::from_millis(100))
        };
        let cell = match cell {
            Ok(cell) => cell,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut emptied = false;
        for _ in 0..DRAIN_QUANTUM {
            match cell.pop() {
                Some(work) => handle_work(&cell, work, counters, stats_every),
                None => {
                    emptied = true; // `pop` released the scheduled token
                    break;
                }
            }
        }
        if !emptied && cell.needs_requeue() {
            let _ = requeue.send(Arc::clone(&cell));
        }
    }
}

fn handle_work(cell: &SessionCell, work: Work, counters: &Counters, stats_every: u64) {
    let mut guard = cell.state.lock().unwrap();
    let Some(sess) = guard.as_mut() else {
        drop(guard);
        send_error(
            &cell.writer,
            counters,
            cell.id,
            error_code::UNKNOWN_SESSION,
            format!("session {} already closed", cell.id),
        );
        return;
    };
    match work {
        Work::Events(events) => {
            counters.events.fetch_add(events.len() as u64, Ordering::Relaxed);
            let (events_applied, directives) = sess.apply(&events);
            counters
                .directives
                .fetch_add(directives.len() as u64, Ordering::Relaxed);
            let stats = (stats_every > 0 && sess.events_since_stats() >= stats_every)
                .then(|| {
                    sess.mark_stats_emitted();
                    sess.stats()
                });
            drop(guard);
            send_frame(
                &cell.writer,
                &ServerFrame::Directives { session: cell.id, events_applied, directives },
            );
            if let Some(stats) = stats {
                send_frame(
                    &cell.writer,
                    &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) },
                );
            }
        }
        Work::Flush => {
            let stats = sess.stats();
            sess.mark_stats_emitted();
            drop(guard);
            send_frame(
                &cell.writer,
                &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) },
            );
        }
        Work::Snapshot => {
            let snapshot = sess.snapshot_bytes();
            drop(guard);
            send_frame(
                &cell.writer,
                &ServerFrame::SnapshotData { session: cell.id, snapshot },
            );
        }
        Work::Close(final_compute_ns) => {
            let sess = guard.take().expect("checked above");
            drop(guard);
            let events_applied = sess.events_applied();
            let (fresh, directives_total, stats) = sess.close(final_compute_ns);
            counters
                .directives
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            counters.closed.fetch_add(1, Ordering::Relaxed);
            if !fresh.is_empty() {
                send_frame(
                    &cell.writer,
                    &ServerFrame::Directives {
                        session: cell.id,
                        events_applied,
                        directives: fresh,
                    },
                );
            }
            send_frame(
                &cell.writer,
                &ServerFrame::Closed {
                    session: cell.id,
                    directives_total,
                    stats: Box::new(stats),
                },
            );
        }
    }
}
