//! The streaming prediction server.
//!
//! ## Threading model
//!
//! ```text
//!  event-loop threads (io_threads; loop 0 also owns the listener)
//!    epoll ──▶ per-connection state machine (frame reassembly)
//!    │             │  Open/Restore/Query handled inline
//!    │             │  Events/Flush/Snapshot/Close pushed into the
//!    │             ▼  session's bounded mailbox
//!    │   per-session mailbox (VecDeque, cap = queue_depth)
//!    │             │  first push marks the session ready
//!    │             ▼
//!    │        ready queue ◀── worker pool (supervised, respawned)
//!    │             │  a worker drains one session at a time
//!    │             ▼
//!    │   per-connection outbound queue (bounded, shed-oldest)
//!    │             │  worker push kicks the owning loop's eventfd
//!    └──◀──────────┘  loop encodes + writes on writability
//! ```
//!
//! Connections are nonblocking and owned by a small fixed pool of
//! event-loop threads (round-robin at accept). Each loop runs a
//! level-triggered [`epoll`] poller over its connections, one `eventfd`
//! waker (for worker→loop notifications), and the shared shutdown
//! eventfd; loop 0 additionally owns the listening socket, so accept
//! readiness — not a sleep poll — drives new connections.
//!
//! **Backpressure (inbound).** A session's mailbox holds at most
//! `queue_depth` pending work items. When it is full the connection
//! *parks*: the loop stashes the unroutable work item, stops reading
//! that socket (drops `EPOLLIN` interest), and registers a waiter on
//! the mailbox. The worker's next `pop` re-arms the connection through
//! the loop's waker — the parked item is retried, reading resumes, and
//! kernel flow control meanwhile pushes back on the client. A slow
//! *sender* therefore throttles its own connection only. (Sessions
//! multiplexed on one connection share that connection's read path, so
//! they share its fate — clients wanting full isolation open one
//! connection per session.)
//!
//! **Overload shedding (outbound).** Responses are never written from
//! worker threads. Each connection owns a bounded outbound queue;
//! workers enqueue, kick the owning event loop, and move on, so a
//! client that stops *reading* its socket can no longer stall the
//! worker pool. When a connection's queue overflows, the oldest queued
//! responses are shed and a single in-band [`ServerFrame::Error`] with
//! [`error_code::OVERLOAD`] tells the client its response stream has a
//! gap — the resilient client reconnects and restores. Memory per
//! connection stays bounded no matter how slow the reader: queued
//! frames move to the write buffer only once it has fully drained.
//!
//! **Fairness.** A worker drains at most [`DRAIN_QUANTUM`] items from
//! one mailbox per scheduling turn, then re-enqueues the session, so a
//! continuously-fed session cannot pin a worker while other ready
//! sessions wait. Event loops read at most a fixed budget per
//! connection per wake before moving on (level triggering re-notifies).
//!
//! **Ordering.** The `scheduled` flag inside the mailbox mutex
//! guarantees at most one outstanding ready-queue entry per session, so
//! exactly one worker drains a session at a time and work is applied in
//! arrival order. The flag is cleared under the same lock that observes
//! the queue empty, so a concurrent push either sees `scheduled == true`
//! (the worker has not yet drained its item) or re-schedules the
//! session — a wakeup can never be lost. The park/unpark handshake has
//! the same shape: the waiter is installed under the mailbox lock that
//! observed it full, and a non-empty mailbox is by construction
//! scheduled, so a future `pop` (which fires the waiter) is guaranteed.
//!
//! **Session table sharding.** The live-session registry is split
//! across [`SESSION_TABLE_SHARDS`] independently locked shards (hash =
//! `id % shards`), so Open/lookup/Close from different event loops
//! never serialize on one table lock; per-shard occupancy is exported
//! as a labelled gauge.
//!
//! **Session paging (LRU eviction).** With `max_hot_sessions` set (and
//! a store attached), only that many *hot* engines live in memory. When
//! a hot-add overflows the cap, the least-recently-touched idle session
//! is persisted to the [`SnapshotStore`] and its engine dropped
//! (`Cold`); the cell, mailbox, and outbound plumbing stay. Work
//! arriving for a cold session transparently rehydrates it from its
//! record first (`sessions_rehydrated`), which may in turn evict
//! another — millions of mostly-idle sessions fit in bounded memory.
//! Eviction persists *while holding the engine lock*, so a concurrent
//! rehydrate can never read a stale record.
//!
//! **Panic isolation.** Each work item is applied under
//! `catch_unwind`: a panic poisons nothing (locks are acquired
//! poison-tolerantly), retires only the offending session, and answers
//! the client with an [`error_code::INTERNAL`] error. The `run` thread
//! supervises the worker pool and respawns any thread that dies.
//!
//! **Durability.** With a [`SnapshotStore`] attached, sessions persist
//! their full learned state (plus directive history) every
//! `persist_every` applied events, on every eviction, before every
//! `Close` acknowledgement, when their connection drops, and in a
//! final sweep when the server drains. A restarted server rehydrates
//! them for clients that `Restore` with an empty snapshot body. See
//! the `store` module docs for the crash-safety contract.
//!
//! **Shutdown.** [`Server::stop_flag`] plus [`Server::wake_fd`] (an
//! eventfd every loop watches) give signal handlers a bounded-latency
//! drain path: one atomic store and one `write(2)`, both
//! async-signal-safe, and every loop wakes immediately instead of
//! finishing a poll quantum. Loops also tick every [`TICK_MS`] so a
//! bare `stop` store (no wake) still drains promptly.

use crate::chaos::ChaosConfig;
use crate::metrics::{
    spawn_exporter, MetricsRegistry, ObsReport, ServerProbe, SessionProbe, StoreProbe,
};
use crate::protocol::{
    decode_client, error_code, read_frame_header, verify_frame_crc, ClientFrame, ProtocolError,
    ServerFrame, CONNECTION_SESSION, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use crate::session::Session;
use crate::store::{SnapshotStore, StoreRecord, RECORD_VERSION};
use epoll::{Events, Interest, Poller, Waker};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

/// Lock a mutex tolerating poisoning: every critical section in this
/// module leaves the protected data structurally valid even if the
/// holder panicked (single push/pop/insert operations), so the poison
/// flag carries no information worth crashing a second thread over.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl Endpoint {
    /// Connect a client stream to this endpoint.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A connected byte stream over either transport, optionally wrapped
/// in the fault-injecting chaos harness.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection (Nagle disabled: frames are latency-sensitive).
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
    /// A fault-injecting wrapper around either transport (see
    /// [`crate::chaos`]).
    Chaos(crate::chaos::ChaosStream),
}

impl Stream {
    /// Clone the handle so one side can read while the other writes.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Chaos(s) => s.try_clone().map(Stream::Chaos),
        }
    }

    /// Bound every blocking read so the owner can poll a stop flag.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Chaos(s) => s.get_ref().set_read_timeout(dur),
        }
    }

    /// Bound every blocking write so a stuck peer cannot pin the
    /// connection's writer thread forever.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Chaos(s) => s.get_ref().set_write_timeout(dur),
        }
    }

    /// Switch the underlying socket between blocking and nonblocking
    /// mode (the reactor runs every accepted connection nonblocking).
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
            Stream::Chaos(s) => s.get_ref().set_nonblocking(nonblocking),
        }
    }

    /// The raw fd, for epoll registration. Chaos wrappers register the
    /// inner transport fd — fault injection happens on read/write, not
    /// on readiness.
    pub fn raw_fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
            Stream::Chaos(s) => s.get_ref().raw_fd(),
        }
    }

    /// Shut down both directions so the peer sees EOF immediately.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Chaos(s) => s.get_ref().shutdown(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
            Stream::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
            Stream::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
            Stream::Chaos(s) => s.flush(),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads applying event batches (the bounded pool).
    pub workers: usize,
    /// Event-loop (reactor) threads owning the nonblocking
    /// connections. Loop 0 also owns the listener. Two saturate the
    /// protocol path for most deployments; raise for very high
    /// connection counts.
    pub io_threads: usize,
    /// Pending work items per session before its connection parks
    /// (stops reading) for backpressure.
    pub queue_depth: usize,
    /// Emit an unsolicited [`ServerFrame::Stats`] every this many events
    /// per session (0 disables; `Flush` always answers immediately).
    pub stats_every: u64,
    /// Stop the server after this many sessions have closed cleanly.
    /// `None` runs until [`Server::stop_flag`] is raised.
    pub session_limit: Option<u64>,
    /// Outbound frames queued per connection before the oldest are
    /// shed with an in-band overload error.
    pub write_queue: usize,
    /// Drop a connection when no frame arrives for this many
    /// milliseconds (0 disables). Abandoned connections otherwise hold
    /// their registration until the process exits.
    pub idle_timeout_ms: u64,
    /// Drop a connection whose peer has not accepted any bytes for
    /// this many milliseconds while responses are pending (0 disables).
    pub write_timeout_ms: u64,
    /// Persist each store-backed session every this many applied
    /// events (0 = only on `Close` and at drain). Ignored without a
    /// store.
    pub persist_every: u64,
    /// Cap on *hot* (in-memory) session engines; the least-recently
    /// touched idle engines beyond it are evicted to the snapshot
    /// store and rehydrated transparently on their next work item.
    /// Requires a store ([`Server::with_store`]); ignored without one.
    /// `None` keeps every open session hot.
    pub max_hot_sessions: Option<usize>,
    /// Serve Prometheus text exposition over plaintext HTTP/1.0 on
    /// this address (e.g. `127.0.0.1:9464`; port 0 picks a free port).
    /// `None` disables the exporter; the [`MetricsRegistry`] is live
    /// either way (it is also what `Query` frames report).
    pub metrics_addr: Option<String>,
    /// Fault-inject accepted connections (tests and soak runs only;
    /// `None` = no wrapper, zero overhead).
    pub chaos: Option<ChaosConfig>,
    /// Chaos-test hook: a worker panics when it applies an event with
    /// this call id, exercising panic isolation end to end. Never set
    /// in production.
    #[doc(hidden)]
    pub panic_on_call: Option<u16>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            io_threads: 2,
            queue_depth: 64,
            stats_every: 0,
            session_limit: None,
            write_queue: 256,
            idle_timeout_ms: 0,
            write_timeout_ms: 30_000,
            persist_every: 256,
            max_hot_sessions: None,
            metrics_addr: None,
            chaos: None,
            panic_on_call: None,
        }
    }
}

/// Lifetime counters reported when the server stops (and, live, in
/// every [`ObsReport`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Sessions opened (fresh or restored).
    pub sessions_opened: u64,
    /// Sessions that finished with a `Close` frame.
    pub sessions_closed: u64,
    /// Events applied across all sessions.
    pub events_applied: u64,
    /// Lane directives streamed back.
    pub directives_sent: u64,
    /// Protocol-level errors (malformed frames, unknown sessions, …).
    pub protocol_errors: u64,
    /// Responses shed from overloaded connection write queues.
    pub responses_shed: u64,
    /// Worker panics caught and isolated to their session.
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub worker_respawns: u64,
    /// Session records persisted to the snapshot store.
    pub snapshots_persisted: u64,
    /// Persist attempts that failed (disk errors).
    pub persist_failures: u64,
    /// Sessions rehydrated from the store (empty-body `Restore`, or
    /// transparently when work arrived for an evicted session).
    pub sessions_rehydrated: u64,
    /// Hot session engines evicted to the store by the LRU pager.
    pub evictions: u64,
}

/// Shards in the live-session registry. Session id modulo this picks
/// the shard, so lookups from different event loops rarely contend.
pub const SESSION_TABLE_SHARDS: usize = 8;

/// Reactor poll quantum: the upper bound on how stale idle/write
/// timeout checks and a waker-less stop request can get.
const TICK_MS: i32 = 25;

/// Everything shared by the event loops and workers.
struct Shared {
    cfg: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    /// Raised to stop the server (public flag, shared with
    /// [`Server::stop_flag`]).
    stop: Arc<AtomicBool>,
    /// Raised once the event loops have drained; workers exit instead
    /// of waiting for more work.
    drain: AtomicBool,
    store: Option<Arc<SnapshotStore>>,
    /// Every live session, for `Query` fleet probes and the drain
    /// sweep, sharded by `id % SESSION_TABLE_SHARDS`. Weak: a dropped
    /// connection's cells must not leak here.
    shards: Vec<Mutex<HashMap<u32, Weak<SessionCell>>>>,
    /// LRU recency order over hot sessions (only used when
    /// `max_hot_sessions` is set).
    lru: Mutex<LruState>,
    /// The shutdown eventfd every loop watches; `notify` gives signal
    /// handlers and `session_limit` a bounded-latency drain.
    shutdown: Arc<Waker>,
    /// Monotonic accepted-connection counter (chaos reseeding).
    conn_seq: AtomicU64,
}

enum Work {
    Events(Vec<(u16, u64)>),
    Flush,
    Snapshot,
    Close(u64),
}

/// Work items a worker applies from one mailbox before handing the
/// session back to the ready queue (see the module docs on fairness).
const DRAIN_QUANTUM: usize = 32;

// ------------------------------------------------------- outbound queue

struct OutboundState {
    frames: VecDeque<Vec<u8>>,
    /// Set when the socket died: producers drop their frames instead
    /// of queueing.
    dead: bool,
    /// An overload error frame is already queued; coalesces repeat
    /// shed bursts into one in-band notification.
    overload_pending: bool,
    /// A loop service request for this connection is already pending;
    /// coalesces a burst of pushes into one eventfd kick.
    flush_queued: bool,
}

/// One connection's bounded outbound queue. Workers push encoded
/// frames without ever blocking on the socket and kick the owning
/// event loop, which encodes and writes them on writability.
struct ConnTx {
    q: Mutex<OutboundState>,
    cap: usize,
    metrics: Arc<MetricsRegistry>,
    /// The event loop that owns the connection's socket.
    home: Arc<LoopHandle>,
    /// The connection's token in that loop.
    token: u64,
}

impl ConnTx {
    fn new(cap: usize, metrics: Arc<MetricsRegistry>, home: Arc<LoopHandle>, token: u64) -> Arc<ConnTx> {
        Arc::new(ConnTx {
            q: Mutex::new(OutboundState {
                frames: VecDeque::new(),
                dead: false,
                overload_pending: false,
                flush_queued: false,
            }),
            // Room for at least one response plus the overload error.
            cap: cap.max(2),
            metrics,
            home,
            token,
        })
    }

    /// Queue one encoded frame, shedding the oldest entries (plus one
    /// in-band overload error) when the queue is full. Never blocks on
    /// the socket. `wake` kicks the owning loop (callers already on
    /// that loop skip it — the loop flushes after servicing the
    /// connection anyway). Returns frames shed.
    fn push(&self, payload: Vec<u8>, wake: bool) -> u64 {
        let mut q = lock_ok(&self.q);
        if q.dead {
            return 0;
        }
        let mut shed = 0u64;
        let mut queued = 1u64;
        if q.frames.len() >= self.cap {
            while q.frames.len() >= self.cap.saturating_sub(1) {
                q.frames.pop_front();
                shed += 1;
            }
            self.metrics.responses_shed.fetch_add(shed, Ordering::Relaxed);
            if !q.overload_pending {
                q.overload_pending = true;
                let err = ServerFrame::Error {
                    session: CONNECTION_SESSION,
                    code: error_code::OVERLOAD,
                    message: "outbound queue overflowed; older responses were shed — \
                              reconnect and restore"
                        .into(),
                };
                q.frames.push_back(err.encode());
                queued += 1;
            }
        }
        q.frames.push_back(payload);
        let kick = wake && !q.flush_queued;
        if kick {
            q.flush_queued = true;
        }
        drop(q);
        // Net change to the fleet-wide writer-queue occupancy gauge.
        if queued >= shed {
            self.metrics.writer_queue_depth.fetch_add(queued - shed, Ordering::Relaxed);
        } else {
            self.metrics.writer_queue_depth.fetch_sub(shed - queued, Ordering::Relaxed);
        }
        if kick {
            self.home.request_service(self.token);
        }
        shed
    }

    /// Drain every queued frame for the owning loop to encode. Clears
    /// the kick-coalescing flag under the same lock, so pushes after
    /// this drain re-notify.
    fn take_batch(&self, into: &mut Vec<Vec<u8>>) {
        let mut q = lock_ok(&self.q);
        if q.frames.is_empty() {
            q.flush_queued = false;
            return;
        }
        into.extend(q.frames.drain(..));
        q.overload_pending = false;
        q.flush_queued = false;
        self.metrics
            .writer_queue_depth
            .fetch_sub(into.len() as u64, Ordering::Relaxed);
    }

    fn is_empty(&self) -> bool {
        lock_ok(&self.q).frames.is_empty()
    }

    /// The socket died: drop queued frames and refuse new ones.
    fn mark_dead(&self) {
        let mut q = lock_ok(&self.q);
        q.dead = true;
        self.metrics
            .writer_queue_depth
            .fetch_sub(q.frames.len() as u64, Ordering::Relaxed);
        q.frames.clear();
    }
}

// ------------------------------------------------------------- sessions

/// Where a worker's `pop` should send its "mailbox has space again"
/// signal: the loop (and connection token) parked on this mailbox.
struct Waiter {
    home: Arc<LoopHandle>,
    token: u64,
}

struct MailboxState {
    deque: VecDeque<Work>,
    scheduled: bool,
    /// A parked connection waiting for space (at most one: a session's
    /// frames all arrive on one connection).
    waiter: Option<Waiter>,
}

/// A session engine's residency state. `Cold` keeps the cell (mailbox,
/// registry entry, connection plumbing) while the engine itself lives
/// only in the snapshot store; `Retired` is terminal (closed or
/// panicked).
enum SessionSlot {
    Hot(Box<Session>),
    Cold,
    Retired,
}

/// One live session plus its mailbox and its connection's outbound
/// queue.
struct SessionCell {
    id: u32,
    /// The rank the session annotates, copied out of the session so a
    /// `Query` probe can still label a cell whose engine is checked out
    /// by a worker (or paged out, or already retired).
    rank: u32,
    state: Mutex<SessionSlot>,
    mailbox: Mutex<MailboxState>,
    cap: usize,
    tx: Arc<ConnTx>,
    /// For residency-gauge accounting on drop and LRU upkeep.
    metrics: Arc<MetricsRegistry>,
}

/// Outcome of a non-blocking mailbox push.
enum PushOutcome {
    /// Queued; `true` means the session must be (re-)scheduled.
    Queued(bool),
    /// Mailbox full: the work item comes back, the waiter was
    /// installed, and the connection must park (stop reading) until
    /// the next `pop` fires it.
    Full(Work),
}

impl SessionCell {
    /// Push work without blocking. When the mailbox is full, install
    /// `waiter` (under the same lock that observed fullness — a
    /// concurrent `pop` therefore cannot miss it) and hand the work
    /// back for the connection to stash.
    fn try_push(&self, work: Work, waiter: impl FnOnce() -> Waiter) -> PushOutcome {
        let mut mb = lock_ok(&self.mailbox);
        if mb.deque.len() >= self.cap {
            mb.waiter = Some(waiter());
            return PushOutcome::Full(work);
        }
        mb.deque.push_back(work);
        let needs_schedule = !mb.scheduled;
        mb.scheduled = true;
        PushOutcome::Queued(needs_schedule)
    }

    /// Pop the next work item; clears `scheduled` (under the same lock)
    /// when the mailbox is empty, and fires any parked connection's
    /// waiter now that there is space.
    fn pop(&self) -> Option<Work> {
        let (work, waiter) = {
            let mut mb = lock_ok(&self.mailbox);
            match mb.deque.pop_front() {
                Some(w) => (Some(w), mb.waiter.take()),
                None => {
                    mb.scheduled = false;
                    (None, mb.waiter.take())
                }
            }
        };
        if let Some(w) = waiter {
            w.home.request_service(w.token);
        }
        work
    }

    /// Called when a drain quantum expires while the worker still holds
    /// the `scheduled` token (i.e. `pop` never returned `None`): keep
    /// the token and report `true` if items remain (the caller must
    /// re-enqueue the cell), otherwise release the token so the next
    /// push re-schedules the session.
    fn needs_requeue(&self) -> bool {
        let mut mb = lock_ok(&self.mailbox);
        if mb.deque.is_empty() {
            mb.scheduled = false;
            false
        } else {
            true
        }
    }
}

impl Drop for SessionCell {
    fn drop(&mut self) {
        // Keep the residency gauges honest when a connection drops its
        // cells without a clean Close.
        let slot = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        match slot {
            SessionSlot::Hot(_) => {
                self.metrics.hot_sessions.fetch_sub(1, Ordering::Relaxed);
            }
            SessionSlot::Cold => {
                self.metrics.cold_sessions.fetch_sub(1, Ordering::Relaxed);
            }
            SessionSlot::Retired => {}
        }
    }
}

// ------------------------------------------------------------ LRU pager

/// Recency order over hot sessions: `order` maps a monotonically
/// increasing touch sequence to the session, `pos` finds a session's
/// current sequence for O(log n) re-touch. Stale entries (evicted,
/// retired, or dropped cells) are skipped at pop time.
#[derive(Default)]
struct LruState {
    seq: u64,
    order: BTreeMap<u64, Weak<SessionCell>>,
    pos: HashMap<u32, u64>,
}

impl LruState {
    fn touch(&mut self, cell: &Arc<SessionCell>) {
        if let Some(old) = self.pos.remove(&cell.id) {
            self.order.remove(&old);
        }
        self.seq += 1;
        self.order.insert(self.seq, Arc::downgrade(cell));
        self.pos.insert(cell.id, self.seq);
    }

    fn remove(&mut self, id: u32) {
        if let Some(seq) = self.pos.remove(&id) {
            self.order.remove(&seq);
        }
    }

    fn pop_oldest(&mut self) -> Option<Weak<SessionCell>> {
        let (seq, weak) = self.order.pop_first()?;
        self.pos.retain(|_, s| *s != seq);
        Some(weak)
    }
}

/// True when the pager is active (a cap *and* a store: eviction without
/// a store would lose engines, so the cap is ignored then).
fn paging_enabled(shared: &Shared) -> bool {
    shared.cfg.max_hot_sessions.is_some() && shared.store.is_some()
}

/// Record a hot session as most-recently used.
fn lru_touch(shared: &Shared, cell: &Arc<SessionCell>) {
    if paging_enabled(shared) {
        lock_ok(&shared.lru).touch(cell);
    }
}

/// Evict least-recently-used hot engines until the hot set fits the
/// cap. Lock order: the LRU lock is only ever held alone; a victim's
/// engine lock is taken with `try_lock` (busy engines are re-touched
/// and retried later) and the store's lock is only taken *under* the
/// engine lock — the same order `ensure_hot` uses, so a rehydrate can
/// never interleave with a half-finished eviction of the same session.
fn maybe_evict(shared: &Shared) {
    let Some(cap) = shared.cfg.max_hot_sessions else { return };
    let Some(store) = shared.store.as_ref() else { return };
    let metrics = &shared.metrics;
    // Bounded sweep: every iteration either evicts, discards a stale
    // entry, or re-touches a busy victim; the budget stops a pathological
    // all-busy spin (the next hot-add retries).
    let mut budget = 4096usize;
    while metrics.hot_sessions.load(Ordering::Relaxed) as usize > cap && budget > 0 {
        budget -= 1;
        let Some(weak) = lock_ok(&shared.lru).pop_oldest() else { break };
        let Some(cell) = weak.upgrade() else { continue };
        let mut guard = match cell.state.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                // A worker holds the engine: it is plainly not idle.
                // Back of the queue, try the next-oldest instead.
                lru_touch(shared, &cell);
                continue;
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        if !matches!(&*guard, SessionSlot::Hot(_)) {
            continue; // already evicted or retired under us
        }
        let SessionSlot::Hot(sess) = std::mem::replace(&mut *guard, SessionSlot::Cold) else {
            unreachable!("checked Hot above");
        };
        let record = StoreRecord {
            record_version: RECORD_VERSION,
            session: cell.id,
            rank: sess.rank,
            events: sess.events_applied(),
            closed: false,
            history_complete: sess.history_complete(),
            directives: sess.history(),
            snapshot: sess.snapshot(),
        };
        // Persist *inside* the engine lock: a concurrent work item for
        // this session blocks on the lock until the record is written,
        // so its rehydrate reads exactly this state. The fast variant
        // skips the fsyncs — rename-atomicity is what rehydration
        // correctness needs; paging throughput must not be bounded by
        // sync latency (close and drain still persist durably).
        match store.persist_fast(&record) {
            Ok(()) => {
                metrics.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
                metrics.evictions.fetch_add(1, Ordering::Relaxed);
                metrics.hot_sessions.fetch_sub(1, Ordering::Relaxed);
                metrics.cold_sessions.fetch_add(1, Ordering::Relaxed);
                // Cold engines leave the per-depth sleep gauge; the
                // record's snapshot re-registers the depth on
                // rehydration.
                metrics.sleep_depth_changed(sess.pending_depth(), None);
            }
            Err(_) => {
                // Disk trouble: keep the engine hot (dropping it would
                // lose state) and stop evicting for now.
                metrics.persist_failures.fetch_add(1, Ordering::Relaxed);
                *guard = SessionSlot::Hot(sess);
                drop(guard);
                lru_touch(shared, &cell);
                break;
            }
        }
    }
}

/// Make a cell's engine resident, rehydrating from the store when it
/// was evicted. Called with the engine lock held; returns `true` when
/// a rehydration happened (the caller then runs `maybe_evict` after
/// releasing the lock). On failure the cell retires and the client
/// gets an INTERNAL error.
fn ensure_hot(
    guard: &mut MutexGuard<'_, SessionSlot>,
    cell: &SessionCell,
    shared: &Shared,
) -> Result<bool, String> {
    if matches!(&**guard, SessionSlot::Hot(_)) {
        return Ok(false);
    }
    let Some(store) = shared.store.as_ref() else {
        return Err(format!("session {} was evicted but the store is gone", cell.id));
    };
    let record = match store.load(cell.id) {
        Ok(Some(r)) => r,
        Ok(None) => {
            return Err(format!("evicted session {} has no stored record", cell.id));
        }
        Err(e) => return Err(format!("snapshot store read failed: {e}")),
    };
    match Session::restore_from_record(&record) {
        Ok(sess) => {
            shared.metrics.sleep_depth_changed(None, sess.pending_depth());
            **guard = SessionSlot::Hot(Box::new(sess));
            shared.metrics.cold_sessions.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.hot_sessions.fetch_add(1, Ordering::Relaxed);
            shared.metrics.sessions_rehydrated.fetch_add(1, Ordering::Relaxed);
            Ok(true)
        }
        Err(e) => Err(format!("evicted session {} failed to rehydrate: {e}", cell.id)),
    }
}

/// Terminal transition: drop the engine (if any), fix the residency
/// gauges, and forget the LRU entry. Used by `Close`, worker panics,
/// and rehydration failures.
fn retire_cell(cell: &SessionCell, shared: &Shared) -> Option<Box<Session>> {
    let mut guard = lock_ok(&cell.state);
    let prev = std::mem::replace(&mut *guard, SessionSlot::Retired);
    drop(guard);
    let out = match prev {
        SessionSlot::Hot(sess) => {
            shared.metrics.hot_sessions.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.sleep_depth_changed(sess.pending_depth(), None);
            Some(sess)
        }
        SessionSlot::Cold => {
            shared.metrics.cold_sessions.fetch_sub(1, Ordering::Relaxed);
            None
        }
        SessionSlot::Retired => None,
    };
    if paging_enabled(shared) {
        lock_ok(&shared.lru).remove(cell.id);
    }
    out
}

// ------------------------------------------------------------- listener

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Accept one connection, nonblocking, ready for epoll.
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                Ok(Stream::Unix(s))
            }
        }
    }

    fn raw_fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Unix(l, _) => l.as_raw_fd(),
        }
    }
}

// ----------------------------------------------------------- loop handle

/// The cross-thread face of one event loop: workers (and the accept
/// path) talk to a loop only through its handle.
struct LoopHandle {
    /// Wakes the loop's poller.
    waker: Waker,
    /// Connection tokens needing service (outbound flush or unpark).
    pending: Mutex<Vec<u64>>,
    /// Freshly accepted connections for this loop to adopt.
    inbox: Mutex<Vec<(u64, Stream)>>,
}

impl LoopHandle {
    fn new() -> std::io::Result<LoopHandle> {
        Ok(LoopHandle {
            waker: Waker::new()?,
            pending: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
        })
    }

    /// Ask the loop to service `token` (flush its outbound queue or
    /// retry its parked work item).
    fn request_service(&self, token: u64) {
        lock_ok(&self.pending).push(token);
        self.waker.notify();
    }

    /// Hand a freshly accepted connection (with its chaos sequence
    /// number) to the loop.
    fn dispatch(&self, seq: u64, stream: Stream) {
        lock_ok(&self.inbox).push((seq, stream));
        self.waker.notify();
    }

    fn take_pending(&self) -> Vec<u64> {
        std::mem::take(&mut lock_ok(&self.pending))
    }

    fn take_inbox(&self) -> Vec<(u64, Stream)> {
        std::mem::take(&mut lock_ok(&self.inbox))
    }
}

// --------------------------------------------------------------- server

/// The streaming prediction server. [`Server::bind`], then
/// (optionally) [`Server::with_store`], then [`Server::run`].
pub struct Server {
    listener: Listener,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    bound: Endpoint,
    store: Option<Arc<SnapshotStore>>,
    metrics: Arc<MetricsRegistry>,
    metrics_bound: Option<SocketAddr>,
    exporter: Option<std::thread::JoinHandle<()>>,
    loops: Vec<Arc<LoopHandle>>,
    shutdown: Arc<Waker>,
}

impl Server {
    /// Bind the listening socket (a stale Unix socket file is replaced).
    pub fn bind(endpoint: &Endpoint, cfg: ServeConfig) -> Result<Server, ProtocolError> {
        let (listener, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let bound = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), bound)
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l, path.clone()), Endpoint::Unix(path.clone()))
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(MetricsRegistry::default());
        // Bind the exporter here, not in `run`, so a bad --metrics-addr
        // fails loudly at startup instead of being swallowed mid-serve.
        let (metrics_bound, exporter) = match &cfg.metrics_addr {
            Some(addr) => {
                let (bound_addr, handle) =
                    spawn_exporter(addr, Arc::clone(&metrics), Arc::clone(&stop))?;
                (Some(bound_addr), Some(handle))
            }
            None => (None, None),
        };
        // Reactor plumbing is allocated here too, for the same reason:
        // fd exhaustion surfaces as a bind error, not a mid-serve panic.
        let loops = (0..cfg.io_threads.max(1))
            .map(|_| LoopHandle::new().map(Arc::new))
            .collect::<std::io::Result<Vec<_>>>()?;
        let shutdown = Arc::new(Waker::new()?);
        Ok(Server {
            listener,
            cfg,
            stop,
            bound,
            store: None,
            metrics,
            metrics_bound,
            exporter,
            loops,
            shutdown,
        })
    }

    /// Attach a durable snapshot store: sessions persist periodically
    /// and on `Close`, drain flushes every live session, clients can
    /// rehydrate with an empty-body `Restore`, and `max_hot_sessions`
    /// eviction becomes available.
    #[must_use]
    pub fn with_store(mut self, store: Arc<SnapshotStore>) -> Server {
        self.store = Some(store);
        self
    }

    /// The actual bound endpoint (resolves a `:0` TCP port request).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.bound
    }

    /// Where the Prometheus exporter listens, when `metrics_addr` was
    /// configured (resolves a `:0` port request).
    #[must_use]
    pub fn metrics_endpoint(&self) -> Option<SocketAddr> {
        self.metrics_bound
    }

    /// The live metrics registry (scrape-equivalent view for tests and
    /// embedding processes).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A flag that stops [`Server::run`] when set from another thread.
    /// Raising it triggers a graceful drain: accepting stops, in-flight
    /// work quiesces, and (with a store) every live session is
    /// persisted before `run` returns. Pair with [`Server::wake_fd`]
    /// for bounded-latency drains; a bare store is still noticed within
    /// one [`TICK_MS`] poll quantum.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The shutdown eventfd: after storing the stop flag, write 8
    /// bytes here (see `epoll::notify_raw` — async-signal-safe) and
    /// every event loop wakes immediately instead of finishing its
    /// poll quantum. Valid for the life of the server.
    #[must_use]
    pub fn wake_fd(&self) -> RawFd {
        self.shutdown.raw_fd()
    }

    /// Accept and serve connections until the stop flag is raised or
    /// `session_limit` sessions have closed. Blocks; returns lifetime
    /// counters.
    pub fn run(self) -> ServeSummary {
        let shared = Arc::new(Shared {
            cfg: self.cfg.clone(),
            metrics: Arc::clone(&self.metrics),
            stop: Arc::clone(&self.stop),
            drain: AtomicBool::new(false),
            store: self.store.clone(),
            shards: (0..SESSION_TABLE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lru: Mutex::new(LruState::default()),
            shutdown: Arc::clone(&self.shutdown),
            conn_seq: AtomicU64::new(0),
        });
        let (ready_tx, ready_rx) = mpsc::channel::<Arc<SessionCell>>();
        let ready_rx = Arc::new(Mutex::new(ready_rx));

        let spawn_worker = |shared: &Arc<Shared>| {
            let rx = Arc::clone(&ready_rx);
            let tx = ready_tx.clone();
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&rx, &tx, &shared))
        };
        let mut workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| spawn_worker(&shared))
            .collect();

        // Event loops: loop 0 owns the listener.
        let listener = Arc::new(self.listener);
        let (life_tx, life_rx) = mpsc::channel::<()>();
        let loop_threads: Vec<_> = self
            .loops
            .iter()
            .enumerate()
            .map(|(idx, handle)| {
                let shared = Arc::clone(&shared);
                let handle = Arc::clone(handle);
                let peers = self.loops.clone();
                let ready = ready_tx.clone();
                let life = life_tx.clone();
                let listener = (idx == 0).then(|| Arc::clone(&listener));
                std::thread::spawn(move || {
                    let mut reactor = Reactor::new(shared, handle, peers, ready, listener);
                    reactor.run();
                    drop(reactor);
                    let _ = life.send(());
                })
            })
            .collect();
        drop(life_tx);

        // Supervise: respawn dead workers, watch the stop flag and the
        // session limit. Loop exits (lifecycle channel) wake this
        // thread instantly; otherwise it ticks at 100ms.
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(limit) = self.cfg.session_limit {
                if shared.metrics.sessions_closed.load(Ordering::Relaxed) >= limit {
                    break;
                }
            }
            // A worker only ever exits early if something escaped its
            // panic isolation — replace it so capacity cannot silently
            // ratchet down to zero.
            for w in workers.iter_mut() {
                if w.is_finished() {
                    shared.metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
                    let fresh = spawn_worker(&shared);
                    let dead = std::mem::replace(w, fresh);
                    let _ = dead.join();
                }
            }
            match life_rx.recv_timeout(Duration::from_millis(100)) {
                Ok(()) | Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Graceful drain: stop the loops (each persists and closes its
        // connections on the way out), then the workers, then flush
        // every store-backed session still registered.
        self.stop.store(true, Ordering::Relaxed);
        shared.shutdown.notify();
        for t in loop_threads {
            let _ = t.join();
        }
        shared.drain.store(true, Ordering::Relaxed);
        drop(ready_tx);
        for w in workers {
            let _ = w.join();
        }
        if shared.store.is_some() {
            for shard in &shared.shards {
                let cells: Vec<Arc<SessionCell>> =
                    lock_ok(shard).values().filter_map(Weak::upgrade).collect();
                for cell in cells {
                    persist_cell(&cell, &shared, false);
                }
            }
        }
        if let Some(store) = shared.store.as_ref() {
            let _ = store.flush_manifest();
        }
        if let Listener::Unix(_, path) = &*listener {
            let _ = std::fs::remove_file(path);
        }
        // The public stop flag is set (just above), which is what the
        // exporter thread polls — join it so `run` returning means
        // every server-owned thread is gone.
        if let Some(exporter) = self.exporter {
            let _ = exporter.join();
        }
        shared.metrics.summary()
    }
}
// -------------------------------------------------------------- reactor

/// Reserved poller tokens; connections start above them.
const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_SHUTDOWN: u64 = 2;
const TOKEN_FIRST_CONN: u64 = 3;

/// Per-read scratch size and the per-connection read budget per wake
/// (level triggering re-notifies anything left unread).
const READ_CHUNK: usize = 64 * 1024;
const READS_PER_WAKE: usize = 8;

/// Frame-reassembly phase of one connection.
enum ConnPhase {
    /// Waiting for the 6-byte client hello.
    Hello,
    /// Streaming length-prefixed frames.
    Frames,
}

/// One nonblocking connection owned by an event loop.
struct Conn {
    stream: Stream,
    fd: RawFd,
    tx: Arc<ConnTx>,
    /// Unparsed inbound bytes (compacted after each parse pass).
    rd: Vec<u8>,
    phase: ConnPhase,
    /// Encoded outbound bytes not yet accepted by the kernel.
    outbuf: Vec<u8>,
    outpos: usize,
    /// Scratch for draining the outbound queue without re-allocating.
    batch: Vec<Vec<u8>>,
    sessions: HashMap<u32, Arc<SessionCell>>,
    /// A work item that did not fit its session's mailbox; the
    /// connection is parked (not reading) until it goes through.
    paused: Option<(u32, Work)>,
    last_activity: Instant,
    write_blocked_since: Option<Instant>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Stop reading and tear down once the outbound side drains.
    closing: bool,
}

/// One event-loop thread: a poller over its connections, its handle's
/// waker, the shared shutdown eventfd, and (loop 0) the listener.
struct Reactor {
    shared: Arc<Shared>,
    handle: Arc<LoopHandle>,
    /// Every loop's handle, for round-robin accept dispatch (loop 0).
    peers: Vec<Arc<LoopHandle>>,
    ready: mpsc::Sender<Arc<SessionCell>>,
    listener: Option<Arc<Listener>>,
    poller: Option<Poller>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    scratch: Vec<u8>,
}

impl Reactor {
    fn new(
        shared: Arc<Shared>,
        handle: Arc<LoopHandle>,
        peers: Vec<Arc<LoopHandle>>,
        ready: mpsc::Sender<Arc<SessionCell>>,
        listener: Option<Arc<Listener>>,
    ) -> Reactor {
        Reactor {
            shared,
            handle,
            peers,
            ready,
            listener,
            poller: Poller::new().ok(),
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            scratch: vec![0u8; READ_CHUNK],
        }
    }

    fn run(&mut self) {
        let Some(poller) = self.poller.take() else {
            // Epoll itself failed (fd exhaustion after bind): nothing
            // to serve with. The supervisor notices via the lifecycle
            // channel; counted so the condition is observable.
            self.shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if poller.add(self.handle.waker.raw_fd(), TOKEN_WAKER, Interest::READ).is_err()
            || poller
                .add(self.shared.shutdown.raw_fd(), TOKEN_SHUTDOWN, Interest::READ)
                .is_err()
        {
            self.shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(l) = &self.listener {
            let _ = poller.add(l.raw_fd(), TOKEN_LISTENER, Interest::READ);
        }
        let mut events = Events::with_capacity(512);
        let mut touched: Vec<u64> = Vec::new();
        loop {
            let _ = poller.wait(&mut events, TICK_MS);
            if self.shared.stop.load(Ordering::Relaxed) {
                break;
            }
            touched.clear();
            let mut accept_ready = false;
            for ev in events.iter() {
                match ev.token {
                    TOKEN_WAKER => self.handle.waker.drain(),
                    TOKEN_SHUTDOWN => {} // stop flag checked at loop top
                    TOKEN_LISTENER => accept_ready = true,
                    token => {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            if ev.is_error() && conn.rd.is_empty() {
                                conn.closing = true;
                            }
                            if ev.writable() {
                                conn.write_blocked_since = None;
                            }
                            if ev.readable() {
                                self.read_conn(&poller, token);
                            }
                            touched.push(token);
                        }
                    }
                }
            }
            if accept_ready {
                self.accept_burst(&poller);
            }
            for (seq, stream) in self.handle.take_inbox() {
                self.adopt(&poller, seq, stream);
            }
            for token in self.handle.take_pending() {
                if self.conns.contains_key(&token) {
                    self.retry_paused(&poller, token);
                    touched.push(token);
                }
            }
            for &token in &touched {
                self.service(&poller, token);
            }
            self.sweep_timeouts(&poller);
        }
        // Drain: persist and close every connection this loop owns.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(&poller, token);
        }
    }

    /// Accept until the listener would block, dispatching connections
    /// round-robin across the loops (only loop 0 runs this).
    fn accept_burst(&mut self, poller: &Poller) {
        let Some(listener) = self.listener.clone() else { return };
        loop {
            match listener.accept() {
                Ok(stream) => {
                    let seq = self.shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                    let target = (seq % self.peers.len() as u64) as usize;
                    if Arc::ptr_eq(&self.peers[target], &self.handle) {
                        self.adopt(poller, seq, stream);
                    } else {
                        self.peers[target].dispatch(seq, stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Accept errors (EMFILE and friends) must not hot
                    // loop on level-triggered listener readability.
                    self.shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                    break;
                }
            }
        }
    }

    /// Take ownership of an accepted connection: wrap it in chaos (the
    /// per-connection reseed keeps fault schedules deterministic per
    /// accept sequence), register it, and start the handshake.
    fn adopt(&mut self, poller: &Poller, seq: u64, stream: Stream) {
        let stream = match &self.shared.cfg.chaos {
            Some(chaos) => chaos
                .reseeded(chaos.seed ^ (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .wrap(stream),
            None => stream,
        };
        let fd = stream.raw_fd();
        let token = self.next_token;
        self.next_token += 1;
        if poller.add(fd, token, Interest::READ).is_err() {
            self.shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = stream.shutdown();
            return;
        }
        let tx = ConnTx::new(
            self.shared.cfg.write_queue,
            Arc::clone(&self.shared.metrics),
            Arc::clone(&self.handle),
            token,
        );
        self.conns.insert(
            token,
            Conn {
                stream,
                fd,
                tx,
                rd: Vec::new(),
                phase: ConnPhase::Hello,
                outbuf: Vec::new(),
                outpos: 0,
                batch: Vec::new(),
                sessions: HashMap::new(),
                paused: None,
                last_activity: Instant::now(),
                write_blocked_since: None,
                interest: Interest::READ,
                closing: false,
            },
        );
    }

    /// Pull bytes off the socket (bounded per wake) and run the parser
    /// over whatever accumulated.
    fn read_conn(&mut self, poller: &Poller, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.closing || conn.paused.is_some() {
            return;
        }
        for _ in 0..READS_PER_WAKE {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF. Every client in this protocol shuts down
                    // both directions, so a read-side EOF means the
                    // conversation is over: tear down (after flushing
                    // anything already queued outbound).
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rd.extend_from_slice(&self.scratch[..n]);
                    conn.last_activity = Instant::now();
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closing = true;
                    break;
                }
            }
        }
        self.parse_conn(poller, token);
    }

    /// Run the frame parser over a connection's buffered bytes,
    /// routing complete frames until the buffer runs dry, the session
    /// mailbox parks us, or a protocol error ends the connection.
    fn parse_conn(&mut self, _poller: &Poller, token: u64) {
        let shared = Arc::clone(&self.shared);
        let metrics = &shared.metrics;
        let mut pos = 0usize;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.closing || conn.paused.is_some() {
                break;
            }
            match conn.phase {
                ConnPhase::Hello => {
                    if conn.rd.len() - pos < 6 {
                        break;
                    }
                    let hello = &conn.rd[pos..pos + 6];
                    if hello[..4] != crate::protocol::MAGIC
                        || u16::from_le_bytes([hello[4], hello[5]])
                            != crate::protocol::PROTOCOL_VERSION
                    {
                        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        conn.closing = true;
                        break;
                    }
                    pos += 6;
                    conn.phase = ConnPhase::Frames;
                    // Our hello goes straight into the write buffer —
                    // it is not a length-prefixed frame.
                    conn.outbuf.extend_from_slice(&crate::protocol::MAGIC);
                    conn.outbuf
                        .extend_from_slice(&crate::protocol::PROTOCOL_VERSION.to_le_bytes());
                }
                ConnPhase::Frames => {
                    if conn.rd.len() - pos < FRAME_HEADER_LEN {
                        break;
                    }
                    let mut header = [0u8; FRAME_HEADER_LEN];
                    header.copy_from_slice(&conn.rd[pos..pos + FRAME_HEADER_LEN]);
                    let (len, crc) = match read_frame_header(header) {
                        Ok(v) => v,
                        Err(e) => {
                            send_error(
                                &conn.tx,
                                metrics,
                                CONNECTION_SESSION,
                                error_code::MALFORMED,
                                e.to_string(),
                            );
                            conn.closing = true;
                            break;
                        }
                    };
                    if conn.rd.len() - pos - FRAME_HEADER_LEN < len {
                        break;
                    }
                    let payload = &conn.rd[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
                    // The transport corrupting bytes (or an undecodable
                    // frame) means framing itself can no longer be
                    // trusted: tell the client if the wire still works,
                    // then drop the connection.
                    if let Err(e) = verify_frame_crc(crc, payload) {
                        send_error(
                            &conn.tx,
                            metrics,
                            CONNECTION_SESSION,
                            error_code::MALFORMED,
                            e.to_string(),
                        );
                        conn.closing = true;
                        break;
                    }
                    let frame = match decode_client(payload) {
                        Ok(f) => f,
                        Err(e) => {
                            send_error(
                                &conn.tx,
                                metrics,
                                CONNECTION_SESSION,
                                error_code::MALFORMED,
                                e.to_string(),
                            );
                            conn.closing = true;
                            break;
                        }
                    };
                    pos += FRAME_HEADER_LEN + len;
                    route(frame, token, self);
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.rd.drain(..pos.min(conn.rd.len()));
        }
    }

    /// Retry a parked connection's stashed work item, then resume
    /// parsing whatever is already buffered (level-triggered epoll will
    /// not re-report bytes we have already read).
    fn retry_paused(&mut self, poller: &Poller, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let Some((session, work)) = conn.paused.take() else { return };
        let Some(cell) = conn.sessions.get(&session).cloned() else { return };
        let is_close = matches!(work, Work::Close(_));
        let handle = Arc::clone(&self.handle);
        match cell.try_push(work, || Waiter { home: handle, token }) {
            PushOutcome::Queued(needs_schedule) => {
                if is_close {
                    conn.sessions.remove(&session);
                }
                if needs_schedule {
                    self.shared.metrics.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
                    let _ = self.ready.send(cell);
                }
                self.parse_conn(poller, token);
            }
            PushOutcome::Full(work) => {
                self.conns.get_mut(&token).expect("conn present").paused = Some((session, work));
            }
        }
    }

    /// Flush the outbound side, settle poller interest, and tear down
    /// if the connection is finished.
    fn service(&mut self, poller: &Poller, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        // Move queued frames into the write buffer only once the
        // previous buffer fully drained: queue-resident frames stay
        // sheddable, so a dead-slow reader costs bounded memory.
        let mut dead = false;
        loop {
            if conn.outpos < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outpos += n;
                        conn.write_blocked_since = None;
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if conn.write_blocked_since.is_none() {
                            conn.write_blocked_since = Some(Instant::now());
                        }
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Mid-frame write failure: no in-band recovery
                        // is possible; drop the connection so the
                        // client sees EOF instead of a corrupt frame.
                        dead = true;
                        break;
                    }
                }
            } else {
                conn.outbuf.clear();
                conn.outpos = 0;
                let mut batch = std::mem::take(&mut conn.batch);
                conn.tx.take_batch(&mut batch);
                if batch.is_empty() {
                    conn.batch = batch;
                    break;
                }
                for payload in batch.drain(..) {
                    encode_frame(&mut conn.outbuf, payload);
                }
                conn.batch = batch;
            }
        }
        if dead {
            conn.tx.mark_dead();
            self.close_conn(poller, token);
            return;
        }
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let out_pending = conn.outpos < conn.outbuf.len() || !conn.tx.is_empty();
        if conn.closing && !out_pending {
            self.close_conn(poller, token);
            return;
        }
        let want_read = !conn.closing && conn.paused.is_none();
        let want = match (want_read, out_pending) {
            (true, true) => Interest::READ.and(Interest::WRITE),
            (true, false) => Interest::READ,
            (false, true) => Interest::WRITE,
            // Parked with nothing to write: stay registered with write
            // interest only — a socket writable-and-idle reports
            // nothing new, and errors/hangups always surface.
            (false, false) => Interest::WRITE,
        };
        if want != conn.interest && poller.modify(conn.fd, token, want).is_ok() {
            conn.interest = want;
        }
    }

    /// Enforce idle and write-stall timeouts (checked once per poll
    /// quantum; `TICK_MS` bounds the slack).
    fn sweep_timeouts(&mut self, poller: &Poller) {
        let idle = self.shared.cfg.idle_timeout_ms;
        let wstall = self.shared.cfg.write_timeout_ms;
        if idle == 0 && wstall == 0 {
            return;
        }
        let now = Instant::now();
        let mut doomed: Vec<u64> = Vec::new();
        for (token, conn) in &self.conns {
            if idle > 0
                && !conn.closing
                && now.duration_since(conn.last_activity) >= Duration::from_millis(idle)
            {
                doomed.push(*token);
                continue;
            }
            if wstall > 0 {
                if let Some(since) = conn.write_blocked_since {
                    if now.duration_since(since) >= Duration::from_millis(wstall) {
                        doomed.push(*token);
                    }
                }
            }
        }
        for token in doomed {
            if let Some(conn) = self.conns.get(&token) {
                conn.tx.mark_dead();
            }
            self.close_conn(poller, token);
        }
    }

    /// Tear a connection down: persist every session the client never
    /// closed (a restart or reconnect then rehydrates from the state
    /// at disconnect instead of the last periodic persist — work still
    /// queued in mailboxes is deliberately not waited for; the record
    /// is consistent at some applied-event count and the resume
    /// protocol resends the tail), kill the outbound queue, close the
    /// socket, and prune the registry shards.
    fn close_conn(&mut self, poller: &Poller, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        if self.shared.store.is_some() {
            for cell in conn.sessions.values() {
                persist_cell(cell, &self.shared, false);
            }
        }
        conn.tx.mark_dead();
        let _ = poller.delete(conn.fd);
        let _ = conn.stream.shutdown();
        drop(conn);
        prune_registry(&self.shared);
    }
}

/// Append one length-prefixed frame to the write buffer, converting
/// the too-large case into an in-band error (the response outgrew the
/// frame cap — a snapshot embedding a long stream's grams can; nothing
/// hit the wire yet, so tell the client instead of leaving it blocked
/// on a reply that will never come). The payload's session id sits at
/// bytes 1–4.
fn encode_frame(outbuf: &mut Vec<u8>, payload: Vec<u8>) {
    if payload.len() > MAX_FRAME_LEN as usize {
        let session = payload
            .get(1..5)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
            .unwrap_or(CONNECTION_SESSION);
        let err = ServerFrame::Error {
            session,
            code: error_code::FRAME_TOO_LARGE,
            message: format!(
                "response frame of {len} bytes exceeds the {max}-byte cap",
                len = payload.len(),
                max = MAX_FRAME_LEN
            ),
        };
        return encode_frame(outbuf, err.encode());
    }
    let crc = crate::protocol::crc32(&payload);
    outbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    outbuf.extend_from_slice(&crc.to_le_bytes());
    outbuf.extend_from_slice(&payload);
}

/// Queue a response on the connection's outbound queue (never blocks
/// on the socket). `wake` routes through the owning loop's eventfd;
/// callers already on that loop pass `false` and flush in `service`.
fn send_frame(tx: &ConnTx, frame: &ServerFrame) {
    tx.push(frame.encode(), true);
}

fn send_frame_local(tx: &ConnTx, frame: &ServerFrame) {
    tx.push(frame.encode(), false);
}

fn send_error(tx: &ConnTx, metrics: &MetricsRegistry, session: u32, code: u16, message: String) {
    metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
    // Errors are rare and sent from both loops and workers: always
    // wake (a redundant self-wake costs one eventfd write).
    send_frame(tx, &ServerFrame::Error { session, code, message });
}
// -------------------------------------------------------------- routing

/// Handle one decoded client frame on the owning event loop.
/// Open/Restore/Query answer inline; Events/Flush/Snapshot/Close go
/// through the session mailbox (and may park the connection).
fn route(frame: ClientFrame, token: u64, r: &mut Reactor) {
    let shared = Arc::clone(&r.shared);
    let metrics = &shared.metrics;
    match frame {
        ClientFrame::Open { session, rank, config } => {
            let Some(conn) = r.conns.get_mut(&token) else { return };
            if conn.sessions.contains_key(&session) {
                send_error(
                    &conn.tx,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            if live_elsewhere(&shared, session) {
                send_error(
                    &conn.tx,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is still live on another connection"),
                );
                return;
            }
            let cell = new_cell(session, Session::open(rank, *config), &shared, &conn.tx);
            register(&shared, session, &cell);
            conn.sessions.insert(session, Arc::clone(&cell));
            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            send_frame_local(&conn.tx, &ServerFrame::OpenAck { session, events_applied: 0 });
            lru_touch(&shared, &cell);
            maybe_evict(&shared);
        }
        ClientFrame::Restore { session, snapshot } => {
            let Some(conn) = r.conns.get_mut(&token) else { return };
            if conn.sessions.contains_key(&session) {
                send_error(
                    &conn.tx,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            if live_elsewhere(&shared, session) {
                send_error(
                    &conn.tx,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is still live on another connection"),
                );
                return;
            }
            if snapshot.is_empty() {
                restore_from_store(session, token, r);
                return;
            }
            match Session::restore(&snapshot) {
                Ok(restored) => {
                    let events_applied = restored.events_applied();
                    let cell = new_cell(session, restored, &shared, &conn.tx);
                    register(&shared, session, &cell);
                    conn.sessions.insert(session, Arc::clone(&cell));
                    metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    send_frame_local(&conn.tx, &ServerFrame::OpenAck { session, events_applied });
                    lru_touch(&shared, &cell);
                    maybe_evict(&shared);
                }
                Err(e) => send_error(
                    &conn.tx,
                    metrics,
                    session,
                    error_code::BAD_SNAPSHOT,
                    e.to_string(),
                ),
            }
        }
        ClientFrame::Events { session, events } => {
            try_enqueue(r, token, session, Work::Events(events));
        }
        ClientFrame::Flush { session } => {
            try_enqueue(r, token, session, Work::Flush);
        }
        ClientFrame::Snapshot { session } => {
            try_enqueue(r, token, session, Work::Snapshot);
        }
        ClientFrame::Close { session, final_compute_ns } => {
            try_enqueue(r, token, session, Work::Close(final_compute_ns));
        }
        ClientFrame::Query { session } => {
            // Answered inline on the event loop, like Open/Restore:
            // the report samples engines via try_lock and never enters
            // any mailbox, so a mid-stream query cannot reorder or
            // delay session work.
            let report = build_report(&shared, session);
            metrics.queries_answered.fetch_add(1, Ordering::Relaxed);
            let Some(conn) = r.conns.get_mut(&token) else { return };
            send_frame_local(
                &conn.tx,
                &ServerFrame::QueryReply { session, report: Box::new(report) },
            );
        }
    }
}

/// Route mailbox-bound work, parking the connection on a full mailbox.
/// A routed `Close` retires the id on this connection (no further
/// frames may address it; a later Open may reuse it for a new session).
fn try_enqueue(r: &mut Reactor, token: u64, session: u32, work: Work) {
    let shared = Arc::clone(&r.shared);
    let Some(conn) = r.conns.get_mut(&token) else { return };
    let Some(cell) = conn.sessions.get(&session).cloned() else {
        send_error(
            &conn.tx,
            &shared.metrics,
            session,
            error_code::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        );
        return;
    };
    let is_close = matches!(work, Work::Close(_));
    let handle = Arc::clone(&r.handle);
    match cell.try_push(work, || Waiter { home: handle, token }) {
        PushOutcome::Queued(needs_schedule) => {
            if is_close {
                conn.sessions.remove(&session);
            }
            if needs_schedule {
                shared.metrics.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
                let _ = r.ready.send(cell);
            }
        }
        PushOutcome::Full(work) => {
            conn.paused = Some((session, work));
        }
    }
}

/// Which registry shard a session id lives in.
fn shard_of(id: u32) -> usize {
    id as usize % SESSION_TABLE_SHARDS
}

/// Store one shard's occupancy and re-derive the fleet gauge (a sum of
/// the per-shard atomics — no shard locks needed).
fn refresh_shard_gauge(shared: &Shared, idx: usize, len: usize) {
    shared.metrics.session_shards[idx].store(len as u64, Ordering::Relaxed);
    let total: u64 = shared
        .metrics
        .session_shards
        .iter()
        .map(|g| g.load(Ordering::Relaxed))
        .sum();
    shared.metrics.sessions_live.store(total, Ordering::Relaxed);
}

/// Assemble the [`ObsReport`] answering a `Query` for `target`
/// ([`CONNECTION_SESSION`] = fleet view). Engine state is sampled with
/// `try_lock`: a cell whose engine is checked out by a worker yields a
/// `busy` probe instead of blocking the loop behind the worker, and an
/// evicted (cold) cell likewise probes busy — its engine lives in the
/// store, not in memory.
fn build_report(shared: &Shared, target: u32) -> ObsReport {
    let metrics = &shared.metrics;
    let mut cells: Vec<Arc<SessionCell>> = Vec::new();
    for (idx, shard) in shared.shards.iter().enumerate() {
        let len = {
            let mut reg = lock_ok(shard);
            reg.retain(|_, w| w.strong_count() > 0);
            cells.extend(reg.values().filter_map(Weak::upgrade));
            reg.len()
        };
        refresh_shard_gauge(shared, idx, len);
    }
    cells.sort_by_key(|c| c.id);
    let mut probes = Vec::new();
    for cell in &cells {
        if target != CONNECTION_SESSION && cell.id != target {
            continue;
        }
        let mailbox_depth = lock_ok(&cell.mailbox).deque.len() as u32;
        let probe = match cell.state.try_lock() {
            Ok(guard) => match &*guard {
                SessionSlot::Hot(sess) => sess.probe(cell.id, mailbox_depth),
                _ => SessionProbe::busy(cell.id, cell.rank, mailbox_depth),
            },
            Err(std::sync::TryLockError::WouldBlock) => {
                SessionProbe::busy(cell.id, cell.rank, mailbox_depth)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => match &*p.into_inner() {
                SessionSlot::Hot(sess) => sess.probe(cell.id, mailbox_depth),
                _ => SessionProbe::busy(cell.id, cell.rank, mailbox_depth),
            },
        };
        probes.push(probe);
    }
    let store = shared.store.as_ref().map(|s| {
        let entries = s.sessions();
        StoreProbe {
            sessions: entries.len() as u32,
            closed: entries.iter().filter(|(_, e)| e.closed).count() as u32,
            complete_histories: entries.iter().filter(|(_, e)| e.history_complete).count() as u32,
        }
    });
    ObsReport {
        server: ServerProbe {
            summary: metrics.summary(),
            sessions_live: cells.len() as u32,
            workers: shared.cfg.workers.max(1) as u32,
            queue_depth_limit: shared.cfg.queue_depth.max(1) as u32,
            ready_queue_depth: metrics.ready_queue_depth.load(Ordering::Relaxed) as u32,
            writer_queue_depth: metrics.writer_queue_depth.load(Ordering::Relaxed) as u32,
            hot_sessions: metrics.hot_sessions.load(Ordering::Relaxed) as u32,
            cold_sessions: metrics.cold_sessions.load(Ordering::Relaxed) as u32,
            max_hot_sessions: shared.cfg.max_hot_sessions.map(|c| c as u32),
            store,
            chaos_intensity: shared.cfg.chaos.as_ref().map(ChaosConfig::fault_rate),
        },
        sessions: probes,
    }
}

/// Drop registry entries whose cells are gone and refresh the
/// occupancy gauges.
fn prune_registry(shared: &Shared) {
    for (idx, shard) in shared.shards.iter().enumerate() {
        let len = {
            let mut reg = lock_ok(shard);
            reg.retain(|_, w| w.strong_count() > 0);
            reg.len()
        };
        refresh_shard_gauge(shared, idx, len);
    }
}

/// Handle an empty-body `Restore`: rehydrate the session from the
/// snapshot store, answering `OpenAck` (resume position) plus a
/// `Directives` frame replaying the stored history.
fn restore_from_store(session: u32, token: u64, r: &mut Reactor) {
    let shared = Arc::clone(&r.shared);
    let metrics = &shared.metrics;
    let Some(conn) = r.conns.get_mut(&token) else { return };
    let Some(store) = shared.store.as_ref() else {
        send_error(
            &conn.tx,
            metrics,
            session,
            error_code::NO_SNAPSHOT,
            "server runs without a snapshot store".into(),
        );
        return;
    };
    let record = match store.load(session) {
        Ok(Some(r)) if r.history_complete => r,
        Ok(Some(_)) => {
            send_error(
                &conn.tx,
                metrics,
                session,
                error_code::NO_SNAPSHOT,
                format!(
                    "session {session} has a stored snapshot but an incomplete directive \
                     history; re-open and replay from the start"
                ),
            );
            return;
        }
        Ok(None) => {
            send_error(
                &conn.tx,
                metrics,
                session,
                error_code::NO_SNAPSHOT,
                format!("no stored snapshot for session {session}"),
            );
            return;
        }
        Err(e) => {
            send_error(
                &conn.tx,
                metrics,
                session,
                error_code::INTERNAL,
                format!("snapshot store read failed: {e}"),
            );
            return;
        }
    };
    match Session::restore_from_record(&record) {
        Ok(restored) => {
            let cell = new_cell(session, restored, &shared, &conn.tx);
            register(&shared, session, &cell);
            conn.sessions.insert(session, Arc::clone(&cell));
            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            metrics.sessions_rehydrated.fetch_add(1, Ordering::Relaxed);
            send_frame_local(
                &conn.tx,
                &ServerFrame::OpenAck { session, events_applied: record.events },
            );
            // Replay the stored history so the client can rebuild its
            // parity accounting from event 0 before resuming.
            send_frame_local(
                &conn.tx,
                &ServerFrame::Directives {
                    session,
                    events_applied: record.events,
                    directives: record.directives,
                },
            );
            lru_touch(&shared, &cell);
            maybe_evict(&shared);
        }
        Err(e) => send_error(
            &conn.tx,
            metrics,
            session,
            error_code::BAD_SNAPSHOT,
            format!("stored snapshot for session {session} failed to restore: {e}"),
        ),
    }
}

fn new_cell(
    id: u32,
    session: Session,
    shared: &Arc<Shared>,
    tx: &Arc<ConnTx>,
) -> Arc<SessionCell> {
    shared.metrics.hot_sessions.fetch_add(1, Ordering::Relaxed);
    // A fresh open contributes nothing; a restore whose snapshot
    // carries an armed sleep re-registers its depth.
    shared.metrics.sleep_depth_changed(None, session.pending_depth());
    Arc::new(SessionCell {
        id,
        rank: session.rank,
        state: Mutex::new(SessionSlot::Hot(Box::new(session))),
        mailbox: Mutex::new(MailboxState {
            deque: VecDeque::new(),
            scheduled: false,
            waiter: None,
        }),
        cap: shared.cfg.queue_depth.max(1),
        tx: Arc::clone(tx),
        metrics: Arc::clone(&shared.metrics),
    })
}

/// Whether a non-retired cell for this id is still reachable anywhere
/// on the server: another connection's live (or paged-out) session, or
/// a dropped connection whose teardown persist has not finished yet.
/// `Open` and `Restore` refuse while this holds — a second cell for
/// the same id would race the first one's persists for the store
/// record (two lineages interleaving through evict/rehydrate), and a
/// store restore could resurrect state the live cell is about to
/// overwrite. Both teardown paths persist *before* releasing the cell
/// (`close_conn` before dropping the connection's `Arc`s, `Close`
/// before marking the slot `Retired`), so once this returns false the
/// store record is final and restoring from it is safe.
fn live_elsewhere(shared: &Shared, session: u32) -> bool {
    let reg = lock_ok(&shared.shards[shard_of(session)]);
    let Some(cell) = reg.get(&session).and_then(|w| w.upgrade()) else {
        return false;
    };
    let slot = lock_ok(&cell.state);
    !matches!(&*slot, SessionSlot::Retired)
}

/// Track a live session for `Query` fleet probes and (with a store)
/// the drain sweep.
fn register(shared: &Shared, session: u32, cell: &Arc<SessionCell>) {
    let idx = shard_of(session);
    let len = {
        let mut reg = lock_ok(&shared.shards[idx]);
        reg.retain(|_, w| w.strong_count() > 0);
        reg.insert(session, Arc::downgrade(cell));
        reg.len()
    };
    refresh_shard_gauge(shared, idx, len);
}

// --------------------------------------------------------------- workers

fn worker_loop(
    ready: &Mutex<mpsc::Receiver<Arc<SessionCell>>>,
    requeue: &mpsc::Sender<Arc<SessionCell>>,
    shared: &Arc<Shared>,
) {
    loop {
        // Workers hold a `requeue` sender, so the channel never
        // disconnects while they live — poll the drain flag instead of
        // relying on `recv` erroring out at shutdown.
        let cell = {
            let rx = lock_ok(ready);
            rx.recv_timeout(Duration::from_millis(100))
        };
        let cell = match cell {
            Ok(cell) => {
                shared.metrics.ready_queue_depth.fetch_sub(1, Ordering::Relaxed);
                cell
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.drain.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut emptied = false;
        for _ in 0..DRAIN_QUANTUM {
            match cell.pop() {
                Some(work) => {
                    // Panic isolation: a panicking work item loses its
                    // own session, never the worker or the server.
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        handle_work(&cell, work, shared);
                    }));
                    if caught.is_err() {
                        shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        retire_cell(&cell, shared);
                        send_error(
                            &cell.tx,
                            &shared.metrics,
                            cell.id,
                            error_code::INTERNAL,
                            format!(
                                "worker panicked applying session {}; session dropped",
                                cell.id
                            ),
                        );
                    }
                }
                None => {
                    emptied = true; // `pop` released the scheduled token
                    break;
                }
            }
        }
        if !emptied && cell.needs_requeue() {
            shared.metrics.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = requeue.send(Arc::clone(&cell));
        }
    }
}

/// Build and persist a [`StoreRecord`] for a live cell. `closing`
/// marks the record closed (persisted just before the `Closed` ack so
/// a crash in between is recoverable by re-closing). The disk write
/// happens *under* the engine lock — the same order the eviction pager
/// uses — so no stale record can ever overwrite a newer one. A cold
/// cell is already durable (eviction persisted it); nothing to do.
fn persist_cell(cell: &SessionCell, shared: &Shared, closing: bool) {
    let Some(store) = shared.store.as_ref() else { return };
    let mut guard = lock_ok(&cell.state);
    let SessionSlot::Hot(sess) = &mut *guard else { return };
    let record = StoreRecord {
        record_version: RECORD_VERSION,
        session: cell.id,
        rank: sess.rank,
        events: sess.events_applied(),
        closed: closing,
        history_complete: sess.history_complete(),
        directives: sess.history(),
        snapshot: sess.snapshot(),
    };
    sess.mark_persisted();
    // Close records are the durable milestone (fsynced); periodic
    // checkpoints take the fast path — losing one to a crash resumes
    // the session from an older checkpoint, which the resume protocol
    // already handles, and a worker pool that fsyncs every
    // `--persist-every` events cannot sustain fleet-scale throughput.
    let persisted =
        if closing { store.persist(&record) } else { store.persist_fast(&record) };
    match persisted {
        Ok(()) => {
            shared.metrics.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            shared.metrics.persist_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_work(cell: &Arc<SessionCell>, work: Work, shared: &Shared) {
    let metrics = &shared.metrics;
    let tx = &cell.tx;
    let mut guard = lock_ok(&cell.state);
    if matches!(&*guard, SessionSlot::Retired) {
        drop(guard);
        send_error(
            tx,
            metrics,
            cell.id,
            error_code::UNKNOWN_SESSION,
            format!("session {} already closed", cell.id),
        );
        return;
    }
    // Paged out? Rehydrate before touching the work item (this is the
    // transparent half of `max_hot_sessions`).
    let rehydrated = match ensure_hot(&mut guard, cell, shared) {
        Ok(r) => r,
        Err(message) => {
            drop(guard);
            retire_cell(cell, shared);
            send_error(tx, metrics, cell.id, error_code::INTERNAL, message);
            return;
        }
    };
    let SessionSlot::Hot(sess) = &mut *guard else {
        unreachable!("ensure_hot leaves the slot hot");
    };
    match work {
        Work::Events(events) => {
            if let Some(bad) = shared.cfg.panic_on_call {
                assert!(
                    !events.iter().any(|&(call, _)| call == bad),
                    "chaos hook: panic_on_call {bad} hit"
                );
            }
            metrics.events_applied.fetch_add(events.len() as u64, Ordering::Relaxed);
            let depth_before = sess.pending_depth();
            let (events_applied, directives) = sess.apply(&events);
            metrics.sleep_depth_changed(depth_before, sess.pending_depth());
            metrics
                .directives_sent
                .fetch_add(directives.len() as u64, Ordering::Relaxed);
            let stats = (shared.cfg.stats_every > 0
                && sess.events_since_stats() >= shared.cfg.stats_every)
                .then(|| {
                    sess.mark_stats_emitted();
                    sess.stats()
                });
            let persist = shared.store.is_some()
                && shared.cfg.persist_every > 0
                && sess.events_since_persist() >= shared.cfg.persist_every;
            drop(guard);
            send_frame(
                tx,
                &ServerFrame::Directives { session: cell.id, events_applied, directives },
            );
            if let Some(stats) = stats {
                send_frame(tx, &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) });
            }
            if persist {
                persist_cell(cell, shared, false);
            }
        }
        Work::Flush => {
            let stats = sess.stats();
            sess.mark_stats_emitted();
            drop(guard);
            send_frame(tx, &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) });
        }
        Work::Snapshot => {
            let snapshot = sess.snapshot_bytes();
            drop(guard);
            send_frame(tx, &ServerFrame::SnapshotData { session: cell.id, snapshot });
        }
        Work::Close(final_compute_ns) => {
            // Persist the pre-close state first, still under the
            // engine lock (so the eviction pager can never interleave):
            // a crash between this point and the `Closed` ack leaves a
            // record the client can restore and re-close — the
            // deterministic finish re-issues identical final
            // directives.
            if let Some(store) = shared.store.as_ref() {
                let record = StoreRecord {
                    record_version: RECORD_VERSION,
                    session: cell.id,
                    rank: sess.rank,
                    events: sess.events_applied(),
                    closed: true,
                    history_complete: sess.history_complete(),
                    directives: sess.history(),
                    snapshot: sess.snapshot(),
                };
                sess.mark_persisted();
                match store.persist(&record) {
                    Ok(()) => {
                        metrics.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        metrics.persist_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let SessionSlot::Hot(sess) = std::mem::replace(&mut *guard, SessionSlot::Retired)
            else {
                unreachable!("slot is hot: established above");
            };
            metrics.hot_sessions.fetch_sub(1, Ordering::Relaxed);
            metrics.sleep_depth_changed(sess.pending_depth(), None);
            drop(guard);
            if paging_enabled(shared) {
                lock_ok(&shared.lru).remove(cell.id);
            }
            let idx = shard_of(cell.id);
            let len = {
                let mut reg = lock_ok(&shared.shards[idx]);
                reg.remove(&cell.id);
                reg.len()
            };
            refresh_shard_gauge(shared, idx, len);
            let sess = *sess;
            let events_applied = sess.events_applied();
            let (fresh, directives_total, stats) = sess.close(final_compute_ns);
            metrics
                .directives_sent
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
            if !fresh.is_empty() {
                send_frame(
                    tx,
                    &ServerFrame::Directives {
                        session: cell.id,
                        events_applied,
                        directives: fresh,
                    },
                );
            }
            send_frame(
                tx,
                &ServerFrame::Closed {
                    session: cell.id,
                    directives_total,
                    stats: Box::new(stats),
                },
            );
            return;
        }
    }
    // Recency upkeep for the pager: the session was just touched, and
    // if rehydrating it pushed the hot set over the cap, evict the
    // least-recently-used engine (never this one — it was touched
    // last).
    if paging_enabled(shared) {
        lru_touch(shared, cell);
        if rehydrated {
            maybe_evict(shared);
        }
    }
}
