//! The streaming prediction server.
//!
//! ## Threading model
//!
//! ```text
//! listener thread ──accept──▶ one reader thread per connection
//!          │                        │  Open/Restore handled inline
//!          │ supervises             │  Events/Flush/Snapshot/Close pushed
//!          ▼ (respawn on death)     ▼  into the session's bounded mailbox
//!    worker pool          per-session mailbox (VecDeque, cap = queue_depth)
//!          ▲                        │  first push marks the session ready
//!          │                        ▼
//!          └────────────── ready queue
//!                                   │ a worker drains one session at a time
//!                                   ▼
//!                  per-connection outbound queue (bounded, shed-oldest)
//!                                   │
//!                                   ▼
//!                  per-connection writer thread ──▶ socket
//! ```
//!
//! **Backpressure (inbound).** A session's mailbox holds at most
//! `queue_depth` pending work items. When it is full the connection's
//! reader thread blocks in `push` — it stops reading that socket, so
//! the kernel's flow control eventually pushes back on the client. A
//! slow *sender* therefore throttles its own connection only.
//! (Sessions multiplexed on one connection share that connection's
//! reader, so they share its fate — clients wanting full isolation
//! open one connection per session, as the load generator does.)
//!
//! **Overload shedding (outbound).** Responses are never written from
//! worker threads. Each connection owns a bounded outbound queue
//! drained by a dedicated writer thread; workers enqueue and move on,
//! so a client that stops *reading* its socket can no longer stall the
//! worker pool (the §12 limitation this design replaces). When a
//! connection's queue overflows, the oldest queued responses are shed
//! and a single in-band [`ServerFrame::Error`] with
//! [`error_code::OVERLOAD`] tells the client its response stream has a
//! gap — the resilient client reconnects and restores. Memory per
//! connection stays bounded no matter how slow the reader.
//!
//! **Fairness.** A worker drains at most [`DRAIN_QUANTUM`] items from
//! one mailbox per scheduling turn, then re-enqueues the session, so a
//! continuously-fed session cannot pin a worker while other ready
//! sessions wait.
//!
//! **Ordering.** The `scheduled` flag inside the mailbox mutex
//! guarantees at most one outstanding ready-queue entry per session, so
//! exactly one worker drains a session at a time and work is applied in
//! arrival order. The flag is cleared under the same lock that observes
//! the queue empty, so a concurrent push either sees `scheduled == true`
//! (the worker has not yet drained its item) or re-schedules the
//! session — a wakeup can never be lost. A worker whose quantum expires
//! with items still queued keeps the flag set and re-enqueues the cell
//! itself, preserving the single-drainer invariant.
//!
//! **Panic isolation.** Each work item is applied under
//! `catch_unwind`: a panic poisons nothing (locks are acquired
//! poison-tolerantly), drops only the offending session, and answers
//! the client with an [`error_code::INTERNAL`] error. The listener
//! additionally supervises the worker pool and respawns any thread
//! that dies.
//!
//! **Durability.** With a [`SnapshotStore`] attached, sessions persist
//! their full learned state (plus directive history) every
//! `persist_every` applied events, before every `Close`
//! acknowledgement, and in a final sweep when the server drains. A
//! restarted server rehydrates them for clients that `Restore` with an
//! empty snapshot body. See the `store` module docs for the crash-
//! safety contract.

use crate::chaos::ChaosConfig;
use crate::metrics::{
    spawn_exporter, MetricsRegistry, ObsReport, ServerProbe, SessionProbe, StoreProbe,
};
use crate::protocol::{
    decode_client, error_code, read_frame_header, verify_frame_crc, write_frame, ClientFrame,
    ProtocolError, ServerFrame, CONNECTION_SESSION, FRAME_HEADER_LEN,
};
use crate::session::Session;
use crate::store::{SnapshotStore, StoreRecord, RECORD_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::{Duration, Instant};

/// Lock a mutex tolerating poisoning: every critical section in this
/// module leaves the protected data structurally valid even if the
/// holder panicked (single push/pop/insert operations), so the poison
/// flag carries no information worth crashing a second thread over.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Where the server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

impl Endpoint {
    /// Connect a client stream to this endpoint.
    pub fn connect(&self) -> std::io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// A connected byte stream over either transport, optionally wrapped
/// in the fault-injecting chaos harness.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection (Nagle disabled: frames are latency-sensitive).
    Tcp(TcpStream),
    /// Unix-domain connection.
    Unix(UnixStream),
    /// A fault-injecting wrapper around either transport (see
    /// [`crate::chaos`]).
    Chaos(crate::chaos::ChaosStream),
}

impl Stream {
    /// Clone the handle so one side can read while the other writes.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Chaos(s) => s.try_clone().map(Stream::Chaos),
        }
    }

    /// Bound every blocking read so the owner can poll a stop flag.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
            Stream::Chaos(s) => s.get_ref().set_read_timeout(dur),
        }
    }

    /// Bound every blocking write so a stuck peer cannot pin the
    /// connection's writer thread forever.
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(dur),
            Stream::Unix(s) => s.set_write_timeout(dur),
            Stream::Chaos(s) => s.get_ref().set_write_timeout(dur),
        }
    }

    /// Shut down both directions so the peer sees EOF immediately.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Chaos(s) => s.get_ref().shutdown(),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
            Stream::Chaos(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
            Stream::Chaos(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
            Stream::Chaos(s) => s.flush(),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads applying event batches (the bounded pool).
    pub workers: usize,
    /// Pending work items per session before its reader blocks.
    pub queue_depth: usize,
    /// Emit an unsolicited [`ServerFrame::Stats`] every this many events
    /// per session (0 disables; `Flush` always answers immediately).
    pub stats_every: u64,
    /// Stop the server after this many sessions have closed cleanly.
    /// `None` runs until [`Server::stop_flag`] is raised.
    pub session_limit: Option<u64>,
    /// Outbound frames queued per connection before the oldest are
    /// shed with an in-band overload error.
    pub write_queue: usize,
    /// Drop a connection when no frame arrives for this many
    /// milliseconds (0 disables). Abandoned connections otherwise hold
    /// their reader thread until the process exits.
    pub idle_timeout_ms: u64,
    /// Socket write timeout for response frames, milliseconds (0
    /// disables). A connection whose peer stops reading for this long
    /// is dropped.
    pub write_timeout_ms: u64,
    /// Persist each store-backed session every this many applied
    /// events (0 = only on `Close` and at drain). Ignored without a
    /// store.
    pub persist_every: u64,
    /// Serve Prometheus text exposition over plaintext HTTP/1.0 on
    /// this address (e.g. `127.0.0.1:9464`; port 0 picks a free port).
    /// `None` disables the exporter; the [`MetricsRegistry`] is live
    /// either way (it is also what `Query` frames report).
    pub metrics_addr: Option<String>,
    /// Fault-inject accepted connections (tests and soak runs only;
    /// `None` = no wrapper, zero overhead).
    pub chaos: Option<ChaosConfig>,
    /// Chaos-test hook: a worker panics when it applies an event with
    /// this call id, exercising panic isolation end to end. Never set
    /// in production.
    #[doc(hidden)]
    pub panic_on_call: Option<u16>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            stats_every: 0,
            session_limit: None,
            write_queue: 256,
            idle_timeout_ms: 0,
            write_timeout_ms: 30_000,
            persist_every: 256,
            metrics_addr: None,
            chaos: None,
            panic_on_call: None,
        }
    }
}

/// Lifetime counters reported when the server stops (and, live, in
/// every [`ObsReport`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Sessions opened (fresh or restored).
    pub sessions_opened: u64,
    /// Sessions that finished with a `Close` frame.
    pub sessions_closed: u64,
    /// Events applied across all sessions.
    pub events_applied: u64,
    /// Lane directives streamed back.
    pub directives_sent: u64,
    /// Protocol-level errors (malformed frames, unknown sessions, …).
    pub protocol_errors: u64,
    /// Responses shed from overloaded connection write queues.
    pub responses_shed: u64,
    /// Worker panics caught and isolated to their session.
    pub worker_panics: u64,
    /// Worker threads respawned by the supervisor.
    pub worker_respawns: u64,
    /// Session records persisted to the snapshot store.
    pub snapshots_persisted: u64,
    /// Persist attempts that failed (disk errors).
    pub persist_failures: u64,
    /// Sessions rehydrated from the store by an empty-body `Restore`.
    pub sessions_rehydrated: u64,
}

/// Everything shared by the listener, readers, and workers.
struct Shared {
    cfg: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    stop: AtomicBool,
    store: Option<Arc<SnapshotStore>>,
    /// Every live session, for `Query` fleet probes and the drain
    /// sweep. Weak: a dropped connection's cells must not leak here.
    registry: Mutex<HashMap<u32, Weak<SessionCell>>>,
}

enum Work {
    Events(Vec<(u16, u64)>),
    Flush,
    Snapshot,
    Close(u64),
}

/// Work items a worker applies from one mailbox before handing the
/// session back to the ready queue (see the module docs on fairness).
const DRAIN_QUANTUM: usize = 32;

// ------------------------------------------------------- outbound queue

struct OutboundState {
    frames: VecDeque<Vec<u8>>,
    /// Producer handles alive (reader + session cells). The writer
    /// thread exits after flushing once this reaches zero.
    producers: usize,
    /// Set when the socket died: producers drop their frames instead
    /// of queueing.
    dead: bool,
    /// An overload error frame is already queued; coalesces repeat
    /// shed bursts into one in-band notification.
    overload_pending: bool,
}

/// One connection's bounded outbound queue. Workers push encoded
/// frames without ever blocking on the socket; a dedicated writer
/// thread drains it.
struct ConnWriter {
    q: Mutex<OutboundState>,
    ready: Condvar,
    cap: usize,
    metrics: Arc<MetricsRegistry>,
}

impl ConnWriter {
    fn new(cap: usize, metrics: Arc<MetricsRegistry>) -> Arc<ConnWriter> {
        Arc::new(ConnWriter {
            q: Mutex::new(OutboundState {
                frames: VecDeque::new(),
                producers: 0,
                dead: false,
                overload_pending: false,
            }),
            ready: Condvar::new(),
            // Room for at least one response plus the overload error.
            cap: cap.max(2),
            metrics,
        })
    }

    /// Queue one encoded frame, shedding the oldest entries (plus one
    /// in-band overload error) when the queue is full. Never blocks on
    /// the socket. Returns frames shed.
    fn push(&self, payload: Vec<u8>) -> u64 {
        let mut q = lock_ok(&self.q);
        if q.dead {
            return 0;
        }
        let mut shed = 0u64;
        let mut queued = 1u64;
        if q.frames.len() >= self.cap {
            while q.frames.len() >= self.cap.saturating_sub(1) {
                q.frames.pop_front();
                shed += 1;
            }
            self.metrics.responses_shed.fetch_add(shed, Ordering::Relaxed);
            if !q.overload_pending {
                q.overload_pending = true;
                let err = ServerFrame::Error {
                    session: CONNECTION_SESSION,
                    code: error_code::OVERLOAD,
                    message: "outbound queue overflowed; older responses were shed — \
                              reconnect and restore"
                        .into(),
                };
                q.frames.push_back(err.encode());
                queued += 1;
            }
        }
        q.frames.push_back(payload);
        drop(q);
        // Net change to the fleet-wide writer-queue occupancy gauge.
        if queued >= shed {
            self.metrics.writer_queue_depth.fetch_add(queued - shed, Ordering::Relaxed);
        } else {
            self.metrics.writer_queue_depth.fetch_sub(shed - queued, Ordering::Relaxed);
        }
        self.ready.notify_one();
        shed
    }

    fn attach_producer(self: &Arc<Self>) -> WriterHandle {
        lock_ok(&self.q).producers += 1;
        WriterHandle { conn: Arc::clone(self) }
    }

    /// The writer thread body: drain frames to the socket until the
    /// connection dies or every producer is gone and the queue is dry.
    ///
    /// Frames drain in batches — everything queued moves out under one
    /// lock acquisition, with a single occupancy-gauge settlement for
    /// the whole batch — so a burst of responses costs one lock/atomic
    /// round instead of one per frame.
    fn writer_loop(&self, out: Stream) {
        let mut out = BufWriter::with_capacity(64 * 1024, out);
        let mut batch: Vec<Vec<u8>> = Vec::new();
        loop {
            {
                let mut q = lock_ok(&self.q);
                loop {
                    if q.dead {
                        return;
                    }
                    if !q.frames.is_empty() {
                        batch.extend(q.frames.drain(..));
                        q.overload_pending = false;
                        self.metrics
                            .writer_queue_depth
                            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
                        break;
                    }
                    if q.producers == 0 {
                        let _ = out.flush();
                        return;
                    }
                    q = self
                        .ready
                        .wait_timeout(q, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
            for payload in batch.drain(..) {
                if !self.write_one(&mut out, payload) {
                    return;
                }
            }
        }
    }

    /// Write one frame, handling the too-large and fatal error paths.
    /// Returns `false` when the connection is dead and the loop must
    /// exit (any remaining batched frames were already settled out of
    /// the occupancy gauge when they were drained).
    fn write_one(&self, out: &mut BufWriter<Stream>, payload: Vec<u8>) -> bool {
        match write_frame(out, &payload) {
            Ok(()) => true,
            Err(ProtocolError::FrameTooLarge { len, max }) => {
                // The response outgrew the frame cap (a snapshot
                // embedding a long stream's grams can). Nothing hit
                // the wire yet, so tell the client in-band instead
                // of leaving it blocked on a reply that will never
                // come. The payload's session id sits at bytes 1–4.
                let session = payload
                    .get(1..5)
                    .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte slice")))
                    .unwrap_or(CONNECTION_SESSION);
                let err = ServerFrame::Error {
                    session,
                    code: error_code::FRAME_TOO_LARGE,
                    message: format!(
                        "response frame of {len} bytes exceeds the {max}-byte cap"
                    ),
                };
                if write_frame(out, &err.encode()).is_err() {
                    self.mark_dead(out);
                    return false;
                }
                true
            }
            Err(_) => {
                // A partial write leaves the stream mid-frame (and
                // a write timeout means the peer stopped reading);
                // no in-band recovery is possible. Drop the
                // connection so the client sees EOF instead of a
                // corrupt frame or a silent hang.
                self.mark_dead(out);
                false
            }
        }
    }

    fn mark_dead(&self, out: &mut BufWriter<Stream>) {
        let _ = out.get_ref().shutdown();
        let mut q = lock_ok(&self.q);
        q.dead = true;
        self.metrics
            .writer_queue_depth
            .fetch_sub(q.frames.len() as u64, Ordering::Relaxed);
        q.frames.clear();
    }
}

/// A producer token for a connection's outbound queue. Dropping the
/// last one lets the writer thread flush and exit.
struct WriterHandle {
    conn: Arc<ConnWriter>,
}

impl Clone for WriterHandle {
    fn clone(&self) -> Self {
        self.conn.attach_producer()
    }
}

impl Drop for WriterHandle {
    fn drop(&mut self) {
        lock_ok(&self.conn.q).producers -= 1;
        self.conn.ready.notify_one();
    }
}

// ------------------------------------------------------------- sessions

struct MailboxState {
    deque: VecDeque<Work>,
    scheduled: bool,
}

/// One live session plus its mailbox and its connection's outbound
/// queue.
struct SessionCell {
    id: u32,
    /// The rank the session annotates, copied out of the session so a
    /// `Query` probe can still label a cell whose engine is checked out
    /// by a worker (or already retired).
    rank: u32,
    state: Mutex<Option<Session>>,
    mailbox: Mutex<MailboxState>,
    space: Condvar,
    cap: usize,
    writer: WriterHandle,
}

impl SessionCell {
    /// Push work, blocking while the mailbox is full (backpressure).
    /// Returns whether the session must be (re-)scheduled.
    fn push(&self, work: Work, stop: &AtomicBool) -> bool {
        let mut mb = lock_ok(&self.mailbox);
        while mb.deque.len() >= self.cap {
            if stop.load(Ordering::Relaxed) {
                return false;
            }
            let (guard, _) = self
                .space
                .wait_timeout(mb, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            mb = guard;
        }
        mb.deque.push_back(work);
        let needs_schedule = !mb.scheduled;
        mb.scheduled = true;
        needs_schedule
    }

    /// Pop the next work item; clears `scheduled` (under the same lock)
    /// when the mailbox is empty.
    fn pop(&self) -> Option<Work> {
        let mut mb = lock_ok(&self.mailbox);
        match mb.deque.pop_front() {
            Some(w) => {
                self.space.notify_one();
                Some(w)
            }
            None => {
                mb.scheduled = false;
                None
            }
        }
    }

    /// Called when a drain quantum expires while the worker still holds
    /// the `scheduled` token (i.e. `pop` never returned `None`): keep
    /// the token and report `true` if items remain (the caller must
    /// re-enqueue the cell), otherwise release the token so the next
    /// push re-schedules the session.
    fn needs_requeue(&self) -> bool {
        let mut mb = lock_ok(&self.mailbox);
        if mb.deque.is_empty() {
            mb.scheduled = false;
            false
        } else {
            true
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// The streaming prediction server. [`Server::bind`], then
/// (optionally) [`Server::with_store`], then [`Server::run`].
pub struct Server {
    listener: Listener,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
    bound: Endpoint,
    store: Option<Arc<SnapshotStore>>,
    metrics: Arc<MetricsRegistry>,
    metrics_bound: Option<SocketAddr>,
    exporter: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind the listening socket (a stale Unix socket file is replaced).
    pub fn bind(endpoint: &Endpoint, cfg: ServeConfig) -> Result<Server, ProtocolError> {
        let (listener, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let bound = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), bound)
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l, path.clone()), Endpoint::Unix(path.clone()))
            }
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(MetricsRegistry::default());
        // Bind the exporter here, not in `run`, so a bad --metrics-addr
        // fails loudly at startup instead of being swallowed mid-serve.
        let (metrics_bound, exporter) = match &cfg.metrics_addr {
            Some(addr) => {
                let (bound_addr, handle) =
                    spawn_exporter(addr, Arc::clone(&metrics), Arc::clone(&stop))?;
                (Some(bound_addr), Some(handle))
            }
            None => (None, None),
        };
        Ok(Server {
            listener,
            cfg,
            stop,
            bound,
            store: None,
            metrics,
            metrics_bound,
            exporter,
        })
    }

    /// Attach a durable snapshot store: sessions persist periodically
    /// and on `Close`, drain flushes every live session, and clients
    /// can rehydrate with an empty-body `Restore`.
    #[must_use]
    pub fn with_store(mut self, store: Arc<SnapshotStore>) -> Server {
        self.store = Some(store);
        self
    }

    /// The actual bound endpoint (resolves a `:0` TCP port request).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.bound
    }

    /// Where the Prometheus exporter listens, when `metrics_addr` was
    /// configured (resolves a `:0` port request).
    #[must_use]
    pub fn metrics_endpoint(&self) -> Option<SocketAddr> {
        self.metrics_bound
    }

    /// The live metrics registry (scrape-equivalent view for tests and
    /// embedding processes).
    #[must_use]
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A flag that stops [`Server::run`] when set from another thread.
    /// Raising it triggers a graceful drain: accepting stops, in-flight
    /// work quiesces, and (with a store) every live session is
    /// persisted before `run` returns.
    #[must_use]
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accept and serve connections until the stop flag is raised or
    /// `session_limit` sessions have closed. Blocks; returns lifetime
    /// counters.
    pub fn run(self) -> ServeSummary {
        let shared = Arc::new(Shared {
            cfg: self.cfg.clone(),
            metrics: Arc::clone(&self.metrics),
            stop: AtomicBool::new(false),
            store: self.store.clone(),
            registry: Mutex::new(HashMap::new()),
        });
        let (ready_tx, ready_rx) = mpsc::channel::<Arc<SessionCell>>();
        let ready_rx = Arc::new(Mutex::new(ready_rx));

        let spawn_worker = |shared: &Arc<Shared>| {
            let rx = Arc::clone(&ready_rx);
            let tx = ready_tx.clone();
            let shared = Arc::clone(shared);
            std::thread::spawn(move || worker_loop(&rx, &tx, &shared))
        };
        let mut workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|_| spawn_worker(&shared))
            .collect();

        let mut readers = Vec::new();
        let mut conn_seq = 0u64;
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            if let Some(limit) = self.cfg.session_limit {
                if shared.metrics.sessions_closed.load(Ordering::Relaxed) >= limit {
                    break;
                }
            }
            // Supervise the pool: a worker only ever exits early if
            // something escaped its panic isolation — replace it so
            // capacity cannot silently ratchet down to zero.
            for w in workers.iter_mut() {
                if w.is_finished() {
                    shared.metrics.worker_respawns.fetch_add(1, Ordering::Relaxed);
                    let fresh = spawn_worker(&shared);
                    let dead = std::mem::replace(w, fresh);
                    let _ = dead.join();
                }
            }
            match self.listener.accept() {
                Ok(stream) => {
                    let shared = Arc::clone(&shared);
                    let ready = ready_tx.clone();
                    let seq = conn_seq;
                    conn_seq += 1;
                    readers.push(std::thread::spawn(move || {
                        serve_connection(stream, seq, &shared, &ready);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }

        // Graceful drain: stop readers and workers, then flush every
        // live store-backed session so a restart can rehydrate it.
        shared.stop.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        for r in readers {
            let _ = r.join();
        }
        drop(ready_tx);
        for w in workers {
            let _ = w.join();
        }
        if shared.store.is_some() {
            let cells: Vec<Arc<SessionCell>> = lock_ok(&shared.registry)
                .values()
                .filter_map(Weak::upgrade)
                .collect();
            for cell in cells {
                persist_cell(&cell, &shared, false);
            }
        }
        if let Listener::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        // The public stop flag is set (just above), which is what the
        // exporter thread polls — join it so `run` returning means
        // every server-owned thread is gone.
        if let Some(exporter) = self.exporter {
            let _ = exporter.join();
        }
        shared.metrics.summary()
    }
}

/// Fill `buf` completely, retrying read timeouts while the server runs.
/// `Ok(false)` means a clean EOF before the first byte. `idle` bounds
/// the total wait (None = wait forever, as long as the server runs).
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
    idle: Option<Duration>,
) -> Result<bool, ProtocolError> {
    let started = Instant::now();
    let mut got = 0;
    while got < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "server shutting down",
            )));
        }
        if let Some(limit) = idle {
            if started.elapsed() >= limit {
                return Err(ProtocolError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "connection idle timeout",
                )));
            }
        }
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(false)
                } else {
                    Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )))
                }
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(true)
}

/// Queue a response on the connection's outbound queue (never blocks
/// on the socket).
fn send_frame(writer: &ConnWriter, frame: &ServerFrame) {
    writer.push(frame.encode());
}

fn send_error(
    writer: &ConnWriter,
    metrics: &MetricsRegistry,
    session: u32,
    code: u16,
    message: String,
) {
    metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
    send_frame(writer, &ServerFrame::Error { session, code, message });
}

/// One connection's read loop: handshake, then route frames until EOF,
/// a protocol error, or server shutdown. Responses flow through the
/// connection's writer thread.
fn serve_connection(
    stream: Stream,
    conn_seq: u64,
    shared: &Arc<Shared>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
) {
    let stream = match &shared.cfg.chaos {
        Some(chaos) => chaos
            .reseeded(chaos.seed ^ (conn_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .wrap(stream),
        None => stream,
    };
    let metrics = &shared.metrics;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    if shared.cfg.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.cfg.write_timeout_ms)));
    }
    let mut write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = stream;
    let idle = (shared.cfg.idle_timeout_ms > 0)
        .then(|| Duration::from_millis(shared.cfg.idle_timeout_ms));

    // Handshake: validate the client's hello, then answer with ours —
    // written directly; the writer thread takes over afterwards.
    let mut hello = [0u8; 6];
    match fill(&mut reader, &mut hello, &shared.stop, idle) {
        Ok(true) => {}
        _ => return,
    }
    if hello[..4] != crate::protocol::MAGIC {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let peer = u16::from_le_bytes([hello[4], hello[5]]);
    if peer != crate::protocol::PROTOCOL_VERSION {
        metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if crate::protocol::write_hello(&mut write_half).is_err() {
        return;
    }

    let conn = ConnWriter::new(shared.cfg.write_queue, Arc::clone(&shared.metrics));
    let writer_handle = conn.attach_producer();
    let writer_thread = {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || conn.writer_loop(write_half))
    };

    let mut sessions: HashMap<u32, Arc<SessionCell>> = HashMap::new();
    loop {
        let mut header = [0u8; FRAME_HEADER_LEN];
        match fill(&mut reader, &mut header, &shared.stop, idle) {
            Ok(true) => {}
            Ok(false) => break, // clean EOF at a frame boundary
            Err(_) => break,
        }
        let (len, crc) = match read_frame_header(header) {
            Ok(v) => v,
            Err(e) => {
                send_error(&conn, metrics, CONNECTION_SESSION, error_code::MALFORMED, e.to_string());
                break;
            }
        };
        let mut payload = vec![0u8; len];
        if !matches!(fill(&mut reader, &mut payload, &shared.stop, idle), Ok(true)) {
            break;
        }
        if let Err(e) = verify_frame_crc(crc, &payload) {
            // The transport corrupted bytes; nothing after this point
            // can be trusted (framing may be lost entirely). Tell the
            // client if the wire still works, then drop the connection.
            send_error(&conn, metrics, CONNECTION_SESSION, error_code::MALFORMED, e.to_string());
            break;
        }
        let frame = match decode_client(&payload) {
            Ok(f) => f,
            Err(e) => {
                send_error(&conn, metrics, CONNECTION_SESSION, error_code::MALFORMED, e.to_string());
                break;
            }
        };
        route(frame, &mut sessions, shared, ready, &conn, &writer_handle);
    }
    // Persist every session the client never closed before abandoning
    // it: a restart (or this client reconnecting after a transport
    // fault) then rehydrates from the state at disconnect instead of
    // the last periodic persist. Work still queued in the mailbox is
    // deliberately not waited for — the record is consistent at some
    // applied-event count and the resume protocol resends the tail.
    if shared.store.is_some() {
        for cell in sessions.values() {
            persist_cell(cell, shared, false);
        }
    }
    // Dropping `sessions` abandons any session the client never closed;
    // queued work still drains (workers hold their own Arcs and their
    // own producer tokens via the cells) but the session no longer
    // counts toward `session_limit`. The writer thread exits once the
    // last producer token drops.
    drop(sessions);
    prune_registry(shared);
    drop(writer_handle);
    reader.shutdown().ok();
    let _ = writer_thread.join();
}

fn route(
    frame: ClientFrame,
    sessions: &mut HashMap<u32, Arc<SessionCell>>,
    shared: &Arc<Shared>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
    conn: &Arc<ConnWriter>,
    writer_handle: &WriterHandle,
) {
    let metrics = &shared.metrics;
    match frame {
        ClientFrame::Open { session, rank, config } => {
            if sessions.contains_key(&session) {
                send_error(
                    conn,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            let cell = new_cell(session, Session::open(rank, *config), shared, writer_handle);
            register(shared, session, &cell);
            sessions.insert(session, cell);
            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            send_frame(conn, &ServerFrame::OpenAck { session, events_applied: 0 });
        }
        ClientFrame::Restore { session, snapshot } => {
            if sessions.contains_key(&session) {
                send_error(
                    conn,
                    metrics,
                    session,
                    error_code::DUPLICATE_SESSION,
                    format!("session {session} is already open"),
                );
                return;
            }
            if snapshot.is_empty() {
                restore_from_store(session, sessions, shared, conn, writer_handle);
                return;
            }
            match Session::restore(&snapshot) {
                Ok(restored) => {
                    let events_applied = restored.events_applied();
                    let cell = new_cell(session, restored, shared, writer_handle);
                    register(shared, session, &cell);
                    sessions.insert(session, cell);
                    metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    send_frame(conn, &ServerFrame::OpenAck { session, events_applied });
                }
                Err(e) => send_error(
                    conn,
                    metrics,
                    session,
                    error_code::BAD_SNAPSHOT,
                    e.to_string(),
                ),
            }
        }
        ClientFrame::Events { session, events } => {
            enqueue(sessions, session, Work::Events(events), shared, ready, conn);
        }
        ClientFrame::Flush { session } => {
            enqueue(sessions, session, Work::Flush, shared, ready, conn);
        }
        ClientFrame::Snapshot { session } => {
            enqueue(sessions, session, Work::Snapshot, shared, ready, conn);
        }
        ClientFrame::Close { session, final_compute_ns } => {
            let routed = enqueue(
                sessions,
                session,
                Work::Close(final_compute_ns),
                shared,
                ready,
                conn,
            );
            if routed {
                // No further frames may address this id on this
                // connection (a later Open may reuse it for a new
                // session).
                sessions.remove(&session);
            }
        }
        ClientFrame::Query { session } => {
            // Answered inline on the reader thread, like Open/Restore:
            // the report samples engines via try_lock and never enters
            // any mailbox, so a mid-stream query cannot reorder or
            // delay session work.
            let report = build_report(shared, session);
            metrics.queries_answered.fetch_add(1, Ordering::Relaxed);
            send_frame(conn, &ServerFrame::QueryReply { session, report: Box::new(report) });
        }
    }
}

/// Assemble the [`ObsReport`] answering a `Query` for `target`
/// ([`CONNECTION_SESSION`] = fleet view). Engine state is sampled with
/// `try_lock`: a cell whose engine is checked out by a worker yields a
/// `busy` probe instead of blocking the reader behind the worker.
fn build_report(shared: &Shared, target: u32) -> ObsReport {
    let metrics = &shared.metrics;
    let mut cells: Vec<Arc<SessionCell>> = {
        let mut reg = lock_ok(&shared.registry);
        reg.retain(|_, w| w.strong_count() > 0);
        reg.values().filter_map(Weak::upgrade).collect()
    };
    cells.sort_by_key(|c| c.id);
    metrics.sessions_live.store(cells.len() as u64, Ordering::Relaxed);
    let mut probes = Vec::new();
    for cell in &cells {
        if target != CONNECTION_SESSION && cell.id != target {
            continue;
        }
        let mailbox_depth = lock_ok(&cell.mailbox).deque.len() as u32;
        let probe = match cell.state.try_lock() {
            Ok(guard) => match guard.as_ref() {
                Some(sess) => sess.probe(cell.id, mailbox_depth),
                None => SessionProbe::busy(cell.id, cell.rank, mailbox_depth),
            },
            Err(std::sync::TryLockError::WouldBlock) => {
                SessionProbe::busy(cell.id, cell.rank, mailbox_depth)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => match p.into_inner().as_ref() {
                Some(sess) => sess.probe(cell.id, mailbox_depth),
                None => SessionProbe::busy(cell.id, cell.rank, mailbox_depth),
            },
        };
        probes.push(probe);
    }
    let store = shared.store.as_ref().map(|s| {
        let entries = s.sessions();
        StoreProbe {
            sessions: entries.len() as u32,
            closed: entries.iter().filter(|(_, e)| e.closed).count() as u32,
            complete_histories: entries.iter().filter(|(_, e)| e.history_complete).count() as u32,
        }
    });
    ObsReport {
        server: ServerProbe {
            summary: metrics.summary(),
            sessions_live: cells.len() as u32,
            workers: shared.cfg.workers.max(1) as u32,
            queue_depth_limit: shared.cfg.queue_depth.max(1) as u32,
            ready_queue_depth: metrics.ready_queue_depth.load(Ordering::Relaxed) as u32,
            writer_queue_depth: metrics.writer_queue_depth.load(Ordering::Relaxed) as u32,
            store,
            chaos_intensity: shared.cfg.chaos.as_ref().map(ChaosConfig::fault_rate),
        },
        sessions: probes,
    }
}

/// Drop registry entries whose cells are gone and refresh the
/// `sessions_live` gauge.
fn prune_registry(shared: &Shared) {
    let mut reg = lock_ok(&shared.registry);
    reg.retain(|_, w| w.strong_count() > 0);
    shared
        .metrics
        .sessions_live
        .store(reg.len() as u64, Ordering::Relaxed);
}

/// Handle an empty-body `Restore`: rehydrate the session from the
/// snapshot store, answering `OpenAck` (resume position) plus a
/// `Directives` frame replaying the stored history.
fn restore_from_store(
    session: u32,
    sessions: &mut HashMap<u32, Arc<SessionCell>>,
    shared: &Arc<Shared>,
    conn: &Arc<ConnWriter>,
    writer_handle: &WriterHandle,
) {
    let metrics = &shared.metrics;
    let Some(store) = shared.store.as_ref() else {
        send_error(
            conn,
            metrics,
            session,
            error_code::NO_SNAPSHOT,
            "server runs without a snapshot store".into(),
        );
        return;
    };
    let record = match store.load(session) {
        Ok(Some(r)) if r.history_complete => r,
        Ok(Some(_)) => {
            send_error(
                conn,
                metrics,
                session,
                error_code::NO_SNAPSHOT,
                format!(
                    "session {session} has a stored snapshot but an incomplete directive \
                     history; re-open and replay from the start"
                ),
            );
            return;
        }
        Ok(None) => {
            send_error(
                conn,
                metrics,
                session,
                error_code::NO_SNAPSHOT,
                format!("no stored snapshot for session {session}"),
            );
            return;
        }
        Err(e) => {
            send_error(
                conn,
                metrics,
                session,
                error_code::INTERNAL,
                format!("snapshot store read failed: {e}"),
            );
            return;
        }
    };
    match Session::restore_from_record(&record) {
        Ok(restored) => {
            let cell = new_cell(session, restored, shared, writer_handle);
            register(shared, session, &cell);
            sessions.insert(session, cell);
            metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
            metrics.sessions_rehydrated.fetch_add(1, Ordering::Relaxed);
            send_frame(conn, &ServerFrame::OpenAck { session, events_applied: record.events });
            // Replay the stored history so the client can rebuild its
            // parity accounting from event 0 before resuming.
            send_frame(
                conn,
                &ServerFrame::Directives {
                    session,
                    events_applied: record.events,
                    directives: record.directives,
                },
            );
        }
        Err(e) => send_error(
            conn,
            metrics,
            session,
            error_code::BAD_SNAPSHOT,
            format!("stored snapshot for session {session} failed to restore: {e}"),
        ),
    }
}

fn new_cell(
    id: u32,
    session: Session,
    shared: &Arc<Shared>,
    writer_handle: &WriterHandle,
) -> Arc<SessionCell> {
    Arc::new(SessionCell {
        id,
        rank: session.rank,
        state: Mutex::new(Some(session)),
        mailbox: Mutex::new(MailboxState { deque: VecDeque::new(), scheduled: false }),
        space: Condvar::new(),
        cap: shared.cfg.queue_depth.max(1),
        writer: writer_handle.clone(),
    })
}

/// Track a live session for `Query` fleet probes and (with a store)
/// the drain sweep.
fn register(shared: &Shared, session: u32, cell: &Arc<SessionCell>) {
    let mut reg = lock_ok(&shared.registry);
    reg.retain(|_, w| w.strong_count() > 0);
    reg.insert(session, Arc::downgrade(cell));
    shared
        .metrics
        .sessions_live
        .store(reg.len() as u64, Ordering::Relaxed);
}

fn enqueue(
    sessions: &mut HashMap<u32, Arc<SessionCell>>,
    session: u32,
    work: Work,
    shared: &Arc<Shared>,
    ready: &mpsc::Sender<Arc<SessionCell>>,
    conn: &Arc<ConnWriter>,
) -> bool {
    let Some(cell) = sessions.get(&session) else {
        send_error(
            conn,
            &shared.metrics,
            session,
            error_code::UNKNOWN_SESSION,
            format!("session {session} is not open"),
        );
        return false;
    };
    if cell.push(work, &shared.stop) {
        shared.metrics.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
        let _ = ready.send(Arc::clone(cell));
    }
    true
}

fn worker_loop(
    ready: &Mutex<mpsc::Receiver<Arc<SessionCell>>>,
    requeue: &mpsc::Sender<Arc<SessionCell>>,
    shared: &Arc<Shared>,
) {
    loop {
        // Workers hold a `requeue` sender, so the channel never
        // disconnects while they live — poll the stop flag instead of
        // relying on `recv` erroring out at shutdown.
        let cell = {
            let rx = lock_ok(ready);
            rx.recv_timeout(Duration::from_millis(100))
        };
        let cell = match cell {
            Ok(cell) => {
                shared.metrics.ready_queue_depth.fetch_sub(1, Ordering::Relaxed);
                cell
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut emptied = false;
        for _ in 0..DRAIN_QUANTUM {
            match cell.pop() {
                Some(work) => {
                    // Panic isolation: a panicking work item loses its
                    // own session, never the worker or the server.
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        handle_work(&cell, work, shared);
                    }));
                    if caught.is_err() {
                        shared.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                        *lock_ok(&cell.state) = None;
                        send_error(
                            &cell.writer.conn,
                            &shared.metrics,
                            cell.id,
                            error_code::INTERNAL,
                            format!(
                                "worker panicked applying session {}; session dropped",
                                cell.id
                            ),
                        );
                    }
                }
                None => {
                    emptied = true; // `pop` released the scheduled token
                    break;
                }
            }
        }
        if !emptied && cell.needs_requeue() {
            shared.metrics.ready_queue_depth.fetch_add(1, Ordering::Relaxed);
            let _ = requeue.send(Arc::clone(&cell));
        }
    }
}

/// Build and persist a [`StoreRecord`] for a live cell. `closing`
/// marks the record closed (persisted just before the `Closed` ack so
/// a crash in between is recoverable by re-closing).
fn persist_cell(cell: &SessionCell, shared: &Shared, closing: bool) {
    let Some(store) = shared.store.as_ref() else { return };
    let record = {
        let mut guard = lock_ok(&cell.state);
        let Some(sess) = guard.as_mut() else { return };
        let record = StoreRecord {
            record_version: RECORD_VERSION,
            session: cell.id,
            rank: sess.rank,
            events: sess.events_applied(),
            closed: closing,
            history_complete: sess.history_complete(),
            directives: sess.history(),
            snapshot: sess.snapshot(),
        };
        sess.mark_persisted();
        record
    };
    // Disk I/O happens outside the session lock.
    match store.persist(&record) {
        Ok(()) => {
            shared.metrics.snapshots_persisted.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            shared.metrics.persist_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_work(cell: &SessionCell, work: Work, shared: &Shared) {
    let metrics = &shared.metrics;
    let writer = &cell.writer.conn;
    let mut guard = lock_ok(&cell.state);
    let Some(sess) = guard.as_mut() else {
        drop(guard);
        send_error(
            writer,
            metrics,
            cell.id,
            error_code::UNKNOWN_SESSION,
            format!("session {} already closed", cell.id),
        );
        return;
    };
    match work {
        Work::Events(events) => {
            if let Some(bad) = shared.cfg.panic_on_call {
                assert!(
                    !events.iter().any(|&(call, _)| call == bad),
                    "chaos hook: panic_on_call {bad} hit"
                );
            }
            metrics.events_applied.fetch_add(events.len() as u64, Ordering::Relaxed);
            let (events_applied, directives) = sess.apply(&events);
            metrics
                .directives_sent
                .fetch_add(directives.len() as u64, Ordering::Relaxed);
            let stats = (shared.cfg.stats_every > 0
                && sess.events_since_stats() >= shared.cfg.stats_every)
                .then(|| {
                    sess.mark_stats_emitted();
                    sess.stats()
                });
            let persist = shared.store.is_some()
                && shared.cfg.persist_every > 0
                && sess.events_since_persist() >= shared.cfg.persist_every;
            drop(guard);
            send_frame(
                writer,
                &ServerFrame::Directives { session: cell.id, events_applied, directives },
            );
            if let Some(stats) = stats {
                send_frame(
                    writer,
                    &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) },
                );
            }
            if persist {
                persist_cell(cell, shared, false);
            }
        }
        Work::Flush => {
            let stats = sess.stats();
            sess.mark_stats_emitted();
            drop(guard);
            send_frame(
                writer,
                &ServerFrame::Stats { session: cell.id, stats: Box::new(stats) },
            );
        }
        Work::Snapshot => {
            let snapshot = sess.snapshot_bytes();
            drop(guard);
            send_frame(writer, &ServerFrame::SnapshotData { session: cell.id, snapshot });
        }
        Work::Close(final_compute_ns) => {
            drop(guard);
            // Persist the pre-close state first: a crash between this
            // point and the `Closed` ack leaves a record the client
            // can restore and re-close — the deterministic finish
            // re-issues identical final directives.
            persist_cell(cell, shared, true);
            let mut guard = lock_ok(&cell.state);
            let sess = guard.take().expect("session present: checked above");
            drop(guard);
            {
                let mut reg = lock_ok(&shared.registry);
                reg.remove(&cell.id);
                metrics.sessions_live.store(reg.len() as u64, Ordering::Relaxed);
            }
            let events_applied = sess.events_applied();
            let (fresh, directives_total, stats) = sess.close(final_compute_ns);
            metrics
                .directives_sent
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            metrics.sessions_closed.fetch_add(1, Ordering::Relaxed);
            if !fresh.is_empty() {
                send_frame(
                    writer,
                    &ServerFrame::Directives {
                        session: cell.id,
                        events_applied,
                        directives: fresh,
                    },
                );
            }
            send_frame(
                writer,
                &ServerFrame::Closed {
                    session: cell.id,
                    directives_total,
                    stats: Box::new(stats),
                },
            );
        }
    }
}
