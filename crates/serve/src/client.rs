//! Protocol client and the multi-session load generator.
//!
//! [`Client`] is a blocking, single-threaded protocol speaker: one
//! request, then read until the matching response (tolerating
//! unsolicited periodic [`ServerFrame::Stats`] in between). Dropping a
//! client sends a best-effort `Close` for every session it still has
//! open and shuts the socket down; [`Client::abandon`] skips that, for
//! callers that *want* the server to see an abrupt disconnect (crash
//! simulation, reconnect-and-restore cycles).
//!
//! [`run_load`] drives many sessions concurrently — one connection and
//! one thread per session, like a real PMPI shim fleet — measuring
//! aggregate throughput and per-batch directive latency, optionally
//! exercising the snapshot/restore reconnect path and checking
//! end-to-end parity against offline golden annotations. With
//! [`LoadConfig::drivers`] set, the fleet is instead multiplexed over
//! a handful of driver connections (scale mode) with a paced open
//! ramp, which is how the 10k+-session scaling runs are driven.
//!
//! ## Resilience
//!
//! Every session thread runs a reconnect loop governed by a
//! [`RetryPolicy`]: capped exponential backoff with seeded jitter
//! between connection attempts, a per-request read deadline so a stalled
//! server cannot hang the client forever, and a hard attempt budget
//! after which the session abandons its stream and reports
//! `gave_up` in its [`SessionOutcome`] (aggregated as
//! [`LoadReport::gave_up`]) instead of sinking the whole fleet. After a
//! reconnect the client first tries a store rehydration (empty-body
//! `Restore`): the server answers with the resume position and replays
//! the session's full directive history, so the client rebuilds its
//! parity journal from event 0 and resumes streaming where the server
//! left off. If the server has no usable record
//! ([`error_code::NO_SNAPSHOT`]) the client falls back to a fresh
//! `Open` and replays its own event stream from the start — the engine
//! is deterministic, so either path converges on the same directives.

use crate::chaos::ChaosConfig;
use crate::metrics::ObsReport;
use crate::protocol::{
    decode_server, error_code, read_frame, write_frame, ClientFrame, ProtocolError, ServerFrame,
    WireEvent, CONNECTION_SESSION,
};
use crate::server::{Endpoint, Stream};
use ibp_core::{LaneDirective, PowerConfig, RankStats};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::Serialize;
use std::io::{BufReader, BufWriter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
    open_sessions: Vec<u32>,
    close_on_drop: bool,
}

/// Connection-time options for [`Client::connect_with`].
#[derive(Debug, Clone, Default)]
pub struct ConnectOptions {
    /// Wrap the connection in the fault-injecting chaos harness.
    pub chaos: Option<ChaosConfig>,
    /// Per-request read deadline, milliseconds (0 = block forever). A
    /// response that takes longer fails the request with a timeout
    /// `Io` error, which the resilient driver treats as a reconnect.
    pub read_timeout_ms: u64,
}

impl Client {
    /// Connect and perform the handshake.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ProtocolError> {
        Client::connect_with(endpoint, &ConnectOptions::default())
    }

    /// Connect with explicit options (chaos wrapper, read deadline).
    pub fn connect_with(
        endpoint: &Endpoint,
        opts: &ConnectOptions,
    ) -> Result<Client, ProtocolError> {
        let mut stream = endpoint.connect()?;
        if let Some(chaos) = &opts.chaos {
            stream = chaos.wrap(stream);
        }
        if opts.read_timeout_ms > 0 {
            stream.set_read_timeout(Some(Duration::from_millis(opts.read_timeout_ms)))?;
        }
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::with_capacity(64 * 1024, stream),
            open_sessions: Vec::new(),
            close_on_drop: true,
        };
        crate::protocol::write_hello(&mut client.writer)?;
        crate::protocol::read_hello(&mut client.reader)?;
        Ok(client)
    }

    /// Drop the connection *without* closing open sessions — the server
    /// sees an abrupt disconnect, exactly like a client crash. Use this
    /// before a reconnect-and-restore cycle; a plain drop would send
    /// `Close` and finish the sessions instead.
    pub fn abandon(mut self) {
        self.close_on_drop = false;
        let _ = self.writer.get_ref().shutdown();
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ProtocolError> {
        write_frame(&mut self.writer, &frame.encode())
    }

    /// Read the next server frame (any kind).
    pub fn recv(&mut self) -> Result<ServerFrame, ProtocolError> {
        match read_frame(&mut self.reader)? {
            Some(payload) => decode_server(&payload),
            None => Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Read frames until `want` accepts one; unsolicited `Stats` frames
    /// are skipped, `Error` frames become [`ProtocolError::Remote`].
    fn expect<T>(
        &mut self,
        what: &str,
        mut want: impl FnMut(ServerFrame) -> Option<T>,
    ) -> Result<T, ProtocolError> {
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { .. } => continue,
                ServerFrame::QueryReply { .. } => continue,
                other => match want(other) {
                    Some(v) => return Ok(v),
                    None => {
                        return Err(ProtocolError::Unexpected(format!(
                            "waiting for {what}"
                        )))
                    }
                },
            }
        }
    }

    /// Open a fresh session; waits for the acknowledgement.
    pub fn open(
        &mut self,
        session: u32,
        rank: u32,
        config: &PowerConfig,
    ) -> Result<(), ProtocolError> {
        self.send(&ClientFrame::Open {
            session,
            rank,
            config: Box::new(config.clone()),
        })?;
        self.expect("OpenAck", |f| match f {
            ServerFrame::OpenAck { .. } => Some(()),
            _ => None,
        })?;
        self.open_sessions.push(session);
        Ok(())
    }

    /// Open a session from snapshot bytes; waits for the
    /// acknowledgement and returns the server's resume position.
    pub fn restore(&mut self, session: u32, snapshot: &[u8]) -> Result<u64, ProtocolError> {
        self.send(&ClientFrame::Restore { session, snapshot: snapshot.to_vec() })?;
        let applied = self.expect("OpenAck", |f| match f {
            ServerFrame::OpenAck { events_applied, .. } => Some(events_applied),
            _ => None,
        })?;
        self.open_sessions.push(session);
        Ok(applied)
    }

    /// Rehydrate a session from the server's durable snapshot store
    /// (empty-body `Restore`). Returns the resume position and the
    /// session's full directive history replayed from the stored
    /// record, so the caller can rebuild its parity journal from
    /// event 0. Fails with [`ProtocolError::Remote`] carrying
    /// [`error_code::NO_SNAPSHOT`] when the server has no usable record
    /// — fall back to a fresh [`Client::open`].
    pub fn restore_from_store(
        &mut self,
        session: u32,
    ) -> Result<(u64, Vec<LaneDirective>), ProtocolError> {
        self.send(&ClientFrame::Restore { session, snapshot: Vec::new() })?;
        let applied = self.expect("OpenAck", |f| match f {
            ServerFrame::OpenAck { events_applied, .. } => Some(events_applied),
            _ => None,
        })?;
        let history = self.expect("Directives", |f| match f {
            ServerFrame::Directives { directives, .. } => Some(directives),
            _ => None,
        })?;
        self.open_sessions.push(session);
        Ok((applied, history))
    }

    /// Stream one event batch; returns the server's total applied-event
    /// count and the directives the batch produced.
    pub fn send_events(
        &mut self,
        session: u32,
        events: &[WireEvent],
    ) -> Result<(u64, Vec<LaneDirective>), ProtocolError> {
        self.send(&ClientFrame::Events { session, events: events.to_vec() })?;
        self.expect("Directives", |f| match f {
            ServerFrame::Directives { events_applied, directives, .. } => {
                Some((events_applied, directives))
            }
            _ => None,
        })
    }

    /// Request an immediate statistics summary.
    pub fn flush_stats(&mut self, session: u32) -> Result<RankStats, ProtocolError> {
        self.send(&ClientFrame::Flush { session })?;
        // Flush answers with Stats, which `expect` normally skips —
        // match it directly here.
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { stats, .. } => return Ok(*stats),
                _ => continue,
            }
        }
    }

    /// Capture the session's learned state for a later [`Client::restore`].
    pub fn snapshot(&mut self, session: u32) -> Result<Vec<u8>, ProtocolError> {
        self.send(&ClientFrame::Snapshot { session })?;
        self.expect("SnapshotData", |f| match f {
            ServerFrame::SnapshotData { snapshot, .. } => Some(snapshot),
            _ => None,
        })
    }

    /// Probe one session's live state without perturbing its stream.
    ///
    /// The server answers `Query` inline on the reader thread — it
    /// never enters the session mailbox — so an interleaved query is
    /// invisible to the event/directive stream. The report carries
    /// server-wide counters plus (at most) one [`ObsReport::sessions`]
    /// entry for `session`.
    pub fn query(&mut self, session: u32) -> Result<ObsReport, ProtocolError> {
        self.send(&ClientFrame::Query { session })?;
        self.expect_report()
    }

    /// Probe the whole fleet: server-wide counters plus one probe per
    /// live session, in session-id order. Uses the reserved
    /// [`CONNECTION_SESSION`] id, which `Query` (alone among client
    /// frames) accepts.
    pub fn query_server(&mut self) -> Result<ObsReport, ProtocolError> {
        self.send(&ClientFrame::Query { session: CONNECTION_SESSION })?;
        self.expect_report()
    }

    fn expect_report(&mut self) -> Result<ObsReport, ProtocolError> {
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { .. } => continue,
                ServerFrame::QueryReply { report, .. } => return Ok(*report),
                other => {
                    return Err(ProtocolError::Unexpected(format!(
                        "waiting for QueryReply, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Finish the stream. Returns any directives issued by the final
    /// compute interval, the lifetime directive count, and final stats.
    pub fn close(
        &mut self,
        session: u32,
        final_compute_ns: u64,
    ) -> Result<(Vec<LaneDirective>, u64, RankStats), ProtocolError> {
        self.send(&ClientFrame::Close { session, final_compute_ns })?;
        let mut last = Vec::new();
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { .. } => continue,
                ServerFrame::QueryReply { .. } => continue,
                ServerFrame::Directives { directives, .. } => last.extend(directives),
                ServerFrame::Closed { directives_total, stats, .. } => {
                    self.open_sessions.retain(|&s| s != session);
                    return Ok((last, directives_total, *stats));
                }
                other => {
                    return Err(ProtocolError::Unexpected(format!(
                        "waiting for Closed, got {other:?}"
                    )))
                }
            }
        }
    }
}

impl Drop for Client {
    /// Best-effort cleanup: `Close` (with zero trailing compute) every
    /// session still open on this connection, then shut the socket
    /// down. Replies are not awaited and write errors are swallowed —
    /// the point is to let a *healthy* server reap sessions instead of
    /// carrying them until the connection times out. [`Client::abandon`]
    /// opts out.
    fn drop(&mut self) {
        if self.close_on_drop {
            for session in std::mem::take(&mut self.open_sessions) {
                let frame = ClientFrame::Close { session, final_compute_ns: 0 };
                if write_frame(&mut self.writer, &frame.encode()).is_err() {
                    break;
                }
            }
        }
        let _ = self.writer.get_ref().shutdown();
    }
}

/// Reconnect/backoff/deadline policy for the resilient session driver.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive failed attempts (connection or request) before the
    /// driver abandons the session (reported as `gave_up` in its
    /// [`SessionOutcome`]). `1` means no retries at all.
    pub max_attempts: u32,
    /// First backoff delay, milliseconds; doubles per consecutive
    /// failure.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed for the jitter PRNG (deterministic per session: the driver
    /// mixes the session id in).
    pub jitter_seed: u64,
    /// Per-request read deadline, milliseconds (0 = none).
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 20,
            max_backoff_ms: 1_000,
            jitter_seed: 0x1BF0_77E5,
            deadline_ms: 10_000,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `failure` (1-based), with jitter
    /// drawn from `rng`: `min(base · 2^(failure-1), max)` plus up to
    /// one extra `base` of jitter.
    fn backoff(&self, failure: u32, rng: &mut StdRng) -> Duration {
        let exp = failure.saturating_sub(1).min(16);
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms);
        let jitter = if self.base_backoff_ms > 0 {
            rng.next_u64() % self.base_backoff_ms
        } else {
            0
        };
        Duration::from_millis(raw + jitter)
    }
}

/// Whether an error is worth a reconnect-and-restore cycle (transport
/// trouble, shed responses, a server-side session loss) or terminal
/// (a protocol-level rejection a retry would only repeat).
fn reconnectable(e: &ProtocolError) -> bool {
    match e {
        ProtocolError::Io(_)
        | ProtocolError::ChecksumMismatch { .. }
        | ProtocolError::BadMagic(_)
        | ProtocolError::Unexpected(_)
        | ProtocolError::UnknownKind(_)
        | ProtocolError::Malformed { .. } => true,
        // DUPLICATE_SESSION is transient after an abandon: the server
        // refuses to resurrect an id until the dead connection's
        // teardown persist finishes, so backing off and retrying is
        // exactly right.
        ProtocolError::Remote { code, .. } => matches!(
            *code,
            error_code::OVERLOAD
                | error_code::UNKNOWN_SESSION
                | error_code::INTERNAL
                | error_code::MALFORMED
                | error_code::DUPLICATE_SESSION
        ),
        _ => false,
    }
}

/// One session's worth of work for the load generator.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The simulated rank this session annotates.
    pub rank: u32,
    /// Runtime configuration for the session.
    pub config: PowerConfig,
    /// The full event stream (call id, gap ns), oldest first.
    pub events: Vec<WireEvent>,
    /// Trailing compute after the last call.
    pub final_compute_ns: u64,
    /// Expected directives from an offline `annotate_rank` run, for
    /// `--check` parity.
    pub golden_directives: Option<Vec<LaneDirective>>,
    /// Expected final stats from the offline run.
    pub golden_stats: Option<RankStats>,
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Events per `Events` frame.
    pub batch: usize,
    /// If set, snapshot at this fraction of the stream, drop the
    /// connection, reconnect, restore, and continue — exercising the
    /// reconnect path. Clamped to `(0, 1)`.
    pub split: Option<f64>,
    /// Verify streamed directives (and final stats) against the spec's
    /// golden annotation.
    pub check: bool,
    /// Wrap every connection in the fault-injecting chaos harness
    /// (each connection gets a decorrelated fault stream derived from
    /// this config's seed).
    pub chaos: Option<ChaosConfig>,
    /// Reconnect/backoff/deadline policy.
    pub retry: RetryPolicy,
    /// Scale mode: multiplex all sessions over this many driver
    /// connections (round-robin partition by session id) instead of
    /// one connection + one thread per session. `0` keeps the classic
    /// per-session mode. A thread per session stops working around a
    /// few thousand sessions; drivers make 10k+ sessions drivable from
    /// one process. Incompatible with `split` and `chaos`.
    pub drivers: usize,
    /// Scale mode: cap on session `Open`s per second across all
    /// drivers (`0` = unlimited). Bounds the open ramp so a fleet
    /// arriving at once does not hit a cold server as a single burst.
    pub open_rate: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            batch: 64,
            split: None,
            check: false,
            chaos: None,
            retry: RetryPolicy::default(),
            drivers: 0,
            open_rate: 0,
        }
    }
}

/// Per-session result of a load run.
#[derive(Debug, Clone, Serialize)]
pub struct SessionOutcome {
    /// Session id (index into the spec list).
    pub session: u32,
    /// The rank the session drove.
    pub rank: u32,
    /// Events streamed.
    pub events: u64,
    /// Directives received.
    pub directives: u64,
    /// Reconnect cycles this session survived.
    pub reconnects: u64,
    /// The session exhausted its [`RetryPolicy`] attempt budget and
    /// abandoned the stream early; `events`/`directives` count what
    /// landed before it quit.
    pub gave_up: bool,
    /// Parity verdict (`None` when no golden annotation was supplied or
    /// checking was off).
    pub parity_ok: Option<bool>,
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Events streamed across all sessions.
    pub events_total: u64,
    /// Directives received across all sessions.
    pub directives_total: u64,
    /// `Events` frames sent.
    pub batches: u64,
    /// Reconnect cycles across all sessions (0 on a healthy transport).
    pub reconnects: u64,
    /// Sessions that exhausted their retry budget and gave up without
    /// closing (0 on a healthy run; a nonzero value also forces
    /// `parity_ok` to `false` when checking is on).
    pub gave_up: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_s: f64,
    /// Aggregate throughput.
    pub events_per_sec: f64,
    /// Median send→directives latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile send→directives latency, microseconds.
    pub latency_p99_us: f64,
    /// Worst send→directives latency, microseconds.
    pub latency_max_us: f64,
    /// Whether parity checking ran.
    pub parity_checked: bool,
    /// All checked sessions matched their golden annotations.
    pub parity_ok: bool,
    /// Per-session outcomes, in session order.
    pub per_session: Vec<SessionOutcome>,
}

/// Drive every spec as its own connection+thread against `endpoint`.
///
/// Returns after all sessions finish; a terminal protocol error fails
/// the run, but a session that exhausts its retry budget is *reported*
/// (per-session `gave_up`, aggregate [`LoadReport::gave_up`]) rather
/// than failing the whole fleet — under heavy chaos some sessions
/// legitimately lose the race, and the caller decides whether that is
/// acceptable.
pub fn run_load(
    endpoint: &Endpoint,
    specs: Vec<SessionSpec>,
    cfg: &LoadConfig,
) -> Result<LoadReport, ProtocolError> {
    if cfg.drivers > 0 {
        return run_load_scale(endpoint, specs, cfg);
    }
    let sessions = specs.len();
    let start = Instant::now();
    let handles: Vec<_> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let endpoint = endpoint.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || drive_session(&endpoint, i as u32, spec, &cfg))
        })
        .collect();

    let mut outcomes = Vec::with_capacity(sessions);
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok((outcome, lats))) => {
                outcomes.push(outcome);
                latencies_ns.extend(lats);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(ProtocolError::Unexpected("session thread panicked".into()))
                })
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(aggregate(outcomes, latencies_ns, sessions, start.elapsed().as_secs_f64(), cfg.check))
}

/// Fold per-session outcomes and batch latencies into a [`LoadReport`]
/// (shared by the classic and scale drivers).
fn aggregate(
    mut outcomes: Vec<SessionOutcome>,
    mut latencies_ns: Vec<u64>,
    sessions: usize,
    elapsed_s: f64,
    parity_checked: bool,
) -> LoadReport {
    outcomes.sort_by_key(|o| o.session);
    latencies_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * q).round() as usize;
        latencies_ns[idx] as f64 / 1_000.0
    };
    let events_total: u64 = outcomes.iter().map(|o| o.events).sum();
    let directives_total: u64 = outcomes.iter().map(|o| o.directives).sum();
    let reconnects: u64 = outcomes.iter().map(|o| o.reconnects).sum();
    let gave_up: u64 = outcomes.iter().filter(|o| o.gave_up).count() as u64;
    let parity_ok = !parity_checked || outcomes.iter().all(|o| o.parity_ok != Some(false));
    LoadReport {
        sessions,
        events_total,
        directives_total,
        batches: latencies_ns.len() as u64,
        reconnects,
        gave_up,
        elapsed_s,
        events_per_sec: if elapsed_s > 0.0 { events_total as f64 / elapsed_s } else { 0.0 },
        latency_p50_us: pct(0.50),
        latency_p99_us: pct(0.99),
        latency_max_us: pct(1.0),
        parity_checked,
        parity_ok,
        per_session: outcomes,
    }
}

/// Scale mode: partition the fleet round-robin over `cfg.drivers`
/// connections, each multiplexing its share of sessions (synchronous
/// request/response, traffic localized to a bounded active window per
/// driver — see [`drive_partition`]). The `Open` ramp is paced
/// globally by [`LoadConfig::open_rate`].
fn run_load_scale(
    endpoint: &Endpoint,
    specs: Vec<SessionSpec>,
    cfg: &LoadConfig,
) -> Result<LoadReport, ProtocolError> {
    if cfg.split.is_some() || cfg.chaos.is_some() {
        return Err(ProtocolError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "scale mode (drivers > 0) is incompatible with --split and chaos injection",
        )));
    }
    let sessions = specs.len();
    let drivers = cfg.drivers.min(sessions.max(1));
    let start = Instant::now();
    let open_tickets = Arc::new(AtomicU64::new(0));
    let mut parts: Vec<Vec<(u32, SessionSpec)>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, spec) in specs.into_iter().enumerate() {
        parts[i % drivers].push((i as u32, spec));
    }
    let handles: Vec<_> = parts
        .into_iter()
        .map(|part| {
            let endpoint = endpoint.clone();
            let cfg = cfg.clone();
            let tickets = Arc::clone(&open_tickets);
            std::thread::spawn(move || drive_partition(&endpoint, part, &cfg, &tickets, start))
        })
        .collect();

    let mut outcomes = Vec::with_capacity(sessions);
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok((outs, lats))) => {
                outcomes.extend(outs);
                latencies_ns.extend(lats);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(ProtocolError::Unexpected("driver thread panicked".into()))
                })
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(aggregate(outcomes, latencies_ns, sessions, start.elapsed().as_secs_f64(), cfg.check))
}

/// Sleep until this open's ticket comes due under the global
/// opens-per-second cap.
fn pace_open(tickets: &AtomicU64, rate: u64, start: Instant) {
    if rate == 0 {
        return;
    }
    let ticket = tickets.fetch_add(1, Ordering::Relaxed);
    let due = Duration::from_nanos(ticket.saturating_mul(1_000_000_000) / rate);
    let elapsed = start.elapsed();
    if due > elapsed {
        std::thread::sleep(due - elapsed);
    }
}

/// Sessions a scale-mode driver actively streams at once. Every
/// session in the partition is *open* for the whole run — the point of
/// scale mode is a fleet of concurrent sessions — but traffic cycles
/// through a bounded window of them: a session gets batches until its
/// stream drains and it closes, then the window refills from the idle
/// backlog. That is the mostly-idle traffic mix real fleets show
/// (COUNTDOWN's observation that most MPI time is wait time), and it
/// is the access pattern a `--max-hot-sessions` LRU is designed for —
/// the hot set is the active windows, not the whole fleet. Round-robin
/// over *all* sessions would instead be the LRU's pathological case
/// (every touch a miss at any cap below the session count).
const ACTIVE_WINDOW: usize = 32;

/// One scale-mode driver: open every session in the partition (paced),
/// then stream a sliding [`ACTIVE_WINDOW`] of sessions to completion,
/// closing each as it drains. Parity journals are kept only under
/// `check` — at 10k+ sessions the journals, not the sockets, would
/// otherwise dominate client memory — and each is dropped at its
/// session's close.
#[allow(clippy::type_complexity)]
fn drive_partition(
    endpoint: &Endpoint,
    part: Vec<(u32, SessionSpec)>,
    cfg: &LoadConfig,
    tickets: &AtomicU64,
    start: Instant,
) -> Result<(Vec<SessionOutcome>, Vec<u64>), ProtocolError> {
    let batch = cfg.batch.max(1);
    let opts = ConnectOptions { chaos: None, read_timeout_ms: cfg.retry.deadline_ms };
    let mut client = Client::connect_with(endpoint, &opts)?;
    for (id, spec) in &part {
        pace_open(tickets, cfg.open_rate, start);
        client.open(*id, spec.rank, &spec.config)?;
    }

    let mut cursors = vec![0usize; part.len()];
    let mut directive_counts = vec![0u64; part.len()];
    let mut journals: Vec<Vec<LaneDirective>> = vec![Vec::new(); part.len()];
    let mut latencies_ns = Vec::new();
    let mut outcomes = Vec::with_capacity(part.len());

    let mut active: Vec<usize> = (0..part.len().min(ACTIVE_WINDOW)).collect();
    let mut next_idle = active.len();
    while !active.is_empty() {
        let mut i = 0;
        while i < active.len() {
            let k = active[i];
            let (id, spec) = &part[k];
            let total = spec.events.len();
            if cursors[k] < total {
                let end = (cursors[k] + batch).min(total);
                let t0 = Instant::now();
                let (applied, fresh) = client.send_events(*id, &spec.events[cursors[k]..end])?;
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                directive_counts[k] += fresh.len() as u64;
                if cfg.check {
                    journals[k].extend(fresh);
                }
                cursors[k] = (applied as usize).min(total).max(end);
            }
            if cursors[k] >= total {
                let (tail, _total_directives, stats) =
                    client.close(*id, spec.final_compute_ns)?;
                directive_counts[k] += tail.len() as u64;
                let parity_ok = if cfg.check {
                    let mut journal = std::mem::take(&mut journals[k]);
                    journal.extend(tail);
                    spec.golden_directives.as_ref().map(|golden| {
                        let mut ok = &journal == golden;
                        if let Some(gs) = &spec.golden_stats {
                            ok &= gs == &stats;
                        }
                        ok
                    })
                } else {
                    None
                };
                outcomes.push(SessionOutcome {
                    session: *id,
                    rank: spec.rank,
                    events: cursors[k] as u64,
                    directives: directive_counts[k],
                    reconnects: 0,
                    gave_up: false,
                    parity_ok,
                });
                // Retire this window slot and pull the next idle
                // session in; `swap_remove` moved an unvisited entry
                // to `i`, so don't advance.
                active.swap_remove(i);
                if next_idle < part.len() {
                    active.push(next_idle);
                    next_idle += 1;
                }
            } else {
                i += 1;
            }
        }
    }
    Ok((outcomes, latencies_ns))
}

type SessionRun = (SessionOutcome, Vec<u64>);

/// The resilient per-session driver: a reconnect loop around
/// stream → (optional split exercise) → close, with a parity journal
/// that is rebuilt from the server's replayed history after every
/// restore.
fn drive_session(
    endpoint: &Endpoint,
    session: u32,
    spec: SessionSpec,
    cfg: &LoadConfig,
) -> Result<SessionRun, ProtocolError> {
    let batch = cfg.batch.max(1);
    let total = spec.events.len();
    let split_at = cfg.split.map(|f| {
        let f = f.clamp(0.0, 1.0);
        ((total as f64 * f) as usize).min(total)
    });
    let mut rng =
        StdRng::seed_from_u64(cfg.retry.jitter_seed ^ ((session as u64) << 32) ^ 0xC8A5);
    let opts_for = |conn_seq: u64| ConnectOptions {
        chaos: cfg.chaos.as_ref().map(|c| {
            c.reseeded(
                c.seed
                    ^ ((session as u64) << 40)
                    ^ conn_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        }),
        read_timeout_ms: cfg.retry.deadline_ms,
    };

    let mut latencies_ns = Vec::with_capacity(total / batch + 2);
    // The parity journal: every directive the session has produced,
    // from event 0, in order.
    let mut journal: Vec<LaneDirective> = Vec::new();
    let mut next_event: usize = 0;
    let mut did_split = split_at.is_none();
    let mut conn_seq: u64 = 0;
    let mut reconnects: u64 = 0;
    let mut failures: u32 = 0;
    let mut gave_up = false;
    let mut client: Option<Client> = None;
    let mut closed: Option<(u64, RankStats)> = None;

    // One reconnect cycle per iteration; a healthy run finishes in one.
    'run: while closed.is_none() {
        // (Re-)establish a connection and a live server-side session.
        let mut c = match client.take() {
            Some(c) => c,
            None => {
                let attempt = (|| -> Result<Client, ProtocolError> {
                    let mut c = Client::connect_with(endpoint, &opts_for(conn_seq))?;
                    if conn_seq == 0 {
                        c.open(session, spec.rank, &spec.config)?;
                        journal.clear();
                        next_event = 0;
                    } else {
                        match c.restore_from_store(session) {
                            Ok((applied, history)) => {
                                journal = history;
                                next_event = (applied as usize).min(total);
                            }
                            Err(ProtocolError::Remote { code, .. })
                                if code == error_code::NO_SNAPSHOT =>
                            {
                                // No durable record server-side: replay
                                // the whole stream into a fresh session
                                // — the engine is deterministic, so the
                                // journal converges on the same
                                // directives.
                                c.open(session, spec.rank, &spec.config)?;
                                journal.clear();
                                next_event = 0;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(c)
                })();
                conn_seq += 1;
                match attempt {
                    Ok(c) => {
                        failures = 0;
                        c
                    }
                    Err(e) => {
                        if !reconnectable(&e) {
                            return Err(e);
                        }
                        failures += 1;
                        if failures >= cfg.retry.max_attempts.max(1) {
                            gave_up = true;
                            break 'run;
                        }
                        reconnects += 1;
                        std::thread::sleep(cfg.retry.backoff(failures, &mut rng));
                        continue;
                    }
                }
            }
        };

        // Stream toward the current target (the split point first, if
        // the split exercise is still pending, else the full stream),
        // then close. Any transport trouble falls back to the
        // reconnect path above.
        let target = if did_split { total } else { split_at.unwrap_or(total) };
        let step = (|| -> Result<Option<Vec<u8>>, ProtocolError> {
            while next_event < target {
                let end = (next_event + batch).min(target);
                let t0 = Instant::now();
                let (applied, fresh) =
                    c.send_events(session, &spec.events[next_event..end])?;
                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                journal.extend(fresh);
                next_event = (applied as usize).min(total).max(end);
            }
            if !did_split {
                // Snapshot for the split exercise; the caller drops the
                // connection and restores from these bytes.
                return Ok(Some(c.snapshot(session)?));
            }
            let (last, total_directives, stats) = c.close(session, spec.final_compute_ns)?;
            journal.extend(last);
            closed = Some((total_directives, stats));
            Ok(None)
        })();
        match step {
            Ok(None) => {
                client = Some(c); // done (or past the split) — keep it
            }
            Ok(Some(snap)) => {
                // The split exercise: drop the connection *without*
                // closing (a simulated crash), reconnect, restore from
                // the client-carried snapshot, finish the stream.
                did_split = true;
                c.abandon();
                let fresh = (|| -> Result<Client, ProtocolError> {
                    let mut fresh = Client::connect_with(endpoint, &opts_for(conn_seq))?;
                    let applied = fresh.restore(session, &snap)?;
                    next_event = (applied as usize).min(total);
                    Ok(fresh)
                })();
                conn_seq += 1;
                match fresh {
                    Ok(fresh) => {
                        failures = 0;
                        client = Some(fresh);
                    }
                    Err(e) => {
                        if !reconnectable(&e) {
                            return Err(e);
                        }
                        failures += 1;
                        if failures >= cfg.retry.max_attempts.max(1) {
                            gave_up = true;
                            break 'run;
                        }
                        reconnects += 1;
                        std::thread::sleep(cfg.retry.backoff(failures, &mut rng));
                        // `client` stays empty: the next iteration
                        // re-establishes via the store/fresh-open path.
                    }
                }
            }
            Err(e) => {
                if !reconnectable(&e) {
                    return Err(e);
                }
                c.abandon();
                failures += 1;
                if failures >= cfg.retry.max_attempts.max(1) {
                    gave_up = true;
                    break 'run;
                }
                reconnects += 1;
                std::thread::sleep(cfg.retry.backoff(failures, &mut rng));
            }
        }
    }

    let parity_ok = if gave_up {
        // An abandoned stream cannot match its golden annotation.
        if cfg.check { Some(false) } else { None }
    } else if cfg.check {
        let (_, stats) = closed.as_ref().expect("loop exits only once closed");
        match (&spec.golden_directives, &spec.golden_stats) {
            (Some(golden), golden_stats) => {
                let mut ok = &journal == golden;
                if let Some(gs) = golden_stats {
                    ok &= gs == stats;
                }
                Some(ok)
            }
            (None, _) => None,
        }
    } else {
        None
    };

    Ok((
        SessionOutcome {
            session,
            rank: spec.rank,
            events: next_event as u64,
            directives: journal.len() as u64,
            reconnects,
            gave_up,
            parity_ok,
        },
        latencies_ns,
    ))
}
