//! Protocol client and the multi-session load generator.
//!
//! [`Client`] is a blocking, single-threaded protocol speaker: one
//! request, then read until the matching response (tolerating
//! unsolicited periodic [`ServerFrame::Stats`] in between).
//!
//! [`run_load`] drives many sessions concurrently — one connection and
//! one thread per session, like a real PMPI shim fleet — measuring
//! aggregate throughput and per-batch directive latency, optionally
//! exercising the snapshot/restore reconnect path and checking
//! end-to-end parity against offline golden annotations.

use crate::protocol::{
    decode_server, read_frame, write_frame, ClientFrame, ProtocolError, ServerFrame, WireEvent,
};
use crate::server::{Endpoint, Stream};
use ibp_core::{LaneDirective, PowerConfig, RankStats};
use serde::Serialize;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

/// A blocking protocol client over one connection.
pub struct Client {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
}

impl Client {
    /// Connect and perform the handshake.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ProtocolError> {
        let stream = endpoint.connect()?;
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::with_capacity(64 * 1024, stream),
        };
        crate::protocol::write_hello(&mut client.writer)?;
        crate::protocol::read_hello(&mut client.reader)?;
        Ok(client)
    }

    fn send(&mut self, frame: &ClientFrame) -> Result<(), ProtocolError> {
        write_frame(&mut self.writer, &frame.encode())
    }

    /// Read the next server frame (any kind).
    pub fn recv(&mut self) -> Result<ServerFrame, ProtocolError> {
        match read_frame(&mut self.reader)? {
            Some(payload) => decode_server(&payload),
            None => Err(ProtocolError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Read frames until `want` accepts one; unsolicited `Stats` frames
    /// are skipped, `Error` frames become [`ProtocolError::Remote`].
    fn expect<T>(
        &mut self,
        what: &str,
        mut want: impl FnMut(ServerFrame) -> Option<T>,
    ) -> Result<T, ProtocolError> {
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { .. } => continue,
                other => match want(other) {
                    Some(v) => return Ok(v),
                    None => {
                        return Err(ProtocolError::Unexpected(format!(
                            "waiting for {what}"
                        )))
                    }
                },
            }
        }
    }

    /// Open a fresh session; waits for the acknowledgement.
    pub fn open(
        &mut self,
        session: u32,
        rank: u32,
        config: &PowerConfig,
    ) -> Result<(), ProtocolError> {
        self.send(&ClientFrame::Open {
            session,
            rank,
            config: Box::new(config.clone()),
        })?;
        self.expect("OpenAck", |f| match f {
            ServerFrame::OpenAck { .. } => Some(()),
            _ => None,
        })
    }

    /// Open a session from snapshot bytes; waits for the acknowledgement.
    pub fn restore(&mut self, session: u32, snapshot: &[u8]) -> Result<(), ProtocolError> {
        self.send(&ClientFrame::Restore { session, snapshot: snapshot.to_vec() })?;
        self.expect("OpenAck", |f| match f {
            ServerFrame::OpenAck { .. } => Some(()),
            _ => None,
        })
    }

    /// Stream one event batch; returns the server's total applied-event
    /// count and the directives the batch produced.
    pub fn send_events(
        &mut self,
        session: u32,
        events: &[WireEvent],
    ) -> Result<(u64, Vec<LaneDirective>), ProtocolError> {
        self.send(&ClientFrame::Events { session, events: events.to_vec() })?;
        self.expect("Directives", |f| match f {
            ServerFrame::Directives { events_applied, directives, .. } => {
                Some((events_applied, directives))
            }
            _ => None,
        })
    }

    /// Request an immediate statistics summary.
    pub fn flush_stats(&mut self, session: u32) -> Result<RankStats, ProtocolError> {
        self.send(&ClientFrame::Flush { session })?;
        // Flush answers with Stats, which `expect` normally skips —
        // match it directly here.
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { stats, .. } => return Ok(*stats),
                _ => continue,
            }
        }
    }

    /// Capture the session's learned state for a later [`Client::restore`].
    pub fn snapshot(&mut self, session: u32) -> Result<Vec<u8>, ProtocolError> {
        self.send(&ClientFrame::Snapshot { session })?;
        self.expect("SnapshotData", |f| match f {
            ServerFrame::SnapshotData { snapshot, .. } => Some(snapshot),
            _ => None,
        })
    }

    /// Finish the stream. Returns any directives issued by the final
    /// compute interval, the lifetime directive count, and final stats.
    pub fn close(
        &mut self,
        session: u32,
        final_compute_ns: u64,
    ) -> Result<(Vec<LaneDirective>, u64, RankStats), ProtocolError> {
        self.send(&ClientFrame::Close { session, final_compute_ns })?;
        let mut last = Vec::new();
        loop {
            match self.recv()? {
                ServerFrame::Error { code, message, .. } => {
                    return Err(ProtocolError::Remote { code, message })
                }
                ServerFrame::Stats { .. } => continue,
                ServerFrame::Directives { directives, .. } => last.extend(directives),
                ServerFrame::Closed { directives_total, stats, .. } => {
                    return Ok((last, directives_total, *stats))
                }
                other => {
                    return Err(ProtocolError::Unexpected(format!(
                        "waiting for Closed, got {other:?}"
                    )))
                }
            }
        }
    }
}

/// One session's worth of work for the load generator.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The simulated rank this session annotates.
    pub rank: u32,
    /// Runtime configuration for the session.
    pub config: PowerConfig,
    /// The full event stream (call id, gap ns), oldest first.
    pub events: Vec<WireEvent>,
    /// Trailing compute after the last call.
    pub final_compute_ns: u64,
    /// Expected directives from an offline `annotate_rank` run, for
    /// `--check` parity.
    pub golden_directives: Option<Vec<LaneDirective>>,
    /// Expected final stats from the offline run.
    pub golden_stats: Option<RankStats>,
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Events per `Events` frame.
    pub batch: usize,
    /// If set, snapshot at this fraction of the stream, drop the
    /// connection, reconnect, restore, and continue — exercising the
    /// reconnect path. Clamped to `(0, 1)`.
    pub split: Option<f64>,
    /// Verify streamed directives (and final stats) against the spec's
    /// golden annotation.
    pub check: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { batch: 64, split: None, check: false }
    }
}

/// Per-session result of a load run.
#[derive(Debug, Clone, Serialize)]
pub struct SessionOutcome {
    /// Session id (index into the spec list).
    pub session: u32,
    /// The rank the session drove.
    pub rank: u32,
    /// Events streamed.
    pub events: u64,
    /// Directives received.
    pub directives: u64,
    /// Parity verdict (`None` when no golden annotation was supplied or
    /// checking was off).
    pub parity_ok: Option<bool>,
}

/// Aggregate result of a load run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Concurrent sessions driven.
    pub sessions: usize,
    /// Events streamed across all sessions.
    pub events_total: u64,
    /// Directives received across all sessions.
    pub directives_total: u64,
    /// `Events` frames sent.
    pub batches: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed_s: f64,
    /// Aggregate throughput.
    pub events_per_sec: f64,
    /// Median send→directives latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile send→directives latency, microseconds.
    pub latency_p99_us: f64,
    /// Worst send→directives latency, microseconds.
    pub latency_max_us: f64,
    /// Whether parity checking ran.
    pub parity_checked: bool,
    /// All checked sessions matched their golden annotations.
    pub parity_ok: bool,
    /// Per-session outcomes, in session order.
    pub per_session: Vec<SessionOutcome>,
}

/// Drive every spec as its own connection+thread against `endpoint`.
///
/// Returns after all sessions close; any session error fails the run.
pub fn run_load(
    endpoint: &Endpoint,
    specs: Vec<SessionSpec>,
    cfg: &LoadConfig,
) -> Result<LoadReport, ProtocolError> {
    let sessions = specs.len();
    let start = Instant::now();
    let handles: Vec<_> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let endpoint = endpoint.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || drive_session(&endpoint, i as u32, spec, &cfg))
        })
        .collect();

    let mut outcomes = Vec::with_capacity(sessions);
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok((outcome, lats))) => {
                outcomes.push(outcome);
                latencies_ns.extend(lats);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(ProtocolError::Unexpected("session thread panicked".into()))
                })
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    outcomes.sort_by_key(|o| o.session);
    latencies_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * q).round() as usize;
        latencies_ns[idx] as f64 / 1_000.0
    };
    let events_total: u64 = outcomes.iter().map(|o| o.events).sum();
    let directives_total: u64 = outcomes.iter().map(|o| o.directives).sum();
    let parity_checked = cfg.check;
    let parity_ok = !parity_checked || outcomes.iter().all(|o| o.parity_ok != Some(false));
    Ok(LoadReport {
        sessions,
        events_total,
        directives_total,
        batches: latencies_ns.len() as u64,
        elapsed_s,
        events_per_sec: if elapsed_s > 0.0 { events_total as f64 / elapsed_s } else { 0.0 },
        latency_p50_us: pct(0.50),
        latency_p99_us: pct(0.99),
        latency_max_us: pct(1.0),
        parity_checked,
        parity_ok,
        per_session: outcomes,
    })
}

type SessionRun = (SessionOutcome, Vec<u64>);

fn drive_session(
    endpoint: &Endpoint,
    session: u32,
    spec: SessionSpec,
    cfg: &LoadConfig,
) -> Result<SessionRun, ProtocolError> {
    let batch = cfg.batch.max(1);
    let split_at = cfg.split.map(|f| {
        let f = f.clamp(0.0, 1.0);
        ((spec.events.len() as f64 * f) as usize).min(spec.events.len())
    });

    let mut latencies_ns = Vec::with_capacity(spec.events.len() / batch + 2);
    let mut streamed: Vec<LaneDirective> = Vec::new();
    let mut client = Client::connect(endpoint)?;
    client.open(session, spec.rank, &spec.config)?;

    let stream_range = |client: &mut Client,
                            events: &[WireEvent],
                            lats: &mut Vec<u64>,
                            streamed: &mut Vec<LaneDirective>|
     -> Result<(), ProtocolError> {
        for chunk in events.chunks(batch) {
            let t0 = Instant::now();
            let (_, fresh) = client.send_events(session, chunk)?;
            lats.push(t0.elapsed().as_nanos() as u64);
            streamed.extend(fresh);
        }
        Ok(())
    };

    let tail = match split_at {
        Some(at) => {
            stream_range(&mut client, &spec.events[..at], &mut latencies_ns, &mut streamed)?;
            let snapshot = client.snapshot(session)?;
            drop(client); // simulate a lost connection (no Close frame)
            client = Client::connect(endpoint)?;
            client.restore(session, &snapshot)?;
            &spec.events[at..]
        }
        None => &spec.events[..],
    };
    stream_range(&mut client, tail, &mut latencies_ns, &mut streamed)?;

    let (last, _, stats) = client.close(session, spec.final_compute_ns)?;
    streamed.extend(last);

    let parity_ok = if cfg.check {
        match (&spec.golden_directives, &spec.golden_stats) {
            (Some(golden), golden_stats) => {
                let mut ok = &streamed == golden;
                if let Some(gs) = golden_stats {
                    ok &= gs == &stats;
                }
                Some(ok)
            }
            (None, _) => None,
        }
    } else {
        None
    };

    Ok((
        SessionOutcome {
            session,
            rank: spec.rank,
            events: spec.events.len() as u64,
            directives: streamed.len() as u64,
            parity_ok,
        },
        latencies_ns,
    ))
}
