//! The length-prefixed binary frame protocol spoken between the load
//! generator (or any PMPI shim) and the `ibp-serve` server.
//!
//! ## Wire format
//!
//! A connection opens with a versioned handshake: each side sends the
//! 4-byte magic `IBPS` followed by its protocol version (`u16` LE); the
//! server answers only after validating the client's header, and a
//! major-version mismatch aborts the connection.
//!
//! After the handshake the stream is a sequence of frames (protocol
//! v2 added the payload checksum):
//!
//! ```text
//! +-------------+-------------+---------+--------------+----------------+
//! | len: u32 LE | crc: u32 LE | kind:u8 | session: u32 | body (len-5 B) |
//! +-------------+-------------+---------+--------------+----------------+
//! ```
//!
//! `len` counts the payload (kind + session + body) and is capped at
//! [`MAX_FRAME_LEN`]; `crc` is the IEEE CRC-32 of the payload bytes.
//! Multi-byte integers are little-endian throughout. Event batches —
//! the hot path — are fixed-width binary records; configs, statistics
//! and snapshots (cold path, schema-rich) travel as JSON bytes inside
//! their binary frames.
//!
//! The checksum exists for *fail-stop* behaviour, not security: a
//! corrupted event gap would otherwise decode as a perfectly valid
//! frame and silently poison the session's learned state. With the CRC
//! the connection fails loudly ([`ProtocolError::ChecksumMismatch`]),
//! the peer drops it, and the resilient client reconnects and restores
//! from a known-good snapshot instead.
//!
//! Decoding is *total*: any byte sequence either parses or returns a
//! [`ProtocolError`] — never a panic (fuzz-tested in
//! `tests/protocol_fuzz.rs`).

use crate::metrics::ObsReport;
use ibp_core::{LaneDirective, PowerConfig, RankStats, SleepKind};
use ibp_simcore::SimDuration;
use std::io::{Read, Write};

/// Protocol version carried in the handshake. v2 added the per-frame
/// payload CRC and the resume position in `OpenAck`; v1 peers are
/// rejected at the handshake, never mid-stream.
pub const PROTOCOL_VERSION: u16 = 2;

/// The 4-byte connection magic.
pub const MAGIC: [u8; 4] = *b"IBPS";

/// Upper bound on one frame's payload (kind + session + body).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Fixed-width size of one encoded event record (`call: u16`,
/// `gap_ns: u64`).
pub const EVENT_WIRE_BYTES: usize = 10;

/// Sentinel session id carried by [`ServerFrame::Error`] frames that
/// concern the connection itself (undecodable frame, bad length prefix)
/// rather than any open session — session 0 is a legitimate
/// client-choosable id, so it cannot double as "no session". `Open` and
/// `Restore` frames claiming this id are rejected as malformed.
pub const CONNECTION_SESSION: u32 = u32::MAX;

/// Error codes carried by [`ServerFrame::Error`].
pub mod error_code {
    /// The frame referenced a session id that is not open.
    pub const UNKNOWN_SESSION: u16 = 1;
    /// An `Open`/`Restore` reused an already-open session id.
    pub const DUPLICATE_SESSION: u16 = 2;
    /// A `Restore` payload failed snapshot validation.
    pub const BAD_SNAPSHOT: u16 = 3;
    /// The frame body could not be decoded.
    pub const MALFORMED: u16 = 4;
    /// Any other server-side failure.
    pub const INTERNAL: u16 = 5;
    /// A response (e.g. a snapshot) outgrew [`super::MAX_FRAME_LEN`]
    /// and could not be sent.
    pub const FRAME_TOO_LARGE: u16 = 6;
    /// The connection's outbound queue overflowed and older responses
    /// were shed; the session stream is no longer gap-free and the
    /// client should reconnect and restore.
    pub const OVERLOAD: u16 = 7;
    /// A store-backed `Restore` (empty snapshot body) found no usable
    /// record for the session; the client should fall back to a fresh
    /// `Open` and replay from the start.
    pub const NO_SNAPSHOT: u16 = 8;
}

// ------------------------------------------------------------------ crc32

/// IEEE CRC-32 lookup table (polynomial 0xEDB88320), built at compile
/// time so the hot framing path is a pure table walk.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum carried in every v2 frame
/// header and in the snapshot store's on-disk records).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Everything that can go wrong speaking the protocol.
///
/// `#[non_exhaustive]`: downstream matches must keep a wildcard arm so
/// new variants (future frame kinds, richer decode errors) don't break
/// them.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer's handshake did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version the peer announced.
        peer: u16,
        /// Version this side speaks.
        ours: u16,
    },
    /// A frame announced a payload longer than [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced payload length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// A frame carried a kind byte this version does not know.
    UnknownKind(u8),
    /// A frame body failed to decode.
    Malformed {
        /// Kind byte of the offending frame.
        kind: u8,
        /// What went wrong.
        detail: String,
    },
    /// A frame referenced a session that is not open.
    UnknownSession(u32),
    /// An `Open`/`Restore` reused an already-open session id.
    DuplicateSession(u32),
    /// A snapshot payload failed validation on restore.
    BadSnapshot(String),
    /// The server reported an error for a session.
    Remote {
        /// One of the [`error_code`] constants.
        code: u16,
        /// Human-readable description from the server.
        message: String,
    },
    /// The peer sent a validly encoded frame where a different one was
    /// required (e.g. a client waiting for `Directives` got `Closed`).
    Unexpected(String),
    /// A frame's payload did not match its header CRC — the transport
    /// corrupted bytes in flight. The connection cannot be trusted past
    /// this point; drop it and reconnect.
    ChecksumMismatch {
        /// CRC announced in the frame header.
        announced: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The resilient client exhausted its reconnect budget.
    GaveUp {
        /// Connection attempts made before giving up.
        attempts: u32,
        /// The error that ended the final attempt.
        last: Box<ProtocolError>,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io error: {e}"),
            ProtocolError::BadMagic(m) => write!(f, "bad connection magic {m:02x?}"),
            ProtocolError::VersionMismatch { peer, ours } => {
                write!(f, "peer speaks protocol v{peer}, this side v{ours}")
            }
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtocolError::Malformed { kind, detail } => {
                write!(f, "malformed frame of kind {kind:#04x}: {detail}")
            }
            ProtocolError::UnknownSession(s) => write!(f, "session {s} is not open"),
            ProtocolError::DuplicateSession(s) => write!(f, "session {s} is already open"),
            ProtocolError::BadSnapshot(msg) => write!(f, "snapshot rejected: {msg}"),
            ProtocolError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ProtocolError::Unexpected(what) => write!(f, "unexpected frame: {what}"),
            ProtocolError::ChecksumMismatch { announced, computed } => write!(
                f,
                "frame checksum mismatch: header says {announced:#010x}, payload hashes to {computed:#010x}"
            ),
            ProtocolError::GaveUp { attempts, last } => {
                write!(f, "gave up after {attempts} connection attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::GaveUp { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// One intercepted MPI event on the wire: Paraver call id + idle gap
/// (nanoseconds) since the previous call on the rank.
pub type WireEvent = (u16, u64);

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Open a fresh session for one simulated rank.
    Open {
        /// Client-chosen session id, unique per connection.
        session: u32,
        /// The rank this session annotates.
        rank: u32,
        /// Runtime configuration (JSON on the wire).
        config: Box<PowerConfig>,
    },
    /// A batch of intercepted events, applied in order.
    Events {
        /// Target session.
        session: u32,
        /// The events, oldest first.
        events: Vec<WireEvent>,
    },
    /// Request an immediate [`ServerFrame::Stats`] for the session.
    Flush {
        /// Target session.
        session: u32,
    },
    /// Request a [`ServerFrame::SnapshotData`] with the session's full
    /// learned state.
    Snapshot {
        /// Target session.
        session: u32,
    },
    /// Open a session *from* a previously captured snapshot: the engine
    /// resumes prediction without re-learning.
    ///
    /// An **empty** snapshot body asks the server to rehydrate the
    /// session from its durable store (`ibpower serve --store`) by
    /// session id; the server answers `OpenAck` (with the resume
    /// position) followed by a `Directives` frame replaying the stored
    /// directive history, or an `Error` with
    /// [`error_code::NO_SNAPSHOT`] when no usable record exists.
    Restore {
        /// Client-chosen session id, unique per connection.
        session: u32,
        /// A [`ibp_core::RuntimeSnapshot`] in its JSON wire form, or
        /// empty to restore from the server's snapshot store.
        snapshot: Vec<u8>,
    },
    /// Finish the session's stream and retire it.
    Close {
        /// Target session.
        session: u32,
        /// Trailing compute time after the last call (nanoseconds).
        final_compute_ns: u64,
    },
    /// Live introspection request, answered inline by the connection
    /// reader with a [`ServerFrame::QueryReply`] — it never enters the
    /// session's work mailbox, so a mid-stream query cannot perturb the
    /// session FIFO or its output.
    ///
    /// Addressing [`CONNECTION_SESSION`] asks for the *fleet* view
    /// (every live session); any other id narrows the reply to that
    /// session's probe (empty if it is not live). Unlike `Open`/
    /// `Restore`, the reserved id is therefore legal here.
    Query {
        /// Session to probe, or [`CONNECTION_SESSION`] for all.
        session: u32,
    },
}

/// Frames the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// `Open`/`Restore` accepted.
    OpenAck {
        /// The session that is now open.
        session: u32,
        /// Events the session has already applied — 0 for a fresh
        /// `Open`, the resume position for a `Restore`. A reconnecting
        /// client continues streaming from this offset.
        events_applied: u64,
    },
    /// Response to one `Events` batch: every lane directive the batch
    /// produced (possibly none). Doubles as the batch acknowledgement.
    Directives {
        /// Source session.
        session: u32,
        /// Total events the session has applied so far.
        events_applied: u64,
        /// Newly issued directives, in event order.
        directives: Vec<LaneDirective>,
    },
    /// Periodic (or flush-requested) statistics summary.
    Stats {
        /// Source session.
        session: u32,
        /// Cumulative statistics (JSON on the wire).
        stats: Box<RankStats>,
    },
    /// The session's learned state, restorable via `Restore`.
    SnapshotData {
        /// Source session.
        session: u32,
        /// A [`ibp_core::RuntimeSnapshot`] in its JSON wire form.
        snapshot: Vec<u8>,
    },
    /// `Close` accepted; the session is retired.
    Closed {
        /// The retired session.
        session: u32,
        /// Directives issued over the session's lifetime.
        directives_total: u64,
        /// Final statistics (JSON on the wire).
        stats: Box<RankStats>,
    },
    /// Answer to a [`ClientFrame::Query`]: server-wide counters plus
    /// per-session live probes (JSON on the wire — introspection is
    /// cold path and schema-rich, like `Stats`).
    QueryReply {
        /// Echo of the query's session id ([`CONNECTION_SESSION`] for
        /// a fleet query).
        session: u32,
        /// The observability report.
        report: Box<ObsReport>,
    },
    /// A request for `session` failed; the session (if it existed) was
    /// dropped.
    Error {
        /// The offending session id, or [`CONNECTION_SESSION`] for
        /// errors that concern the connection rather than a session.
        session: u32,
        /// One of the [`error_code`] constants.
        code: u16,
        /// Human-readable description.
        message: String,
    },
}

const K_OPEN: u8 = 0x01;
const K_EVENTS: u8 = 0x02;
const K_FLUSH: u8 = 0x03;
const K_SNAPSHOT: u8 = 0x04;
const K_RESTORE: u8 = 0x05;
const K_CLOSE: u8 = 0x06;
const K_QUERY: u8 = 0x07;
const K_OPEN_ACK: u8 = 0x81;
const K_DIRECTIVES: u8 = 0x82;
const K_STATS: u8 = 0x83;
const K_SNAPSHOT_DATA: u8 = 0x84;
const K_CLOSED: u8 = 0x85;
const K_QUERY_REPLY: u8 = 0x86;
const K_ERROR: u8 = 0xEF;

// ---------------------------------------------------------------- encode

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn sleep_kind_byte(kind: SleepKind) -> u8 {
    match kind {
        SleepKind::Wrps => 0,
        SleepKind::Deep => 1,
        SleepKind::Rate => 2,
    }
}

fn sleep_kind_of(byte: u8) -> Option<SleepKind> {
    match byte {
        0 => Some(SleepKind::Wrps),
        1 => Some(SleepKind::Deep),
        2 => Some(SleepKind::Rate),
        _ => None,
    }
}

impl ClientFrame {
    /// Session id the frame addresses.
    #[must_use]
    pub fn session(&self) -> u32 {
        match *self {
            ClientFrame::Open { session, .. }
            | ClientFrame::Events { session, .. }
            | ClientFrame::Flush { session }
            | ClientFrame::Snapshot { session }
            | ClientFrame::Restore { session, .. }
            | ClientFrame::Close { session, .. }
            | ClientFrame::Query { session } => session,
        }
    }

    /// Encode to a frame payload (kind + session + body, no length
    /// prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            ClientFrame::Open { session, rank, config } => {
                out.push(K_OPEN);
                put_u32(&mut out, *session);
                put_u32(&mut out, *rank);
                out.extend_from_slice(
                    serde_json::to_string(config.as_ref())
                        .expect("config serializes")
                        .as_bytes(),
                );
            }
            ClientFrame::Events { session, events } => {
                out.reserve(9 + events.len() * EVENT_WIRE_BYTES);
                out.push(K_EVENTS);
                put_u32(&mut out, *session);
                put_u32(&mut out, events.len() as u32);
                for &(call, gap_ns) in events {
                    put_u16(&mut out, call);
                    put_u64(&mut out, gap_ns);
                }
            }
            ClientFrame::Flush { session } => {
                out.push(K_FLUSH);
                put_u32(&mut out, *session);
            }
            ClientFrame::Snapshot { session } => {
                out.push(K_SNAPSHOT);
                put_u32(&mut out, *session);
            }
            ClientFrame::Restore { session, snapshot } => {
                out.push(K_RESTORE);
                put_u32(&mut out, *session);
                out.extend_from_slice(snapshot);
            }
            ClientFrame::Close { session, final_compute_ns } => {
                out.push(K_CLOSE);
                put_u32(&mut out, *session);
                put_u64(&mut out, *final_compute_ns);
            }
            ClientFrame::Query { session } => {
                out.push(K_QUERY);
                put_u32(&mut out, *session);
            }
        }
        out
    }
}

impl ServerFrame {
    /// Session id the frame concerns.
    #[must_use]
    pub fn session(&self) -> u32 {
        match *self {
            ServerFrame::OpenAck { session, .. }
            | ServerFrame::Directives { session, .. }
            | ServerFrame::Stats { session, .. }
            | ServerFrame::SnapshotData { session, .. }
            | ServerFrame::Closed { session, .. }
            | ServerFrame::QueryReply { session, .. }
            | ServerFrame::Error { session, .. } => session,
        }
    }

    /// Encode to a frame payload (kind + session + body, no length
    /// prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            ServerFrame::OpenAck { session, events_applied } => {
                out.push(K_OPEN_ACK);
                put_u32(&mut out, *session);
                put_u64(&mut out, *events_applied);
            }
            ServerFrame::Directives { session, events_applied, directives } => {
                out.reserve(17 + directives.len() * 33);
                out.push(K_DIRECTIVES);
                put_u32(&mut out, *session);
                put_u64(&mut out, *events_applied);
                put_u32(&mut out, directives.len() as u32);
                for d in directives {
                    put_u64(&mut out, d.after_event as u64);
                    put_u64(&mut out, d.delay.as_ns());
                    put_u64(&mut out, d.timer.as_ns());
                    put_u64(&mut out, d.predicted_idle.as_ns());
                    out.push(sleep_kind_byte(d.kind));
                }
            }
            ServerFrame::Stats { session, stats } => {
                out.push(K_STATS);
                put_u32(&mut out, *session);
                out.extend_from_slice(
                    serde_json::to_string(stats.as_ref())
                        .expect("stats serialize")
                        .as_bytes(),
                );
            }
            ServerFrame::SnapshotData { session, snapshot } => {
                out.push(K_SNAPSHOT_DATA);
                put_u32(&mut out, *session);
                out.extend_from_slice(snapshot);
            }
            ServerFrame::Closed { session, directives_total, stats } => {
                out.push(K_CLOSED);
                put_u32(&mut out, *session);
                put_u64(&mut out, *directives_total);
                out.extend_from_slice(
                    serde_json::to_string(stats.as_ref())
                        .expect("stats serialize")
                        .as_bytes(),
                );
            }
            ServerFrame::QueryReply { session, report } => {
                out.push(K_QUERY_REPLY);
                put_u32(&mut out, *session);
                out.extend_from_slice(
                    serde_json::to_string(report.as_ref())
                        .expect("report serializes")
                        .as_bytes(),
                );
            }
            ServerFrame::Error { session, code, message } => {
                out.push(K_ERROR);
                put_u32(&mut out, *session);
                put_u16(&mut out, *code);
                out.extend_from_slice(message.as_bytes());
            }
        }
        out
    }
}

// ---------------------------------------------------------------- decode

/// Bounds-checked little-endian reader over a frame payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ProtocolError::Malformed {
                kind: self.kind,
                detail: format!(
                    "body truncated: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ),
            }),
        }
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed {
                kind: self.kind,
                detail: format!(
                    "{} trailing bytes after body",
                    self.buf.len() - self.pos
                ),
            })
        }
    }

    fn json<T: serde::Deserialize>(&mut self, what: &str) -> Result<T, ProtocolError> {
        let kind = self.kind;
        let bytes = self.rest();
        let text = std::str::from_utf8(bytes).map_err(|e| ProtocolError::Malformed {
            kind,
            detail: format!("{what} not utf-8: {e}"),
        })?;
        serde_json::from_str(text).map_err(|e| ProtocolError::Malformed {
            kind,
            detail: format!("{what} not valid JSON: {e}"),
        })
    }
}

fn reader(payload: &[u8]) -> Result<(Rd<'_>, u32), ProtocolError> {
    if payload.is_empty() {
        return Err(ProtocolError::Malformed {
            kind: 0,
            detail: "empty payload".into(),
        });
    }
    let mut rd = Rd { buf: payload, pos: 1, kind: payload[0] };
    let session = rd.u32().map_err(|_| ProtocolError::Malformed {
        kind: payload[0],
        detail: "payload too short for session id".into(),
    })?;
    Ok((rd, session))
}

/// Decode a client→server frame payload. Total: every input returns
/// `Ok` or a [`ProtocolError`], never panics.
pub fn decode_client(payload: &[u8]) -> Result<ClientFrame, ProtocolError> {
    let (mut rd, session) = reader(payload)?;
    if session == CONNECTION_SESSION && matches!(rd.kind, K_OPEN | K_RESTORE) {
        return Err(ProtocolError::Malformed {
            kind: rd.kind,
            detail: format!(
                "session id {CONNECTION_SESSION:#x} is reserved for connection-level errors"
            ),
        });
    }
    let frame = match rd.kind {
        K_OPEN => {
            let rank = rd.u32()?;
            let config: PowerConfig = rd.json("power config")?;
            validate_config(&config).map_err(|detail| ProtocolError::Malformed {
                kind: K_OPEN,
                detail,
            })?;
            ClientFrame::Open { session, rank, config: Box::new(config) }
        }
        K_EVENTS => {
            let count = rd.u32()? as usize;
            let body = rd.take(count.saturating_mul(EVENT_WIRE_BYTES))?;
            let events = body
                .chunks_exact(EVENT_WIRE_BYTES)
                .map(|c| {
                    (
                        u16::from_le_bytes(c[0..2].try_into().unwrap()),
                        u64::from_le_bytes(c[2..10].try_into().unwrap()),
                    )
                })
                .collect();
            ClientFrame::Events { session, events }
        }
        K_FLUSH => ClientFrame::Flush { session },
        K_SNAPSHOT => ClientFrame::Snapshot { session },
        K_RESTORE => {
            let snapshot = rd.rest().to_vec();
            ClientFrame::Restore { session, snapshot }
        }
        K_CLOSE => {
            let final_compute_ns = rd.u64()?;
            ClientFrame::Close { session, final_compute_ns }
        }
        K_QUERY => ClientFrame::Query { session },
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    rd.finish()?;
    Ok(frame)
}

/// Decode a server→client frame payload. Total, like [`decode_client`].
pub fn decode_server(payload: &[u8]) -> Result<ServerFrame, ProtocolError> {
    let (mut rd, session) = reader(payload)?;
    let frame = match rd.kind {
        K_OPEN_ACK => {
            // v1 peers sent no body; tolerate that as position 0 so a
            // decoder fed archived captures still works.
            let events_applied = if rd.buf.len() > rd.pos { rd.u64()? } else { 0 };
            ServerFrame::OpenAck { session, events_applied }
        }
        K_DIRECTIVES => {
            let events_applied = rd.u64()?;
            let count = rd.u32()? as usize;
            let body = rd.take(count.saturating_mul(33))?;
            let mut directives = Vec::with_capacity(count);
            for c in body.chunks_exact(33) {
                let after_event = u64::from_le_bytes(c[0..8].try_into().unwrap());
                let kind_byte = c[32];
                let kind = sleep_kind_of(kind_byte).ok_or(ProtocolError::Malformed {
                    kind: K_DIRECTIVES,
                    detail: format!("unknown sleep kind {kind_byte}"),
                })?;
                directives.push(LaneDirective {
                    after_event: after_event as usize,
                    delay: SimDuration::from_ns(u64::from_le_bytes(c[8..16].try_into().unwrap())),
                    timer: SimDuration::from_ns(u64::from_le_bytes(c[16..24].try_into().unwrap())),
                    predicted_idle: SimDuration::from_ns(
                        u64::from_le_bytes(c[24..32].try_into().unwrap()),
                    ),
                    kind,
                });
            }
            ServerFrame::Directives { session, events_applied, directives }
        }
        K_STATS => {
            let stats: RankStats = rd.json("rank stats")?;
            ServerFrame::Stats { session, stats: Box::new(stats) }
        }
        K_SNAPSHOT_DATA => {
            let snapshot = rd.rest().to_vec();
            ServerFrame::SnapshotData { session, snapshot }
        }
        K_CLOSED => {
            let directives_total = rd.u64()?;
            let stats: RankStats = rd.json("rank stats")?;
            ServerFrame::Closed { session, directives_total, stats: Box::new(stats) }
        }
        K_QUERY_REPLY => {
            let report: ObsReport = rd.json("observability report")?;
            ServerFrame::QueryReply { session, report: Box::new(report) }
        }
        K_ERROR => {
            let code = rd.u16()?;
            let message = String::from_utf8_lossy(rd.rest()).into_owned();
            ServerFrame::Error { session, code, message }
        }
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    rd.finish()?;
    Ok(frame)
}

/// Reject configs whose invariants [`PowerConfig::paper`] would assert
/// on — a hostile `Open` must not be able to panic the server. The same
/// checks run again in `RankRuntime::from_snapshot`, so a `Restore`
/// cannot smuggle in a config an `Open` would have rejected.
fn validate_config(cfg: &PowerConfig) -> Result<(), String> {
    cfg.validate()
}

// ---------------------------------------------------------------- framing

/// Bytes in the v2 frame header: length prefix + payload CRC.
pub const FRAME_HEADER_LEN: usize = 8;

/// Write one length-prefixed, CRC-tagged frame payload to `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtocolError> {
    let len = u32::try_from(payload.len()).map_err(|_| ProtocolError::FrameTooLarge {
        len: u32::MAX,
        max: MAX_FRAME_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len, max: MAX_FRAME_LEN });
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Validate a frame header (length prefix + CRC) and return the payload
/// size plus the CRC the payload must hash to.
pub fn read_frame_header(header: [u8; FRAME_HEADER_LEN]) -> Result<(usize, u32), ProtocolError> {
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge { len, max: MAX_FRAME_LEN });
    }
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
    Ok((len as usize, crc))
}

/// Check a received payload against the CRC announced in its header.
pub fn verify_frame_crc(announced: u32, payload: &[u8]) -> Result<(), ProtocolError> {
    let computed = crc32(payload);
    if computed == announced {
        Ok(())
    } else {
        Err(ProtocolError::ChecksumMismatch { announced, computed })
    }
}

/// Read one frame payload from `r`, verifying its CRC. Returns
/// `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match r.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < FRAME_HEADER_LEN {
                let n = r.read(&mut header[got..])?;
                if n == 0 {
                    return Err(ProtocolError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    )));
                }
                got += n;
            }
        }
        Err(e) => return Err(ProtocolError::Io(e)),
    }
    let (len, crc) = read_frame_header(header)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    verify_frame_crc(crc, &payload)?;
    Ok(Some(payload))
}

/// Send the handshake header (magic + version).
pub fn write_hello<W: Write>(w: &mut W) -> Result<(), ProtocolError> {
    w.write_all(&MAGIC)?;
    w.write_all(&PROTOCOL_VERSION.to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read and validate the peer's handshake header.
pub fn read_hello<R: Read>(r: &mut R) -> Result<(), ProtocolError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    let mut ver = [0u8; 2];
    r.read_exact(&mut ver)?;
    let peer = u16::from_le_bytes(ver);
    if peer != PROTOCOL_VERSION {
        return Err(ProtocolError::VersionMismatch { peer, ours: PROTOCOL_VERSION });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(f: ClientFrame) {
        let payload = f.encode();
        let back = decode_client(&payload).expect("decode");
        assert_eq!(back, f);
    }

    fn roundtrip_server(f: ServerFrame) {
        let payload = f.encode();
        let back = decode_server(&payload).expect("decode");
        assert_eq!(back, f);
    }

    #[test]
    fn client_frames_roundtrip() {
        roundtrip_client(ClientFrame::Open {
            session: 7,
            rank: 3,
            config: Box::new(PowerConfig::default()),
        });
        roundtrip_client(ClientFrame::Events {
            session: 1,
            events: vec![(41, 0), (41, 2_000), (10, 300_000)],
        });
        roundtrip_client(ClientFrame::Events { session: 2, events: vec![] });
        roundtrip_client(ClientFrame::Flush { session: 9 });
        roundtrip_client(ClientFrame::Snapshot { session: 0 });
        roundtrip_client(ClientFrame::Restore {
            session: 4,
            snapshot: b"{\"version\":1}".to_vec(),
        });
        roundtrip_client(ClientFrame::Close { session: 5, final_compute_ns: 12345 });
        roundtrip_client(ClientFrame::Query { session: 6 });
    }

    #[test]
    fn fleet_query_may_use_the_reserved_session_id() {
        // Query is the one client frame for which CONNECTION_SESSION is
        // meaningful: it addresses the whole server, not a session.
        roundtrip_client(ClientFrame::Query { session: CONNECTION_SESSION });
    }

    #[test]
    fn query_reply_roundtrips() {
        roundtrip_server(ServerFrame::QueryReply {
            session: CONNECTION_SESSION,
            report: Box::new(crate::metrics::ObsReport::default()),
        });
        let mut report = crate::metrics::ObsReport::default();
        report.server.sessions_live = 3;
        report.server.workers = 2;
        report.sessions.push(crate::metrics::SessionProbe::busy(1, 0, 4));
        roundtrip_server(ServerFrame::QueryReply { session: 1, report: Box::new(report) });
    }

    #[test]
    fn truncated_query_reply_is_malformed_not_a_panic() {
        let full = ServerFrame::QueryReply {
            session: 2,
            report: Box::new(crate::metrics::ObsReport::default()),
        }
        .encode();
        // Anything shorter than kind+session is malformed; a truncated
        // JSON body must fail the decode, never panic.
        for cut in 0..full.len() {
            assert!(decode_server(&full[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn server_frames_roundtrip() {
        roundtrip_server(ServerFrame::OpenAck { session: 7, events_applied: 0 });
        roundtrip_server(ServerFrame::OpenAck { session: 3, events_applied: 12_345 });
        roundtrip_server(ServerFrame::Directives {
            session: 1,
            events_applied: 555,
            directives: vec![LaneDirective {
                after_event: 42,
                delay: SimDuration::ZERO,
                timer: SimDuration::from_us(250),
                predicted_idle: SimDuration::from_us(300),
                kind: SleepKind::Wrps,
            }],
        });
        roundtrip_server(ServerFrame::Directives {
            session: 1,
            events_applied: 0,
            directives: vec![],
        });
        roundtrip_server(ServerFrame::Stats {
            session: 3,
            stats: Box::new(RankStats::default()),
        });
        roundtrip_server(ServerFrame::SnapshotData {
            session: 2,
            snapshot: vec![1, 2, 3],
        });
        roundtrip_server(ServerFrame::Closed {
            session: 6,
            directives_total: 99,
            stats: Box::new(RankStats::default()),
        });
        roundtrip_server(ServerFrame::Error {
            session: 8,
            code: error_code::UNKNOWN_SESSION,
            message: "session 8 is not open".into(),
        });
    }

    #[test]
    fn deep_sleep_directive_roundtrips() {
        roundtrip_server(ServerFrame::Directives {
            session: 0,
            events_applied: 1,
            directives: vec![LaneDirective {
                after_event: 0,
                delay: SimDuration::from_us(1),
                timer: SimDuration::from_ms(8),
                predicted_idle: SimDuration::from_ms(10),
                kind: SleepKind::Deep,
            }],
        });
    }

    #[test]
    fn truncated_bodies_are_malformed_not_panics() {
        // A valid Events frame, cut short at every possible length.
        let full = ClientFrame::Events {
            session: 1,
            events: vec![(41, 100), (10, 200)],
        }
        .encode();
        for cut in 0..full.len() {
            let r = decode_client(&full[..cut]);
            assert!(r.is_err(), "cut at {cut} decoded");
        }
        // Events frame announcing more events than the body carries.
        let mut lying = ClientFrame::Events { session: 1, events: vec![(41, 1)] }.encode();
        lying[5..9].copy_from_slice(&100u32.to_le_bytes());
        assert!(decode_client(&lying).is_err());
    }

    #[test]
    fn unknown_kind_rejected() {
        let payload = [0x7Fu8, 0, 0, 0, 0];
        assert!(matches!(
            decode_client(&payload),
            Err(ProtocolError::UnknownKind(0x7F))
        ));
        assert!(matches!(
            decode_server(&payload),
            Err(ProtocolError::UnknownKind(0x7F))
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = ClientFrame::Flush { session: 1 }.encode();
        payload.push(0);
        assert!(decode_client(&payload).is_err());
    }

    #[test]
    fn hostile_open_config_rejected() {
        // displacement >= 1 would trip an assert in the runtime; the
        // decoder must reject it instead.
        let cfg = PowerConfig { displacement: 1.5, ..PowerConfig::default() };
        let json = serde_json::to_string(&cfg).unwrap();
        let mut payload = vec![K_OPEN];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(json.as_bytes());
        assert!(matches!(
            decode_client(&payload),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn reserved_session_id_rejected_on_open_and_restore() {
        // u32::MAX marks connection-level Error frames, so no session
        // may claim it — otherwise a client could mistake a connection
        // error for one of its own sessions.
        let open = ClientFrame::Open {
            session: CONNECTION_SESSION,
            rank: 0,
            config: Box::new(PowerConfig::default()),
        };
        assert!(matches!(
            decode_client(&open.encode()),
            Err(ProtocolError::Malformed { .. })
        ));
        let restore = ClientFrame::Restore {
            session: CONNECTION_SESSION,
            snapshot: b"{}".to_vec(),
        };
        assert!(matches!(
            decode_client(&restore.encode()),
            Err(ProtocolError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_nan_config_rejected() {
        // JSON cannot carry NaN, so exercise the validator directly.
        let cfg = PowerConfig {
            resilience: ibp_core::ResilienceConfig {
                guard_step: f64::NAN,
                ..ibp_core::ResilienceConfig::standard()
            },
            ..PowerConfig::default()
        };
        assert!(validate_config(&cfg).is_err());
    }

    #[test]
    fn framing_roundtrips_over_a_buffer() {
        let mut buf = Vec::new();
        let p1 = ClientFrame::Flush { session: 1 }.encode();
        let p2 = ClientFrame::Close { session: 2, final_compute_ns: 7 }.encode();
        write_frame(&mut buf, &p1).unwrap();
        write_frame(&mut buf, &p2).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), p1);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), p2);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // crc field
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn corrupted_payload_fails_the_crc() {
        let mut buf = Vec::new();
        let payload = ClientFrame::Events {
            session: 1,
            events: vec![(41, 100), (10, 200)],
        }
        .encode();
        write_frame(&mut buf, &payload).unwrap();
        // Flip one bit in every payload byte position in turn: the CRC
        // must catch each one (a plain length prefix would not).
        for i in FRAME_HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            let mut r = &bad[..];
            assert!(
                matches!(read_frame(&mut r), Err(ProtocolError::ChecksumMismatch { .. })),
                "corruption at byte {i} slipped past the crc"
            );
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn v1_openack_without_body_decodes_as_position_zero() {
        let mut payload = vec![0x81u8]; // K_OPEN_ACK
        payload.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            decode_server(&payload).unwrap(),
            ServerFrame::OpenAck { session: 9, events_applied: 0 }
        );
    }

    #[test]
    fn empty_restore_is_the_store_rehydration_sentinel() {
        let f = ClientFrame::Restore { session: 4, snapshot: vec![] };
        assert_eq!(decode_client(&f.encode()).unwrap(), f);
    }

    #[test]
    fn handshake_validates_magic_and_version() {
        let mut buf = Vec::new();
        write_hello(&mut buf).unwrap();
        assert_eq!(buf.len(), 6);
        let mut r = &buf[..];
        read_hello(&mut r).unwrap();

        let bad = b"HTTP/1";
        assert!(matches!(
            read_hello(&mut &bad[..]),
            Err(ProtocolError::BadMagic(_))
        ));

        let mut wrong_ver = Vec::new();
        wrong_ver.extend_from_slice(&MAGIC);
        wrong_ver.extend_from_slice(&999u16.to_le_bytes());
        assert!(matches!(
            read_hello(&mut &wrong_ver[..]),
            Err(ProtocolError::VersionMismatch { peer: 999, .. })
        ));
    }

    #[test]
    fn error_display_includes_context() {
        let e = ProtocolError::UnknownSession(12);
        assert!(e.to_string().contains("12"));
        let e = ProtocolError::FrameTooLarge { len: 999, max: 10 };
        assert!(e.to_string().contains("999"));
        let e = ProtocolError::Remote { code: 3, message: "bad".into() };
        assert!(e.to_string().contains("bad"));
    }
}
