//! Live observability: the metrics registry, the Prometheus text
//! exposition, and the typed introspection probes carried by the
//! `Query`/`QueryReply` frame family.
//!
//! Three consumers share one source of truth:
//!
//! * the server's hot path bumps [`MetricsRegistry`] counters and
//!   gauges — plain relaxed atomics, no locks and no allocation on the
//!   intercept path (asserted by the counting-allocator test in
//!   `tests/metrics_alloc.rs`);
//! * the `--metrics-addr` HTTP/1.0 listener ([`spawn_exporter`])
//!   renders the registry as Prometheus text exposition on every
//!   scrape — the exact byte format is a compatibility contract,
//!   golden-tested in the workspace integration suite;
//! * a [`crate::protocol::ClientFrame::Query`] frame returns the same
//!   counters as a typed [`ObsReport`] plus per-session engine state
//!   (power mode, lane width, pattern phase, misprediction windows),
//!   which `ibpower stat`/`ibpower top` render as an ibstat-style
//!   fleet table.
//!
//! ## Metric naming contract
//!
//! Every metric is prefixed `ibp_`; monotonic counters end in
//! `_total`; gauges carry no suffix. Names, HELP strings, and emission
//! order are pinned by the golden fixture `tests/golden/metrics.prom`
//! — changing any of them is a deliberate, reviewed act (regenerate
//! with `IBP_UPDATE_GOLDEN=1`).

use crate::server::{ServeSummary, SESSION_TABLE_SHARDS};
use ibp_core::SleepKind;
use ibp_network::{IbGeneration, LinkPower};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Lock-free counters and gauges for the serving stack.
///
/// Counters are monotonic over the server's lifetime; gauges track a
/// current occupancy and move both ways. Every update is a relaxed
/// atomic op — safe to call from the event hot path.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Sessions opened (fresh or restored) — counter.
    pub sessions_opened: AtomicU64,
    /// Sessions that finished with a `Close` frame — counter.
    pub sessions_closed: AtomicU64,
    /// Events applied across all sessions — counter.
    pub events_applied: AtomicU64,
    /// Lane directives streamed back — counter.
    pub directives_sent: AtomicU64,
    /// Protocol-level errors — counter.
    pub protocol_errors: AtomicU64,
    /// Responses shed from overloaded connection write queues — counter.
    pub responses_shed: AtomicU64,
    /// Worker panics caught and isolated — counter.
    pub worker_panics: AtomicU64,
    /// Worker threads respawned by the supervisor — counter.
    pub worker_respawns: AtomicU64,
    /// Session records persisted to the snapshot store — counter.
    pub snapshots_persisted: AtomicU64,
    /// Persist attempts that failed — counter.
    pub persist_failures: AtomicU64,
    /// Sessions rehydrated from the store (empty-body `Restore`, or
    /// transparently when work arrived for an evicted session) —
    /// counter.
    pub sessions_rehydrated: AtomicU64,
    /// Hot session engines evicted to the store by the LRU pager —
    /// counter.
    pub evictions: AtomicU64,
    /// `Query` frames answered — counter.
    pub queries_answered: AtomicU64,
    /// Prometheus scrapes served — counter.
    pub scrapes_served: AtomicU64,
    /// Live sessions tracked by the server registry — gauge.
    pub sessions_live: AtomicU64,
    /// Sessions waiting in the worker ready queue — gauge.
    pub ready_queue_depth: AtomicU64,
    /// Encoded response frames queued across all connection writers —
    /// gauge.
    pub writer_queue_depth: AtomicU64,
    /// Sessions whose engine is resident in memory — gauge.
    pub hot_sessions: AtomicU64,
    /// Sessions evicted to the snapshot store, rehydrated on touch —
    /// gauge.
    pub cold_sessions: AtomicU64,
    /// Hot sessions whose engine holds an armed sleep directive, per
    /// depth in [`SleepKind::ALL`] order — labeled gauge
    /// (`ibp_sessions_asleep{depth="wrps|rate|deep"}`). Evicted (cold)
    /// engines are not counted; their pending depth re-registers on
    /// rehydration.
    pub sessions_asleep: [AtomicU64; SleepKind::ALL.len()],
    /// Registry occupancy per session-table shard — labeled gauge
    /// (`ibp_session_shard_sessions{shard="N"}`).
    pub session_shards: [AtomicU64; SESSION_TABLE_SHARDS],
}

/// One metric's identity for the exposition: Prometheus type keyword,
/// name, and HELP text. The table below is the metrics contract.
struct MetricDesc {
    kind: &'static str,
    name: &'static str,
    help: &'static str,
}

const COUNTERS: [MetricDesc; 14] = [
    MetricDesc { kind: "counter", name: "ibp_sessions_opened_total", help: "Sessions opened (fresh or restored)." },
    MetricDesc { kind: "counter", name: "ibp_sessions_closed_total", help: "Sessions that finished with a Close frame." },
    MetricDesc { kind: "counter", name: "ibp_events_applied_total", help: "Intercepted MPI events applied across all sessions." },
    MetricDesc { kind: "counter", name: "ibp_directives_sent_total", help: "Lane power directives streamed back to clients." },
    MetricDesc { kind: "counter", name: "ibp_protocol_errors_total", help: "Protocol-level errors (malformed frames, unknown sessions, ...)." },
    MetricDesc { kind: "counter", name: "ibp_responses_shed_total", help: "Responses shed from overloaded connection write queues." },
    MetricDesc { kind: "counter", name: "ibp_worker_panics_total", help: "Worker panics caught and isolated to their session." },
    MetricDesc { kind: "counter", name: "ibp_worker_respawns_total", help: "Worker threads respawned by the supervisor." },
    MetricDesc { kind: "counter", name: "ibp_snapshots_persisted_total", help: "Session records persisted to the snapshot store." },
    MetricDesc { kind: "counter", name: "ibp_persist_failures_total", help: "Persist attempts that failed (disk errors)." },
    MetricDesc { kind: "counter", name: "ibp_sessions_rehydrated_total", help: "Sessions rehydrated from the store (empty-body Restore, or transparently on touch after eviction)." },
    MetricDesc { kind: "counter", name: "ibp_evictions_total", help: "Hot session engines evicted to the store by the LRU pager." },
    MetricDesc { kind: "counter", name: "ibp_queries_answered_total", help: "Query introspection frames answered." },
    MetricDesc { kind: "counter", name: "ibp_scrapes_served_total", help: "Prometheus scrapes served by the metrics endpoint." },
];

const GAUGES: [MetricDesc; 5] = [
    MetricDesc { kind: "gauge", name: "ibp_sessions_live", help: "Live sessions currently tracked by the server." },
    MetricDesc { kind: "gauge", name: "ibp_ready_queue_depth", help: "Sessions waiting in the worker ready queue." },
    MetricDesc { kind: "gauge", name: "ibp_writer_queue_depth", help: "Encoded response frames queued across all connection writers." },
    MetricDesc { kind: "gauge", name: "ibp_hot_sessions", help: "Sessions whose engine is resident in memory." },
    MetricDesc { kind: "gauge", name: "ibp_cold_sessions", help: "Sessions evicted to the snapshot store, rehydrated on touch." },
];

/// The per-depth sleep gauge, rendered with a `depth` label (one
/// sample per [`SleepKind`]).
const DEPTH_GAUGE: MetricDesc = MetricDesc {
    kind: "gauge",
    name: "ibp_sessions_asleep",
    help: "Hot sessions whose engine holds an armed sleep directive, by depth.",
};

/// The per-shard occupancy gauge, rendered with a `shard` label.
const SHARD_GAUGE: MetricDesc = MetricDesc {
    kind: "gauge",
    name: "ibp_session_shard_sessions",
    help: "Registry occupancy per session-table shard.",
};

impl MetricsRegistry {
    /// Snapshot the lifetime counters as a [`ServeSummary`] (the value
    /// [`crate::Server::run`] returns and `Query` reports server-wide).
    #[must_use]
    pub fn summary(&self) -> ServeSummary {
        ServeSummary {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            events_applied: self.events_applied.load(Ordering::Relaxed),
            directives_sent: self.directives_sent.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            responses_shed: self.responses_shed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            snapshots_persisted: self.snapshots_persisted.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            sessions_rehydrated: self.sessions_rehydrated.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Values of the counters in [`COUNTERS`] order.
    fn counter_values(&self) -> [u64; 14] {
        [
            self.sessions_opened.load(Ordering::Relaxed),
            self.sessions_closed.load(Ordering::Relaxed),
            self.events_applied.load(Ordering::Relaxed),
            self.directives_sent.load(Ordering::Relaxed),
            self.protocol_errors.load(Ordering::Relaxed),
            self.responses_shed.load(Ordering::Relaxed),
            self.worker_panics.load(Ordering::Relaxed),
            self.worker_respawns.load(Ordering::Relaxed),
            self.snapshots_persisted.load(Ordering::Relaxed),
            self.persist_failures.load(Ordering::Relaxed),
            self.sessions_rehydrated.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.queries_answered.load(Ordering::Relaxed),
            self.scrapes_served.load(Ordering::Relaxed),
        ]
    }

    /// Values of the gauges in [`GAUGES`] order.
    fn gauge_values(&self) -> [u64; 5] {
        [
            self.sessions_live.load(Ordering::Relaxed),
            self.ready_queue_depth.load(Ordering::Relaxed),
            self.writer_queue_depth.load(Ordering::Relaxed),
            self.hot_sessions.load(Ordering::Relaxed),
            self.cold_sessions.load(Ordering::Relaxed),
        ]
    }

    /// Move one session's armed-sleep depth between gauge buckets: its
    /// depth was `from` before an engine transition and is `to` after.
    /// `None` means no armed sleep (full power, or not resident).
    /// Relaxed atomics only — safe on the event hot path.
    pub fn sleep_depth_changed(&self, from: Option<SleepKind>, to: Option<SleepKind>) {
        if from == to {
            return;
        }
        if let Some(k) = from {
            self.sessions_asleep[k as usize].fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(k) = to {
            self.sessions_asleep[k as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render the registry as Prometheus text exposition (format
    /// version 0.0.4). The output — names, HELP strings, ordering,
    /// whitespace — is byte-pinned by the committed golden fixture.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        for (desc, value) in COUNTERS
            .iter()
            .zip(self.counter_values())
            .chain(GAUGES.iter().zip(self.gauge_values()))
        {
            let _ = writeln!(out, "# HELP {} {}", desc.name, desc.help);
            let _ = writeln!(out, "# TYPE {} {}", desc.name, desc.kind);
            let _ = writeln!(out, "{} {}", desc.name, value);
        }
        let _ = writeln!(out, "# HELP {} {}", DEPTH_GAUGE.name, DEPTH_GAUGE.help);
        let _ = writeln!(out, "# TYPE {} {}", DEPTH_GAUGE.name, DEPTH_GAUGE.kind);
        for (kind, occupancy) in SleepKind::ALL.iter().zip(self.sessions_asleep.iter()) {
            let _ = writeln!(
                out,
                "{}{{depth=\"{}\"}} {}",
                DEPTH_GAUGE.name,
                kind.label(),
                occupancy.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(out, "# HELP {} {}", SHARD_GAUGE.name, SHARD_GAUGE.help);
        let _ = writeln!(out, "# TYPE {} {}", SHARD_GAUGE.name, SHARD_GAUGE.kind);
        for (shard, occupancy) in self.session_shards.iter().enumerate() {
            let _ = writeln!(
                out,
                "{}{{shard=\"{}\"}} {}",
                SHARD_GAUGE.name,
                shard,
                occupancy.load(Ordering::Relaxed)
            );
        }
        out
    }
}

// -------------------------------------------------------------- probes

/// Live introspection record for one open session, sampled by a
/// `Query` frame without entering the session's mailbox (the FIFO of
/// pending work is never perturbed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionProbe {
    /// Session id.
    pub session: u32,
    /// The rank the session annotates.
    pub rank: u32,
    /// Whether the engine state could be sampled. `true` means a
    /// worker held the engine at probe time (or the session already
    /// retired) and every engine-derived field below is a default.
    pub busy: bool,
    /// Events the engine has applied.
    pub events_applied: u64,
    /// Directives streamed so far.
    pub directives_sent: u64,
    /// Whether power-mode control (prediction) is active.
    pub predicting: bool,
    /// Link power state implied by the engine's outstanding sleep
    /// directive.
    pub power_state: LinkPower,
    /// IB generation of the modelled link (`QDR`, `FDR`, ...). Older
    /// peers omit the field; it defaults to the paper's QDR hardware.
    /// A plain `Copy` enum, so probing stays allocation-free.
    #[serde(default)]
    pub generation: IbGeneration,
    /// Depth of the engine's armed sleep directive, `None` at full
    /// power. Defaults to `None` when an older peer omits the field.
    #[serde(default)]
    pub sleep_depth: Option<SleepKind>,
    /// Active lanes at that state (4X / 1X / 0).
    pub lane_width: u8,
    /// Pattern phase while predicting: slot being matched.
    pub pattern_slot: Option<u32>,
    /// Pattern phase: calls already matched within the slot.
    pub pattern_progress: Option<u32>,
    /// Pattern length in slots.
    pub pattern_slots: Option<u32>,
    /// The PPA's prediction horizon: mean idle predicted for the
    /// upcoming slot, nanoseconds.
    pub predicted_idle_ns: Option<u64>,
    /// Programmed HCA wake-up timer of the armed sleep, nanoseconds.
    pub sleep_timer_ns: Option<u64>,
    /// Lifetime pattern mispredictions.
    pub pattern_mispredictions: u64,
    /// Lifetime timing mispredictions (late wake-ups).
    pub timing_mispredictions: u64,
    /// Pattern mispredictions currently inside the resilience storm
    /// window.
    pub recent_pattern_window: u32,
    /// Timing mispredictions currently inside the resilience storm
    /// window.
    pub recent_timing_window: u32,
    /// Calls left in the current prediction hold-off.
    pub holdoff_remaining: u32,
    /// Resilience guard band (extra sleep displacement).
    pub guard_band: f64,
    /// Misprediction storms declared so far.
    pub storms: u64,
    /// Work items queued in the session's mailbox.
    pub mailbox_depth: u32,
}

impl SessionProbe {
    /// The probe for a session whose engine could not be sampled
    /// (checked out by a worker, or already retired).
    #[must_use]
    pub fn busy(session: u32, rank: u32, mailbox_depth: u32) -> SessionProbe {
        SessionProbe {
            session,
            rank,
            busy: true,
            events_applied: 0,
            directives_sent: 0,
            predicting: false,
            power_state: LinkPower::Full,
            generation: IbGeneration::default(),
            sleep_depth: None,
            lane_width: LinkPower::Full.lane_width(),
            pattern_slot: None,
            pattern_progress: None,
            pattern_slots: None,
            predicted_idle_ns: None,
            sleep_timer_ns: None,
            pattern_mispredictions: 0,
            timing_mispredictions: 0,
            recent_pattern_window: 0,
            recent_timing_window: 0,
            holdoff_remaining: 0,
            guard_band: 0.0,
            storms: 0,
            mailbox_depth,
        }
    }
}

/// Snapshot-store stats surfaced server-wide.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreProbe {
    /// Sessions indexed by the store.
    pub sessions: u32,
    /// Of those, records marked closed.
    pub closed: u32,
    /// Of those, records whose directive history reaches event 0.
    pub complete_histories: u32,
}

/// Server-wide introspection record.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerProbe {
    /// Lifetime counters (same values [`crate::Server::run`] returns).
    pub summary: ServeSummary,
    /// Live sessions tracked by the registry.
    pub sessions_live: u32,
    /// Configured worker threads.
    pub workers: u32,
    /// Configured per-session mailbox capacity.
    pub queue_depth_limit: u32,
    /// Sessions waiting in the worker ready queue right now.
    pub ready_queue_depth: u32,
    /// Encoded response frames queued across all connection writers.
    pub writer_queue_depth: u32,
    /// Sessions whose engine is resident in memory right now.
    pub hot_sessions: u32,
    /// Sessions evicted to the snapshot store, rehydrated on touch.
    pub cold_sessions: u32,
    /// The LRU pager's hot-set cap, when session paging is enabled.
    pub max_hot_sessions: Option<u32>,
    /// Snapshot-store stats, when a store is attached.
    pub store: Option<StoreProbe>,
    /// Transport fault-injection intensity, when the server wraps
    /// accepted connections in the chaos harness (tests/soaks only).
    pub chaos_intensity: Option<f64>,
}

/// The payload of a [`crate::protocol::ServerFrame::QueryReply`]:
/// server-wide state plus a probe per live session (all sessions for a
/// fleet query addressed to `CONNECTION_SESSION`, or just the one the
/// query named — empty if it is not live).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Server-wide state.
    pub server: ServerProbe,
    /// Per-session probes, ordered by session id.
    pub sessions: Vec<SessionProbe>,
}

// ------------------------------------------------------------ exporter

/// How long one scrape connection may dawdle before being dropped.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on one scrape request's header bytes.
const SCRAPE_REQUEST_CAP: usize = 8 * 1024;

/// Serve the registry as Prometheus text exposition over a plaintext
/// HTTP/1.0 listener on `addr` (e.g. `127.0.0.1:9464`; port 0 picks a
/// free port — the bound address is returned). Every request path gets
/// the same exposition; the thread exits when `stop` is raised.
pub fn spawn_exporter(
    addr: &str,
    metrics: Arc<MetricsRegistry>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => serve_scrape(stream, &metrics),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    });
    Ok((bound, handle))
}

/// Answer one scrape: read the request head (discarded — every path
/// serves the exposition), write an HTTP/1.0 response, close.
fn serve_scrape(mut stream: std::net::TcpStream, metrics: &MetricsRegistry) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT));
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return, // peer hung up before finishing the request
            Ok(_) => {
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
                if head.len() >= SCRAPE_REQUEST_CAP {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    // Render first: a scrape reports the scrapes *before* it, so the
    // golden fixture and first-scrape output stay deterministic.
    let body = metrics.render_prometheus();
    metrics.scrapes_served.fetch_add(1, Ordering::Relaxed);
    let mut response = String::with_capacity(body.len() + 128);
    let _ = write!(
        response,
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    response.push_str(&body);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_lists_every_metric_exactly_once() {
        let m = MetricsRegistry::default();
        m.events_applied.store(42, Ordering::Relaxed);
        m.writer_queue_depth.store(7, Ordering::Relaxed);
        let text = m.render_prometheus();
        for desc in COUNTERS.iter().chain(GAUGES.iter()) {
            let value_lines: Vec<&str> = text
                .lines()
                .filter(|l| {
                    l.split_whitespace().next() == Some(desc.name) && !l.starts_with('#')
                })
                .collect();
            assert_eq!(value_lines.len(), 1, "{} emitted once", desc.name);
        }
        assert!(text.contains("ibp_events_applied_total 42"));
        assert!(text.contains("ibp_writer_queue_depth 7"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn exposition_renders_one_sample_per_shard() {
        let m = MetricsRegistry::default();
        m.session_shards[3].store(11, Ordering::Relaxed);
        let text = m.render_prometheus();
        for shard in 0..SESSION_TABLE_SHARDS {
            let expected = if shard == 3 { 11 } else { 0 };
            let line = format!("ibp_session_shard_sessions{{shard=\"{shard}\"}} {expected}");
            assert!(text.contains(&line), "missing {line} in:\n{text}");
        }
        let help_lines =
            text.lines().filter(|l| l.starts_with("# HELP ibp_session_shard_sessions")).count();
        assert_eq!(help_lines, 1, "shard gauge HELP emitted once");
    }

    #[test]
    fn exposition_renders_one_sample_per_sleep_depth() {
        let m = MetricsRegistry::default();
        m.sleep_depth_changed(None, Some(SleepKind::Rate));
        m.sleep_depth_changed(None, Some(SleepKind::Rate));
        m.sleep_depth_changed(Some(SleepKind::Rate), Some(SleepKind::Deep));
        m.sleep_depth_changed(Some(SleepKind::Wrps), Some(SleepKind::Wrps)); // no-op
        let text = m.render_prometheus();
        assert!(text.contains("ibp_sessions_asleep{depth=\"wrps\"} 0"), "{text}");
        assert!(text.contains("ibp_sessions_asleep{depth=\"rate\"} 1"), "{text}");
        assert!(text.contains("ibp_sessions_asleep{depth=\"deep\"} 1"), "{text}");
        let help_lines =
            text.lines().filter(|l| l.starts_with("# HELP ibp_sessions_asleep")).count();
        assert_eq!(help_lines, 1, "depth gauge HELP emitted once");
    }

    #[test]
    fn counter_names_follow_the_contract() {
        for desc in &COUNTERS {
            assert!(desc.name.starts_with("ibp_"), "{}", desc.name);
            assert!(desc.name.ends_with("_total"), "{}", desc.name);
        }
        for desc in &GAUGES {
            assert!(desc.name.starts_with("ibp_"), "{}", desc.name);
            assert!(!desc.name.ends_with("_total"), "{}", desc.name);
        }
    }

    #[test]
    fn summary_matches_counter_stores() {
        let m = MetricsRegistry::default();
        m.sessions_opened.store(3, Ordering::Relaxed);
        m.responses_shed.store(9, Ordering::Relaxed);
        let s = m.summary();
        assert_eq!(s.sessions_opened, 3);
        assert_eq!(s.responses_shed, 9);
        assert_eq!(s.worker_panics, 0);
    }

    #[test]
    fn exporter_serves_a_well_formed_scrape() {
        let metrics = Arc::new(MetricsRegistry::default());
        metrics.events_applied.store(1234, Ordering::Relaxed);
        let stop = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            spawn_exporter("127.0.0.1:0", Arc::clone(&metrics), Arc::clone(&stop))
                .expect("bind exporter");
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
        assert!(response.contains("ibp_events_applied_total 1234"));
        assert_eq!(metrics.scrapes_served.load(Ordering::Relaxed), 1);
        // A second scrape sees the bumped scrape counter.
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.contains("ibp_scrapes_served_total 1"), "{response}");
        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn obs_report_roundtrips_through_json() {
        let report = ObsReport {
            server: ServerProbe {
                summary: ServeSummary { sessions_opened: 2, ..Default::default() },
                sessions_live: 2,
                workers: 4,
                queue_depth_limit: 64,
                ready_queue_depth: 1,
                writer_queue_depth: 3,
                hot_sessions: 2,
                cold_sessions: 1,
                max_hot_sessions: Some(2),
                store: Some(StoreProbe { sessions: 2, closed: 1, complete_histories: 2 }),
                chaos_intensity: Some(0.05),
            },
            sessions: vec![SessionProbe {
                session: 0,
                rank: 3,
                busy: false,
                events_applied: 900,
                directives_sent: 400,
                predicting: true,
                power_state: LinkPower::Low,
                generation: IbGeneration::Qdr,
                sleep_depth: Some(SleepKind::Wrps),
                lane_width: 1,
                pattern_slot: Some(2),
                pattern_progress: Some(1),
                pattern_slots: Some(4),
                predicted_idle_ns: Some(250_000),
                sleep_timer_ns: Some(200_000),
                pattern_mispredictions: 5,
                timing_mispredictions: 2,
                recent_pattern_window: 1,
                recent_timing_window: 0,
                holdoff_remaining: 0,
                guard_band: 0.01,
                storms: 0,
                mailbox_depth: 0,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn busy_probe_reads_as_full_power_defaults() {
        let p = SessionProbe::busy(7, 2, 5);
        assert!(p.busy);
        assert_eq!(p.power_state, LinkPower::Full);
        assert_eq!(p.lane_width, 4);
        assert_eq!(p.mailbox_depth, 5);
    }
}
