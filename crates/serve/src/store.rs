//! Durable snapshot store: crash-safe persistence of session state.
//!
//! `ibpower serve --store DIR` periodically persists every session's
//! [`RuntimeSnapshot`] (plus its full directive history) to this store.
//! After a crash — `kill -9`, panic, power loss — a restarted server
//! reopens the directory, recovers every readable record, and
//! reconnecting clients resume via an empty-body `Restore` without
//! re-learning their pattern dictionaries. This is also the cold tier
//! the planned 100k-session LRU eviction will spill onto.
//!
//! ## On-disk format
//!
//! One record file per session, `sess-<id>.snap`:
//!
//! ```text
//! +------+-------------+-------------+------------------------+
//! | IBPR | len: u32 LE | crc: u32 LE | record JSON (len bytes)|
//! +------+-------------+-------------+------------------------+
//! ```
//!
//! `crc` is the IEEE CRC-32 of the JSON payload (same function as the
//! wire protocol's frame checksum). The JSON is a [`StoreRecord`]: the
//! snapshot, the session's complete directive history, and resume
//! metadata. A `MANIFEST.json` alongside the records summarises the
//! store for humans and fast listing; it is advisory — recovery trusts
//! only the records themselves and rewrites the manifest to match.
//!
//! ## Crash safety
//!
//! Every write (record or manifest) goes to a temporary file in the
//! same directory, is fsynced, and is then atomically renamed over the
//! target; the directory is fsynced after the rename. A reader
//! therefore sees either the old record or the new one, never a torn
//! write. Recovery is corruption-tolerant by construction: a record
//! that fails any check (magic, length, CRC, JSON, version) is skipped
//! and reported in the [`RecoveryReport`], never panicked on —
//! property-tested against arbitrary truncation and bit flips in
//! `tests/store_corruption.rs`.

use crate::protocol::crc32;
use ibp_core::{LaneDirective, RuntimeSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic prefix of every record file.
pub const STORE_MAGIC: [u8; 4] = *b"IBPR";

/// Version stamp inside every [`StoreRecord`]. Bump on layout changes
/// so recovery can skip records from an incompatible build.
pub const RECORD_VERSION: u32 = 1;

/// Upper bound on one record's JSON payload — large enough for any
/// realistic snapshot + history, small enough that a corrupted length
/// field cannot provoke a giant allocation.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Manifest file name inside the store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

const RECORD_HEADER_LEN: usize = 12; // magic + len + crc

/// Persists between manifest rewrites. The manifest is advisory (open
/// rebuilds it from the records), so batching its rewrite is safe: a
/// crash at worst leaves it up to this many persists stale, which the
/// next open reports as `manifest_ok: false` and heals. At 100k
/// sessions a per-persist rewrite would serialise every eviction
/// behind an O(sessions) JSON dump + fsync.
const MANIFEST_BATCH: u64 = 64;

/// One persisted session: everything needed to resume its stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// Record layout version ([`RECORD_VERSION`]).
    pub record_version: u32,
    /// The session id this record belongs to. With `--store`, session
    /// ids are the durable identity — clients must keep them globally
    /// unique across connections (the load generator uses `0..N`).
    pub session: u32,
    /// The rank the session annotates.
    pub rank: u32,
    /// Events applied at the moment of the snapshot (the resume
    /// position handed back in `OpenAck`).
    pub events: u64,
    /// Whether the session has finished with a `Close`.
    pub closed: bool,
    /// Whether `directives` really is the session's *complete* history
    /// from event 0. False when the session was itself restored from a
    /// client-supplied snapshot (the pre-restore directives never
    /// passed through this server); such records cannot seed a
    /// store-restore and are answered with `NO_SNAPSHOT`.
    pub history_complete: bool,
    /// Every directive issued over the session's lifetime, in event
    /// order — replayed to a rehydrating client so its parity
    /// accounting can restart from the resume position.
    pub directives: Vec<LaneDirective>,
    /// The engine's full learned state.
    pub snapshot: RuntimeSnapshot,
}

/// In-memory index entry for one recovered or persisted session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreEntry {
    /// The rank the session annotates.
    pub rank: u32,
    /// Events applied at the last persist.
    pub events: u64,
    /// Whether the session closed cleanly.
    pub closed: bool,
    /// See [`StoreRecord::history_complete`].
    pub history_complete: bool,
}

/// What [`SnapshotStore::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sessions recovered from valid records.
    pub loaded: usize,
    /// Files that failed validation: `(file name, reason)`. These are
    /// left on disk untouched for post-mortems; a later persist of the
    /// same session overwrites them.
    pub skipped: Vec<(String, String)>,
    /// Whether the manifest parsed and agreed with the records. A false
    /// here is informational — the manifest is advisory and has been
    /// rewritten from the records either way.
    pub manifest_ok: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ManifestEntry {
    session: u32,
    rank: u32,
    events: u64,
    closed: bool,
    history_complete: bool,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    sessions: Vec<ManifestEntry>,
}

/// Distinguishes concurrent writers' temporary files (multiple worker
/// threads may persist different sessions at once).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of crash-safe session records. Cheap to share behind an
/// `Arc`; all methods take `&self`.
///
/// The index mutex serialises persists. The manifest rewrite is
/// batched — every [`MANIFEST_BATCH`] persists, on
/// [`SnapshotStore::flush_manifest`], and on drop — so steady-state
/// eviction traffic pays one record write per persist, not an
/// O(sessions) manifest dump too.
pub struct SnapshotStore {
    dir: PathBuf,
    index: Mutex<HashMap<u32, StoreEntry>>,
    /// Persists since the last manifest rewrite. Only mutated under
    /// the index lock; atomic so `flush_manifest` works on `&self`.
    dirty_persists: AtomicU64,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("dir", &self.dir)
            .field("sessions", &self.index.lock().map(|i| i.len()).unwrap_or(0))
            .finish()
    }
}

impl SnapshotStore {
    /// Open (creating if needed) the store at `dir`, recovering every
    /// valid record. Corrupt records are skipped and reported, never
    /// fatal; leftover temporary files from a crashed writer are
    /// removed.
    pub fn open(dir: &Path) -> io::Result<(SnapshotStore, RecoveryReport)> {
        fs::create_dir_all(dir)?;
        let mut report = RecoveryReport { manifest_ok: true, ..RecoveryReport::default() };
        let mut index = HashMap::new();

        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".tmp-") {
                // A writer died between create and rename; the target
                // file (if any) is still the previous consistent state.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let Some(session) = record_file_session(&name) else { continue };
            match read_record_file(&entry.path()) {
                Ok(record) if record.session != session => {
                    report.skipped.push((
                        name,
                        format!(
                            "file claims session {session} but record is for {}",
                            record.session
                        ),
                    ));
                }
                Ok(record) => {
                    index.insert(session, entry_of(&record));
                    report.loaded += 1;
                }
                Err(reason) => report.skipped.push((name, reason)),
            }
        }

        // The manifest is advisory: parse it for the report, then
        // rewrite it from the records (healing any corruption).
        match fs::read(dir.join(MANIFEST_NAME)) {
            Ok(bytes) => match std::str::from_utf8(&bytes)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str::<Manifest>(s).map_err(|e| e.to_string()))
            {
                Ok(m) => {
                    let agrees = m.sessions.len() == index.len()
                        && m.sessions.iter().all(|e| {
                            index.get(&e.session).is_some_and(|ix| {
                                ix.rank == e.rank
                                    && ix.events == e.events
                                    && ix.closed == e.closed
                                    && ix.history_complete == e.history_complete
                            })
                        });
                    report.manifest_ok = agrees;
                }
                Err(e) => {
                    report.manifest_ok = false;
                    report
                        .skipped
                        .push((MANIFEST_NAME.into(), format!("manifest unreadable: {e}")));
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                report.manifest_ok = index.is_empty();
            }
            Err(e) => return Err(e),
        }

        let store = SnapshotStore {
            dir: dir.to_path_buf(),
            index: Mutex::new(index),
            dirty_persists: AtomicU64::new(0),
        };
        store.write_manifest(&store.lock_index())?;
        Ok((store, report))
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of sessions currently indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_index().len()
    }

    /// Whether the store holds no sessions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metadata for one session, if stored.
    #[must_use]
    pub fn entry(&self, session: u32) -> Option<StoreEntry> {
        self.lock_index().get(&session).cloned()
    }

    /// All stored sessions, ascending by id.
    #[must_use]
    pub fn sessions(&self) -> Vec<(u32, StoreEntry)> {
        let mut v: Vec<_> = self
            .lock_index()
            .iter()
            .map(|(&s, e)| (s, e.clone()))
            .collect();
        v.sort_by_key(|&(s, _)| s);
        v
    }

    /// Atomically persist `record`, replacing any previous record for
    /// the session, and update the manifest.
    pub fn persist(&self, record: &StoreRecord) -> io::Result<()> {
        self.persist_impl(record, true)
    }

    /// [`persist`](Self::persist) minus the fsyncs — still written to a
    /// temp file and atomically renamed, so a *reader* never sees a
    /// half record, but the data may sit in the page cache when the
    /// call returns. The LRU pager uses this on the eviction hot path:
    /// an eviction persist that a crash swallows leaves the same
    /// recovery state as crashing just before the eviction (the CRC
    /// rejects any torn record on open), and paging throughput must
    /// not be bounded by the disk's sync latency. Close and drain
    /// persists keep the fully durable path.
    pub fn persist_fast(&self, record: &StoreRecord) -> io::Result<()> {
        self.persist_impl(record, false)
    }

    fn persist_impl(&self, record: &StoreRecord, sync: bool) -> io::Result<()> {
        let payload = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        if payload.len() > MAX_RECORD_LEN as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record of {} bytes exceeds the {MAX_RECORD_LEN}-byte cap", payload.len()),
            ));
        }
        let mut bytes = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        // Hold the index lock across the write so concurrent persists
        // of the same session cannot interleave their rename+manifest
        // steps.
        let mut index = self.lock_index();
        self.write_atomic_with(&record_file_name(record.session), &bytes, sync)?;
        index.insert(record.session, entry_of(record));
        if self.dirty_persists.fetch_add(1, Ordering::Relaxed) + 1 >= MANIFEST_BATCH {
            self.dirty_persists.store(0, Ordering::Relaxed);
            self.write_manifest(&index)?;
        }
        Ok(())
    }

    /// Rewrite the manifest now if any persists landed since the last
    /// rewrite. Called on server drain (and from `Drop`) so a clean
    /// shutdown always leaves the manifest in agreement with the
    /// records; a no-op when nothing is pending.
    pub fn flush_manifest(&self) -> io::Result<()> {
        let index = self.lock_index();
        if self.dirty_persists.swap(0, Ordering::Relaxed) == 0 {
            return Ok(());
        }
        self.write_manifest(&index)
    }

    /// Load and revalidate one session's record. `Ok(None)` when the
    /// session is not in the store; a record that fails validation on
    /// read (e.g. disk corruption after recovery) drops out of the
    /// index and also yields `Ok(None)` — callers treat both as "no
    /// usable snapshot".
    pub fn load(&self, session: u32) -> io::Result<Option<StoreRecord>> {
        if !self.lock_index().contains_key(&session) {
            return Ok(None);
        }
        match read_record_file(&self.dir.join(record_file_name(session))) {
            Ok(record) if record.session == session => Ok(Some(record)),
            Ok(_) | Err(_) => {
                self.lock_index().remove(&session);
                Ok(None)
            }
        }
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, HashMap<u32, StoreEntry>> {
        // A panic while holding the lock leaves the map itself intact
        // (all mutations are single insert/remove calls), so poisoning
        // carries no information here.
        self.index.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn write_manifest(&self, index: &HashMap<u32, StoreEntry>) -> io::Result<()> {
        let mut sessions: Vec<ManifestEntry> = index
            .iter()
            .map(|(&session, e)| ManifestEntry {
                session,
                rank: e.rank,
                events: e.events,
                closed: e.closed,
                history_complete: e.history_complete,
            })
            .collect();
        sessions.sort_by_key(|e| e.session);
        let manifest = Manifest { version: RECORD_VERSION, sessions };
        let bytes = serde_json::to_string(&manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .into_bytes();
        self.write_atomic(MANIFEST_NAME, &bytes)
    }

    /// tmp + fsync + rename + dir fsync: the target name only ever
    /// points at a complete, flushed file.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.write_atomic_with(name, bytes, true)
    }

    /// [`write_atomic`](Self::write_atomic) with the fsyncs made
    /// optional (`sync: false` is the pager's fast path — rename-atomic
    /// but page-cache-durable only).
    fn write_atomic_with(&self, name: &str, bytes: &[u8], sync: bool) -> io::Result<()> {
        let tmp = self.dir.join(format!(
            "{name}.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
        drop(f);
        match fs::rename(&tmp, self.dir.join(name)) {
            Ok(()) => {}
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        }
        // Persist the rename itself. Failure here is not fatal to
        // correctness (the data file is already durable; at worst the
        // directory entry reverts to the previous consistent record
        // after a crash), and some filesystems reject directory fsync.
        if sync {
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for SnapshotStore {
    fn drop(&mut self) {
        // Best-effort: the manifest is advisory, and open() heals a
        // stale one, so a failed flush here loses nothing.
        let _ = self.flush_manifest();
    }
}

fn entry_of(record: &StoreRecord) -> StoreEntry {
    StoreEntry {
        rank: record.rank,
        events: record.events,
        closed: record.closed,
        history_complete: record.history_complete,
    }
}

/// File name for a session's record.
#[must_use]
pub fn record_file_name(session: u32) -> String {
    format!("sess-{session}.snap")
}

fn record_file_session(name: &str) -> Option<u32> {
    name.strip_prefix("sess-")?.strip_suffix(".snap")?.parse().ok()
}

/// Read and fully validate one record file. Every failure is a
/// `String` reason — no panic for any byte content.
fn read_record_file(path: &Path) -> Result<StoreRecord, String> {
    let bytes = fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    if bytes.len() < RECORD_HEADER_LEN {
        return Err(format!("truncated header: {} bytes", bytes.len()));
    }
    if bytes[..4] != STORE_MAGIC {
        return Err(format!("bad magic {:02x?}", &bytes[..4]));
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if len > MAX_RECORD_LEN {
        return Err(format!("payload length {len} exceeds the {MAX_RECORD_LEN}-byte cap"));
    }
    let announced = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    let payload = &bytes[RECORD_HEADER_LEN..];
    if payload.len() != len as usize {
        return Err(format!(
            "payload length mismatch: header says {len}, file carries {}",
            payload.len()
        ));
    }
    let computed = crc32(payload);
    if computed != announced {
        return Err(format!(
            "crc mismatch: header says {announced:#010x}, payload hashes to {computed:#010x}"
        ));
    }
    let text =
        std::str::from_utf8(payload).map_err(|e| format!("record not valid UTF-8: {e}"))?;
    let record: StoreRecord =
        serde_json::from_str(text).map_err(|e| format!("record not valid JSON: {e}"))?;
    if record.record_version != RECORD_VERSION {
        return Err(format!(
            "record version {} incompatible with expected {RECORD_VERSION}",
            record.record_version
        ));
    }
    record
        .snapshot
        .validate_version()
        .map_err(|e| format!("embedded snapshot rejected: {e}"))?;
    if record.events != record.snapshot.event_idx as u64 {
        return Err(format!(
            "resume position {} disagrees with snapshot event index {}",
            record.events, record.snapshot.event_idx
        ));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::{PowerConfig, RankRuntime};
    use ibp_simcore::SimDuration;
    use ibp_trace::MpiCall;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ibp-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record(session: u32, events: usize) -> StoreRecord {
        let mut rt = RankRuntime::new(session, PowerConfig::default());
        for i in 0..events {
            let call = if i % 5 < 3 { MpiCall::Sendrecv } else { MpiCall::Allreduce };
            rt.intercept(call, SimDuration::from_us(if i % 5 == 0 { 300 } else { 2 }));
        }
        StoreRecord {
            record_version: RECORD_VERSION,
            session,
            rank: session,
            events: events as u64,
            closed: false,
            history_complete: true,
            directives: rt.directives().to_vec(),
            snapshot: rt.snapshot(),
        }
    }

    #[test]
    fn persist_load_roundtrip_and_recovery() {
        let dir = temp_dir("roundtrip");
        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.manifest_ok);

        let rec = sample_record(3, 120);
        store.persist(&rec).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load(3).unwrap().unwrap(), rec);
        assert!(store.load(4).unwrap().is_none());

        // Reopen: full recovery from disk.
        drop(store);
        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(report.skipped.is_empty());
        assert!(report.manifest_ok, "manifest should match the records");
        assert_eq!(store.load(3).unwrap().unwrap(), rec);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repersist_overwrites_and_updates_manifest() {
        let dir = temp_dir("overwrite");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, 40)).unwrap();
        let newer = sample_record(1, 80);
        store.persist(&newer).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.entry(1).unwrap().events, 80);

        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(store.load(1).unwrap().unwrap().events, 80);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_is_skipped_and_reported() {
        let dir = temp_dir("corrupt");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, 40)).unwrap();
        store.persist(&sample_record(2, 40)).unwrap();
        drop(store);

        // Flip a byte in the middle of session 1's payload.
        let path = dir.join(record_file_name(1));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();

        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, record_file_name(1));
        assert!(store.load(1).unwrap().is_none());
        assert!(store.load(2).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_manifest_is_healed() {
        let dir = temp_dir("manifest");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(7, 40)).unwrap();
        drop(store);
        fs::write(dir.join(MANIFEST_NAME), b"{definitely not json").unwrap();

        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert!(!report.manifest_ok);
        assert_eq!(report.loaded, 1);
        assert!(store.load(7).unwrap().is_some());

        // The reopen rewrote the manifest; a third open sees it clean.
        drop(store);
        let (_, report) = SnapshotStore::open(&dir).unwrap();
        assert!(report.manifest_ok);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rewrite_is_deferred_until_flush() {
        let dir = temp_dir("batch");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(5, 40)).unwrap();
        // Below the batch threshold: the on-disk manifest still shows
        // the empty store open() wrote.
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(dir.join(MANIFEST_NAME)).unwrap()).unwrap();
        assert!(manifest.sessions.is_empty(), "manifest rewrite must be deferred");

        store.flush_manifest().unwrap();
        let manifest: Manifest =
            serde_json::from_str(&fs::read_to_string(dir.join(MANIFEST_NAME)).unwrap()).unwrap();
        assert_eq!(manifest.sessions.len(), 1);
        assert_eq!(manifest.sessions[0].session, 5);

        // Dropping the store flushes too: a second persist then drop
        // leaves the manifest in agreement on reopen.
        store.persist(&sample_record(6, 24)).unwrap();
        drop(store);
        let (_, report) = SnapshotStore::open(&dir).unwrap();
        assert!(report.manifest_ok, "{report:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_files_are_cleaned() {
        let dir = temp_dir("tmp");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, 40)).unwrap();
        drop(store);
        let stray = dir.join("sess-1.snap.tmp-999-0");
        fs::write(&stray, b"half a record").unwrap();

        let (_, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(!stray.exists(), "crashed writer's tmp file must be removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_file_name_is_skipped() {
        let dir = temp_dir("mismatch");
        let (store, _) = SnapshotStore::open(&dir).unwrap();
        store.persist(&sample_record(1, 40)).unwrap();
        drop(store);
        // Copy session 1's record to a name claiming session 9.
        fs::copy(dir.join(record_file_name(1)), dir.join(record_file_name(9))).unwrap();

        let (store, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.skipped.len(), 1);
        assert!(store.entry(9).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
