//! `ibp-serve`: an online streaming prediction service.
//!
//! The paper's mechanism runs *inside* the MPI library — every rank's
//! PMPI shim feeds intercepted calls to a local predictor. This crate
//! provides the deployment shape one step removed: a long-running
//! service that accepts streams of intercept events over TCP or
//! Unix-domain sockets, demultiplexes them into per-session
//! [`ibp_core::RankRuntime`] engines (one session per simulated
//! rank/client), and streams back [`ibp_core::LaneDirective`] decisions
//! plus periodic [`ibp_core::RankStats`] summaries.
//!
//! Layout:
//! * [`protocol`] — the versioned length-prefixed frame format and its
//!   panic-free decoder;
//! * [`session`] — one engine instance with incremental apply and
//!   snapshot/restore;
//! * [`server`] — listener, per-connection readers, bounded worker
//!   pool, per-session mailboxes (backpressure);
//! * [`client`] — blocking protocol client plus the multi-session load
//!   generator with throughput/latency reporting and offline-parity
//!   checking.
//!
//! The server's streamed output is *byte-identical* to the offline
//! [`ibp_core::annotate_rank`] golden path for any batch size and any
//! snapshot/restore split point — verified by in-crate tests and the
//! workspace proptest suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{run_load, Client, LoadConfig, LoadReport, SessionOutcome, SessionSpec};
pub use protocol::{ClientFrame, ProtocolError, ServerFrame, WireEvent, PROTOCOL_VERSION};
pub use server::{Endpoint, ServeConfig, ServeSummary, Server, Stream};
pub use session::Session;
