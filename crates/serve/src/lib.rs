//! `ibp-serve`: an online streaming prediction service.
//!
//! The paper's mechanism runs *inside* the MPI library — every rank's
//! PMPI shim feeds intercepted calls to a local predictor. This crate
//! provides the deployment shape one step removed: a long-running
//! service that accepts streams of intercept events over TCP or
//! Unix-domain sockets, demultiplexes them into per-session
//! [`ibp_core::RankRuntime`] engines (one session per simulated
//! rank/client), and streams back [`ibp_core::LaneDirective`] decisions
//! plus periodic [`ibp_core::RankStats`] summaries.
//!
//! Layout:
//! * [`protocol`] — the versioned CRC-checked length-prefixed frame
//!   format and its panic-free decoder;
//! * [`session`] — one engine instance with incremental apply and
//!   snapshot/restore;
//! * [`server`] — the epoll reactor: a fixed pool of event-loop
//!   threads owning all connections nonblocking (frame reassembly,
//!   eventfd wakers, shutdown eventfd), a bounded worker pool with
//!   panic isolation, per-session mailboxes (backpressure), bounded
//!   outbound queues (overload shedding), sharded session tables, and
//!   LRU engine paging (`max_hot_sessions`) over the snapshot store;
//! * [`store`] — the durable snapshot store: crash-safe persistence of
//!   session state so a restarted server can rehydrate mid-stream
//!   sessions;
//! * [`chaos`] — a seeded fault-injecting stream wrapper (partial
//!   writes, stalls, resets, bit flips) for transport robustness
//!   testing;
//! * [`client`] — blocking protocol client with reconnect/retry and
//!   request deadlines, plus the multi-session load generator with
//!   throughput/latency reporting and offline-parity checking;
//! * [`metrics`] — the live observability layer: lock-free
//!   [`MetricsRegistry`] counters/gauges, Prometheus text exposition
//!   over a plaintext HTTP/1.0 `--metrics-addr` listener, and the
//!   typed [`ObsReport`] probes that answer `Query` frames (what
//!   `ibpower stat`/`top` render).
//!
//! The server's streamed output is *byte-identical* to the offline
//! [`ibp_core::annotate_rank`] golden path for any batch size, any
//! snapshot/restore split point, and any crash/reconnect schedule —
//! verified by in-crate tests, the workspace proptest suite, and the
//! chaos soak test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;
pub mod store;

pub use chaos::{ChaosConfig, ChaosCounters, ChaosStream};
pub use client::{run_load, Client, LoadConfig, LoadReport, RetryPolicy, SessionOutcome, SessionSpec};
pub use metrics::{
    spawn_exporter, MetricsRegistry, ObsReport, ServerProbe, SessionProbe, StoreProbe,
};
pub use protocol::{ClientFrame, ProtocolError, ServerFrame, WireEvent, PROTOCOL_VERSION};
pub use server::{Endpoint, ServeConfig, ServeSummary, Server, Stream};
pub use session::Session;
pub use store::{RecoveryReport, SnapshotStore, StoreRecord};
