//! Transport chaos harness: a seeded fault-injecting stream wrapper.
//!
//! Wraps a [`Stream`] and perturbs its I/O with the failure modes real
//! sockets exhibit — partial writes, short reads, stalls, connection
//! resets, and in-flight byte corruption — so the serving stack's
//! recovery paths (frame CRC, reconnect/restore, overload shedding)
//! can be exercised deterministically in tests and with
//! `ibpower load --chaos` against a live server.
//!
//! Faults are drawn from a seeded PRNG *per I/O call*: the same seed
//! and the same call sequence produce the same fault pattern. (Socket
//! reads may legitimately return different byte counts run to run, so
//! end-to-end tests assert invariants — zero panics, bounded retries,
//! offline parity — rather than exact fault counts.)
//!
//! The wrapper is always compiled rather than feature-gated: a cargo
//! feature would unify across the workspace and silently enable itself
//! everywhere `ibp-cli` is built. Instead it is *data*-gated — a
//! connection is only wrapped when a [`ChaosConfig`] is explicitly
//! supplied, and an unwrapped [`Stream`] pays nothing.
//!
//! Corruption injected here is what motivates the protocol's frame
//! CRC: a flipped bit inside an `Events` body would otherwise decode
//! as a perfectly valid batch with a wrong gap value and silently
//! break offline parity. With the CRC, every corruption becomes a
//! loud connection failure the client recovers from.

use crate::server::Stream;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault-injection knobs. All probabilities are per I/O call, in
/// `[0, 1]`.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// PRNG seed; same seed + same call sequence = same faults.
    pub seed: u64,
    /// Probability a write delivers only a prefix of the buffer
    /// (exercises `write_all` resumption; harmless on its own).
    pub partial_write: f64,
    /// Probability a read returns fewer bytes than available.
    pub short_read: f64,
    /// Probability an I/O call sleeps for [`ChaosConfig::stall_ms`]
    /// first (exercises timeouts and overload shedding).
    pub stall: f64,
    /// Probability the connection is reset: the call fails with
    /// `ConnectionReset`, the underlying socket is shut down, and every
    /// later call on either half fails too.
    pub reset: f64,
    /// Probability one bit of the transferred bytes is flipped
    /// (exercises the frame CRC's fail-stop path).
    pub corrupt: f64,
    /// Stall duration, milliseconds.
    pub stall_ms: u64,
}

impl ChaosConfig {
    /// A balanced mix scaled by one `intensity` knob in `[0, 1]` — the
    /// mapping behind `ibpower load --chaos F`.
    #[must_use]
    pub fn with_intensity(seed: u64, intensity: f64) -> ChaosConfig {
        let i = intensity.clamp(0.0, 1.0);
        ChaosConfig {
            seed,
            partial_write: 0.20 * i,
            short_read: 0.20 * i,
            stall: 0.10 * i,
            reset: 0.03 * i,
            corrupt: 0.04 * i,
            stall_ms: 5,
        }
    }

    /// Summed per-I/O-call fault probability — the scalar fault-
    /// injection readout `ibpower stat`/`top` surface per link when the
    /// server wraps connections in the chaos harness.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        self.partial_write + self.short_read + self.stall + self.reset + self.corrupt
    }

    /// Derive a config with a different seed (used to decorrelate
    /// per-connection fault streams from one base config).
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> ChaosConfig {
        ChaosConfig { seed, ..self.clone() }
    }

    /// Wrap `stream` in a fault-injecting [`ChaosStream`].
    #[must_use]
    pub fn wrap(&self, stream: Stream) -> Stream {
        Stream::Chaos(ChaosStream::new(stream, self.clone()))
    }
}

/// Cumulative injected-fault counters, shared by all clones of one
/// wrapped stream.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Writes truncated to a prefix.
    pub partial_writes: AtomicU64,
    /// Reads truncated below the available length.
    pub short_reads: AtomicU64,
    /// Calls delayed by a stall.
    pub stalls: AtomicU64,
    /// Connections reset.
    pub resets: AtomicU64,
    /// Bits flipped.
    pub corruptions: AtomicU64,
}

#[derive(Debug)]
struct ChaosState {
    cfg: ChaosConfig,
    rng: Mutex<StdRng>,
    counters: ChaosCounters,
    dead: AtomicBool,
}

/// A [`Stream`] with fault injection. Clones (read/write halves) share
/// one PRNG, one counter set, and one `dead` flag, so a reset on
/// either half kills both — like a real socket.
#[derive(Debug)]
pub struct ChaosStream {
    inner: Box<Stream>,
    state: Arc<ChaosState>,
}

/// Which faults apply to one I/O call.
struct Plan {
    stall: bool,
    reset: bool,
    truncate: bool,
    corrupt: bool,
}

impl ChaosStream {
    fn new(inner: Stream, cfg: ChaosConfig) -> ChaosStream {
        let rng = StdRng::seed_from_u64(cfg.seed);
        ChaosStream {
            inner: Box::new(inner),
            state: Arc::new(ChaosState {
                cfg,
                rng: Mutex::new(rng),
                counters: ChaosCounters::default(),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// Clone the handle (shares fault state with the original).
    pub fn try_clone(&self) -> io::Result<ChaosStream> {
        Ok(ChaosStream {
            inner: Box::new(self.inner.try_clone()?),
            state: Arc::clone(&self.state),
        })
    }

    /// The underlying transport (for timeouts and shutdown).
    #[must_use]
    pub fn get_ref(&self) -> &Stream {
        &self.inner
    }

    /// Injected-fault counters (shared across clones).
    #[must_use]
    pub fn counters(&self) -> &ChaosCounters {
        &self.state.counters
    }

    /// Decide this call's faults in one locked PRNG pass; `u64` draws
    /// keep the stream deterministic and platform-independent.
    fn plan(&self, p_truncate: f64) -> (Plan, u64) {
        let mut rng = self.state.rng.lock().unwrap_or_else(|e| e.into_inner());
        let mut hit = |p: f64| -> bool {
            p > 0.0 && ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
        };
        let cfg = &self.state.cfg;
        let plan = Plan {
            stall: hit(cfg.stall),
            reset: hit(cfg.reset),
            truncate: hit(p_truncate),
            corrupt: hit(cfg.corrupt),
        };
        let aux = rng.next_u64();
        (plan, aux)
    }

    fn pre_call(&self, plan: &Plan) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(reset_err());
        }
        if plan.stall {
            self.state.counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(self.state.cfg.stall_ms));
        }
        if plan.reset {
            self.state.counters.resets.fetch_add(1, Ordering::Relaxed);
            self.state.dead.store(true, Ordering::Relaxed);
            let _ = self.inner.shutdown();
            return Err(reset_err());
        }
        Ok(())
    }
}

fn reset_err() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection reset")
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let (plan, aux) = self.plan(self.state.cfg.short_read);
        self.pre_call(&plan)?;
        let cap = if plan.truncate && buf.len() > 1 {
            self.state.counters.short_reads.fetch_add(1, Ordering::Relaxed);
            1 + (aux as usize % (buf.len() - 1))
        } else {
            buf.len()
        };
        let n = self.inner.read(&mut buf[..cap])?;
        if plan.corrupt && n > 0 {
            self.state.counters.corruptions.fetch_add(1, Ordering::Relaxed);
            let bit = (aux >> 32) as usize % (n * 8);
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(n)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let (plan, aux) = self.plan(self.state.cfg.partial_write);
        self.pre_call(&plan)?;
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let len = if plan.truncate && buf.len() > 1 {
            self.state.counters.partial_writes.fetch_add(1, Ordering::Relaxed);
            1 + (aux as usize % (buf.len() - 1))
        } else {
            buf.len()
        };
        if plan.corrupt {
            self.state.counters.corruptions.fetch_add(1, Ordering::Relaxed);
            let mut copy = buf[..len].to_vec();
            let bit = (aux >> 32) as usize % (len * 8);
            copy[bit / 8] ^= 1 << (bit % 8);
            let n = self.inner.write(&copy)?;
            return Ok(n);
        }
        self.inner.write(&buf[..len])
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.dead.load(Ordering::Relaxed) {
            return Err(reset_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipe_pair() -> (Stream, Stream) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "ibp-chaos-test-{}-{:p}.sock",
            std::process::id(),
            &dir
        ));
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let a = std::os::unix::net::UnixStream::connect(&path).unwrap();
        let (b, _) = listener.accept().unwrap();
        let _ = std::fs::remove_file(&path);
        (Stream::Unix(a), Stream::Unix(b))
    }

    #[test]
    fn zero_probabilities_are_a_transparent_wrapper() {
        let (a, b) = pipe_pair();
        let mut tx = ChaosConfig::with_intensity(1, 0.0).wrap(a);
        let mut rx = b;
        tx.write_all(b"hello chaos").unwrap();
        tx.flush().unwrap();
        let mut got = [0u8; 11];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello chaos");
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let cfg = ChaosConfig::with_intensity(42, 0.8);
        let run = || -> Vec<bool> {
            let (a, _b) = pipe_pair();
            let mut s = cfg.wrap(a);
            (0..64)
                .map(|_| s.write(&[0u8; 32]).is_err())
                .collect()
        };
        assert_eq!(run(), run(), "fault pattern must be seed-deterministic");
    }

    #[test]
    fn reset_kills_both_halves_permanently() {
        let (a, _b) = pipe_pair();
        // reset with certainty on the first call
        let cfg = ChaosConfig {
            seed: 7,
            partial_write: 0.0,
            short_read: 0.0,
            stall: 0.0,
            reset: 1.0,
            corrupt: 0.0,
            stall_ms: 0,
        };
        let mut s = cfg.wrap(a);
        let mut clone = s.try_clone().unwrap();
        assert!(s.write(b"x").is_err());
        let mut buf = [0u8; 4];
        assert!(clone.read(&mut buf).is_err(), "clone must share the dead flag");
        if let Stream::Chaos(cs) = &s {
            assert_eq!(cs.counters().resets.load(Ordering::Relaxed), 1);
        } else {
            unreachable!("wrap returns a chaos stream");
        }
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (a, b) = pipe_pair();
        let cfg = ChaosConfig {
            seed: 9,
            partial_write: 0.0,
            short_read: 0.0,
            stall: 0.0,
            reset: 0.0,
            corrupt: 1.0,
            stall_ms: 0,
        };
        let mut tx = cfg.wrap(a);
        let mut rx = b;
        let sent = [0u8; 64];
        tx.write_all(&sent).unwrap();
        tx.flush().unwrap();
        let mut got = [0u8; 64];
        rx.read_exact(&mut got).unwrap();
        let flipped: u32 = sent
            .iter()
            .zip(got.iter())
            .map(|(s, g)| (s ^ g).count_ones())
            .sum();
        // write_all may split into several corrupted writes; each flips
        // exactly one bit.
        assert!(flipped >= 1, "at least one bit must have flipped");
    }
}
