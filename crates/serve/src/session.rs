//! One streaming prediction session: a [`RankRuntime`] fed incrementally
//! by event batches, with snapshot/restore for reconnecting clients.

use crate::metrics::SessionProbe;
use crate::protocol::{ProtocolError, WireEvent};
use crate::store::StoreRecord;
use ibp_core::{LaneDirective, PowerConfig, RankRuntime, RankStats, RuntimeSnapshot, SleepKind};
use ibp_network::{IbGeneration, LinkPower};
use ibp_simcore::SimDuration;
use ibp_trace::MpiCall;

/// A live prediction engine for one simulated rank.
///
/// Wraps [`RankRuntime`] with the bookkeeping the server needs: how many
/// directives have already been streamed out (so each batch response
/// carries only the *new* ones) and translation from wire events to the
/// typed intercept API. Unknown Paraver call ids degrade to `Send` —
/// the predictor keys on call identity, and an id outside the trace
/// vocabulary still forms stable grams, so a shim linked against a newer
/// MPI can stream without a protocol upgrade.
pub struct Session {
    /// The rank this session annotates (for labeling; the runtime also
    /// knows it).
    pub rank: u32,
    runtime: RankRuntime,
    directives_sent: usize,
    events_since_stats: u64,
    /// Directives issued before this runtime epoch (recovered from the
    /// snapshot store on a rehydrating restore); `history()` prepends
    /// them so a persisted record always carries the session's complete
    /// directive stream.
    prefix: Vec<LaneDirective>,
    prefix_complete: bool,
    events_since_persist: u64,
}

impl Session {
    /// Open a fresh session learning from scratch.
    #[must_use]
    pub fn open(rank: u32, cfg: PowerConfig) -> Self {
        Session {
            rank,
            runtime: RankRuntime::new(rank, cfg),
            directives_sent: 0,
            events_since_stats: 0,
            prefix: Vec::new(),
            prefix_complete: true,
            events_since_persist: 0,
        }
    }

    /// Open a session from a snapshot: the engine resumes prediction
    /// with all learned state intact and reports only directives issued
    /// after the restore point.
    pub fn restore(snapshot: &[u8]) -> Result<Self, ProtocolError> {
        let snap = RuntimeSnapshot::from_json_bytes(snapshot)
            .map_err(|e| ProtocolError::BadSnapshot(e.to_string()))?;
        let runtime = RankRuntime::from_snapshot(&snap)
            .map_err(|e| ProtocolError::BadSnapshot(e.to_string()))?;
        // A client-supplied mid-stream snapshot leaves this server
        // blind to the directives issued before it; records persisted
        // from such a session cannot seed a store rehydration.
        let prefix_complete = snap.event_idx == 0;
        Ok(Session {
            rank: snap.rank,
            runtime,
            directives_sent: 0,
            events_since_stats: 0,
            prefix: Vec::new(),
            prefix_complete,
            events_since_persist: 0,
        })
    }

    /// Rehydrate a session from a durable [`StoreRecord`]: the engine
    /// resumes at the record's event position and the record's
    /// directive history becomes the session's prefix.
    pub fn restore_from_record(record: &StoreRecord) -> Result<Self, ProtocolError> {
        let runtime = RankRuntime::from_snapshot(&record.snapshot)
            .map_err(|e| ProtocolError::BadSnapshot(e.to_string()))?;
        Ok(Session {
            rank: record.rank,
            runtime,
            directives_sent: 0,
            events_since_stats: 0,
            prefix: record.directives.clone(),
            prefix_complete: record.history_complete,
            events_since_persist: 0,
        })
    }

    /// Apply one batch of wire events through the allocation-free
    /// intercept hot path and return the directives it produced.
    pub fn apply(&mut self, events: &[WireEvent]) -> (u64, Vec<LaneDirective>) {
        self.runtime.reserve_events(events.len());
        for &(call_id, gap_ns) in events {
            let call = MpiCall::from_id(call_id).unwrap_or(MpiCall::Send);
            self.runtime.intercept(call, SimDuration::from_ns(gap_ns));
        }
        self.events_since_stats += events.len() as u64;
        self.events_since_persist += events.len() as u64;
        let fresh = self.runtime.directives()[self.directives_sent..].to_vec();
        self.directives_sent += fresh.len();
        (self.runtime.events_seen() as u64, fresh)
    }

    /// Cumulative statistics so far.
    #[must_use]
    pub fn stats(&self) -> RankStats {
        self.runtime.stats().clone()
    }

    /// Serialise the engine's full learned state (JSON wire form).
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.runtime.snapshot().to_json_bytes()
    }

    /// Total directives issued over the session's lifetime, including
    /// any issued before a snapshot/restore cycle on the *restored*
    /// runtime (the pre-restore count belongs to the previous session).
    #[must_use]
    pub fn directives_total(&self) -> u64 {
        self.directives_sent as u64
    }

    /// Events applied so far.
    #[must_use]
    pub fn events_applied(&self) -> u64 {
        self.runtime.events_seen() as u64
    }

    /// Events applied since the last periodic stats emission; the caller
    /// resets it when it emits.
    #[must_use]
    pub fn events_since_stats(&self) -> u64 {
        self.events_since_stats
    }

    /// Mark a periodic stats summary as emitted.
    pub fn mark_stats_emitted(&mut self) {
        self.events_since_stats = 0;
    }

    /// Events applied since the last durable persist; the caller resets
    /// it when it persists.
    #[must_use]
    pub fn events_since_persist(&self) -> u64 {
        self.events_since_persist
    }

    /// Mark a durable persist as done.
    pub fn mark_persisted(&mut self) {
        self.events_since_persist = 0;
    }

    /// The session's complete directive history — the rehydration
    /// prefix plus everything this runtime epoch issued. This is what a
    /// [`StoreRecord`] carries so a rehydrating client can rebuild its
    /// parity accounting from event 0.
    #[must_use]
    pub fn history(&self) -> Vec<LaneDirective> {
        let mut v = Vec::with_capacity(self.prefix.len() + self.runtime.directives().len());
        v.extend_from_slice(&self.prefix);
        v.extend_from_slice(self.runtime.directives());
        v
    }

    /// Whether [`Session::history`] really reaches back to event 0 (see
    /// [`StoreRecord::history_complete`]).
    #[must_use]
    pub fn history_complete(&self) -> bool {
        self.prefix_complete
    }

    /// The engine's full learned state in typed form (the store's
    /// record body; [`Session::snapshot_bytes`] is the wire form).
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        self.runtime.snapshot()
    }

    /// Depth of the engine's armed (pending) sleep directive, `None`
    /// when the link is at full power. The worker loop diffs this
    /// across `apply` to keep the per-depth fleet gauge current.
    #[must_use]
    pub fn pending_depth(&self) -> Option<SleepKind> {
        self.runtime.pending_sleep().map(|(k, _)| k)
    }

    /// Sample the engine's live state into a [`SessionProbe`] — the
    /// per-link row `ibpower stat`/`top` render. Read-only: probing
    /// never advances the engine or touches its learned state.
    #[must_use]
    pub fn probe(&self, session_id: u32, mailbox_depth: u32) -> SessionProbe {
        let stats = self.runtime.stats();
        let sleep_depth = self.pending_depth();
        let power_state = LinkPower::from_pending_sleep(sleep_depth);
        let phase = self.runtime.pattern_phase();
        let (recent_pattern, recent_timing) = self.runtime.resilience_windows();
        SessionProbe {
            session: session_id,
            rank: self.rank,
            busy: false,
            events_applied: self.runtime.events_seen() as u64,
            directives_sent: self.directives_sent as u64,
            predicting: self.runtime.predicting(),
            power_state,
            // The serve stack models the paper's link; derive its
            // generation from the full-width rate so a future
            // generation-parametric server reports the right name.
            generation: IbGeneration::from_rate_gbps(LinkPower::Full.speed_gbps()),
            sleep_depth,
            lane_width: power_state.lane_width(),
            pattern_slot: phase.map(|(slot, _, _)| slot as u32),
            pattern_progress: phase.map(|(_, progress, _)| progress as u32),
            pattern_slots: phase.map(|(_, _, slots)| slots as u32),
            predicted_idle_ns: self.runtime.predicted_horizon().map(|d| d.as_ns()),
            sleep_timer_ns: self.runtime.pending_sleep().map(|(_, t)| t.as_ns()),
            pattern_mispredictions: stats.pattern_mispredictions,
            timing_mispredictions: stats.timing_mispredictions,
            recent_pattern_window: recent_pattern as u32,
            recent_timing_window: recent_timing as u32,
            holdoff_remaining: self.runtime.holdoff_remaining(),
            guard_band: self.runtime.guard_band(),
            storms: stats.storms,
            mailbox_depth,
        }
    }

    /// Finish the stream (trailing compute time) and return the final
    /// accounting: any last directives, the lifetime total, and final
    /// stats.
    #[must_use]
    pub fn close(self, final_compute_ns: u64) -> (Vec<LaneDirective>, u64, RankStats) {
        let ann = self.runtime.finish(SimDuration::from_ns(final_compute_ns));
        let fresh = ann.directives[self.directives_sent..].to_vec();
        let total = self.directives_sent as u64 + fresh.len() as u64;
        (fresh, total, ann.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::annotate_rank;
    use ibp_workloads::{Alya, Workload};

    fn sample_stream() -> (Vec<WireEvent>, u64, ibp_trace::Trace) {
        let trace = Alya { iterations: 40, ..Default::default() }.generate(4, 1);
        let events: Vec<WireEvent> = trace.ranks[0]
            .call_stream()
            .map(|(call, gap)| (call.id(), gap.as_ns()))
            .collect();
        let final_compute = trace.ranks[0].final_compute.as_ns();
        (events, final_compute, trace)
    }

    #[test]
    fn streamed_batches_match_offline_annotation() {
        let (events, final_compute, trace) = sample_stream();
        let cfg = PowerConfig::default();
        let golden = annotate_rank(&trace.ranks[0], &cfg);

        let mut sess = Session::open(0, cfg);
        let mut streamed = Vec::new();
        for batch in events.chunks(7) {
            let (_, fresh) = sess.apply(batch);
            streamed.extend(fresh);
        }
        let (last, total, stats) = sess.close(final_compute);
        streamed.extend(last);

        assert_eq!(streamed, golden.directives);
        assert_eq!(total as usize, golden.directives.len());
        assert_eq!(stats, golden.stats);
    }

    #[test]
    fn snapshot_restore_mid_stream_is_transparent() {
        let (events, final_compute, trace) = sample_stream();
        let cfg = PowerConfig::default();
        let golden = annotate_rank(&trace.ranks[0], &cfg);

        let split = events.len() / 2;
        let mut first = Session::open(0, cfg);
        let mut streamed = Vec::new();
        streamed.extend(first.apply(&events[..split]).1);
        let snap = first.snapshot_bytes();
        drop(first); // connection lost

        let mut second = Session::restore(&snap).expect("restore");
        assert_eq!(second.rank, 0);
        streamed.extend(second.apply(&events[split..]).1);
        let (last, _, stats) = second.close(final_compute);
        streamed.extend(last);

        assert_eq!(streamed, golden.directives);
        assert_eq!(stats, golden.stats);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(matches!(
            Session::restore(b"definitely not a snapshot"),
            Err(ProtocolError::BadSnapshot(_))
        ));
    }

    #[test]
    fn probe_reports_live_engine_state() {
        let (events, _, _) = sample_stream();
        let mut sess = Session::open(0, PowerConfig::default());
        let probe = sess.probe(7, 0);
        assert_eq!(probe.session, 7);
        assert_eq!(probe.rank, 0);
        assert!(!probe.busy);
        assert_eq!(probe.events_applied, 0);
        assert!(!probe.predicting);
        assert_eq!(probe.power_state, ibp_network::LinkPower::Full);

        // A repetitive Alya stream must reach prediction at some point
        // mid-stream, making the pattern-phase readout live (the
        // stream may *end* back in learning after a phase change).
        let mut directives = 0u64;
        let mut saw_predicting = false;
        let mut saw_phase = false;
        for batch in events.chunks(64) {
            directives += sess.apply(batch).1.len() as u64;
            let mid = sess.probe(7, 0);
            saw_predicting |= mid.predicting;
            saw_phase |= mid.pattern_slots.is_some();
        }
        assert!(saw_predicting);
        assert!(saw_phase);
        let probe = sess.probe(7, 3);
        assert_eq!(probe.events_applied, events.len() as u64);
        assert_eq!(probe.directives_sent, directives);
        assert_eq!(probe.mailbox_depth, 3);
        assert_eq!(probe.lane_width, probe.power_state.lane_width());
        assert_eq!(probe.generation, IbGeneration::Qdr, "serve models the paper link");
        assert_eq!(
            probe.power_state,
            LinkPower::from_pending_sleep(probe.sleep_depth),
            "probe depth and power state describe the same armed sleep"
        );
        // Probing twice is idempotent: no engine state advances.
        assert_eq!(sess.probe(7, 3), probe);
    }

    #[test]
    fn unknown_call_ids_do_not_panic() {
        let mut sess = Session::open(0, PowerConfig::default());
        let (applied, _) = sess.apply(&[(u16::MAX, 100), (0, 5_000_000), (41, 0)]);
        assert_eq!(applied, 3);
        let (_, total, _) = sess.close(1_000);
        assert_eq!(total, 0);
    }
}
