//! Trace serialisation.
//!
//! Traces are interchanged as JSON (pretty for humans, compact for bulk).
//! JSON is not on any hot path — generators produce traces in memory and
//! the simulator consumes them in memory; files exist so that experiments
//! can be re-run on frozen inputs and so users can inspect what the
//! generators produce.

use crate::trace::Trace;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// The trace deserialised but fails [`Trace::validate`].
    Invalid(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Format(e) => write!(f, "trace format error: {e}"),
            TraceIoError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Format(e) => Some(e),
            TraceIoError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Format(e)
    }
}

/// Serialise a trace to compact JSON.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string(trace).expect("trace serialisation cannot fail")
}

/// Deserialise a trace from JSON and validate it.
pub fn from_json(json: &str) -> Result<Trace, TraceIoError> {
    let trace: Trace = serde_json::from_str(json)?;
    trace.validate().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

/// Write a trace to `path` as compact JSON.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, trace)?;
    w.flush()?;
    Ok(())
}

/// Read and validate a trace from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let file = File::open(path)?;
    let mut json = String::new();
    BufReader::new(file).read_to_string(&mut json)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MpiOp;
    use crate::trace::TraceBuilder;
    use ibp_simcore::SimDuration;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("roundtrip", 3);
        for it in 0..4 {
            for r in 0..3u32 {
                b.compute(r, SimDuration::from_us(100 + it * 3 + u64::from(r)));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: (r + 1) % 3,
                        send_bytes: 4096,
                        from: (r + 2) % 3,
                        recv_bytes: 4096,
                    },
                );
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        b.build()
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let t = sample();
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_roundtrip_is_identity() {
        let t = sample();
        let dir = std::env::temp_dir().join("ibp-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_invalid_trace() {
        // Hand-craft a structurally valid JSON with an out-of-range peer.
        let mut t = sample();
        if let MpiOp::Sendrecv { to, .. } = &mut t.ranks[0].events[0].op {
            *to = 99;
        }
        let json = serde_json::to_string(&t).unwrap();
        match from_json(&json) {
            Err(TraceIoError::Invalid(msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            from_json("{not json"),
            Err(TraceIoError::Format(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = from_json("{").unwrap_err();
        assert!(e.to_string().contains("format"));
    }
}
