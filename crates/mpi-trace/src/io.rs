//! Trace serialisation.
//!
//! Traces are interchanged as JSON (pretty for humans, compact for bulk).
//! JSON is not on any hot path — generators produce traces in memory and
//! the simulator consumes them in memory; files exist so that experiments
//! can be re-run on frozen inputs and so users can inspect what the
//! generators produce.

use crate::trace::Trace;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors arising from trace I/O.
///
/// `#[non_exhaustive]`: downstream matches must keep a wildcard arm so
/// new error variants don't break them.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// The input stops mid-document: every brace that opened never
    /// closed (a partial download or an interrupted `save`).
    Truncated {
        /// Total bytes read before the document ran out.
        bytes: usize,
    },
    /// The input holds no events to replay: a blank file, a trace with
    /// zero ranks, or ranks that never communicate or compute.
    Empty,
    /// The trace deserialised but fails [`Trace::validate`].
    Invalid(String),
}

/// Former name of [`TraceError`], kept for downstream code.
pub type TraceIoError = TraceError;

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Format(e) => write!(f, "trace format error: {e}"),
            TraceError::Truncated { bytes } => {
                write!(f, "trace truncated: document still open after {bytes} bytes")
            }
            TraceError::Empty => write!(f, "empty trace: no ranks or events to replay"),
            TraceError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Format(e) => Some(e),
            TraceError::Truncated { .. } | TraceError::Empty | TraceError::Invalid(_) => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Format(e)
    }
}

/// Does `json` stop mid-document? Scans brace/bracket depth outside of
/// string literals; a positive depth (or an unterminated string) at the
/// end means the document was cut short rather than malformed.
fn looks_truncated(json: &str) -> bool {
    let mut depth = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for b in json.bytes() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                _ => {}
            }
        }
    }
    in_str || depth > 0
}

/// Serialise a trace to compact JSON.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string(trace).expect("trace serialisation cannot fail")
}

/// Deserialise a trace from JSON and validate it.
pub fn from_json(json: &str) -> Result<Trace, TraceError> {
    if json.trim().is_empty() {
        return Err(TraceError::Empty);
    }
    let trace: Trace = match serde_json::from_str(json) {
        Ok(t) => t,
        Err(e) if looks_truncated(json) => {
            let _ = e;
            return Err(TraceError::Truncated { bytes: json.len() });
        }
        Err(e) => return Err(TraceError::Format(e)),
    };
    if trace.nprocs == 0 || trace.ranks.iter().all(|r| r.events.is_empty()) {
        return Err(TraceError::Empty);
    }
    trace.validate().map_err(TraceError::Invalid)?;
    Ok(trace)
}

/// Write a trace to `path` as compact JSON.
pub fn save(trace: &Trace, path: impl AsRef<Path>) -> Result<(), TraceError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, trace)?;
    w.flush()?;
    Ok(())
}

/// Read and validate a trace from `path`.
pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
    let file = File::open(path)?;
    let mut json = String::new();
    BufReader::new(file).read_to_string(&mut json)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MpiOp;
    use crate::trace::TraceBuilder;
    use ibp_simcore::SimDuration;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("roundtrip", 3);
        for it in 0..4 {
            for r in 0..3u32 {
                b.compute(r, SimDuration::from_us(100 + it * 3 + u64::from(r)));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: (r + 1) % 3,
                        send_bytes: 4096,
                        from: (r + 2) % 3,
                        recv_bytes: 4096,
                    },
                );
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        b.build()
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let t = sample();
        let back = from_json(&to_json(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn file_roundtrip_is_identity() {
        let t = sample();
        let dir = std::env::temp_dir().join("ibp-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_invalid_trace() {
        // Hand-craft a structurally valid JSON with an out-of-range peer.
        let mut t = sample();
        if let MpiOp::Sendrecv { to, .. } = &mut t.ranks[0].events[0].op {
            *to = 99;
        }
        let json = serde_json::to_string(&t).unwrap();
        match from_json(&json) {
            Err(TraceIoError::Invalid(msg)) => assert!(msg.contains("out of range")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(
            from_json("not json at all"),
            Err(TraceError::Format(_))
        ));
    }

    #[test]
    fn truncated_json_is_a_typed_error() {
        // Cut a valid document at 60% — braces stay open.
        let json = to_json(&sample());
        let cut = &json[..json.len() * 6 / 10];
        match from_json(cut) {
            Err(TraceError::Truncated { bytes }) => assert_eq!(bytes, cut.len()),
            other => panic!("expected Truncated, got {other:?}"),
        }
        // A lone opening brace is also truncation, not a format error.
        assert!(matches!(from_json("{"), Err(TraceError::Truncated { .. })));
    }

    #[test]
    fn empty_inputs_are_a_typed_error() {
        assert!(matches!(from_json(""), Err(TraceError::Empty)));
        assert!(matches!(from_json("  \n"), Err(TraceError::Empty)));
        // Structurally valid but eventless trace.
        let t = TraceBuilder::new("hollow", 2).build();
        assert!(matches!(
            from_json(&serde_json::to_string(&t).unwrap()),
            Err(TraceError::Empty)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = from_json("\"unterminated").unwrap_err();
        assert!(e.to_string().contains("truncated"));
        let e = from_json("[1, 2, oops]").unwrap_err();
        assert!(e.to_string().contains("format"));
    }
}
