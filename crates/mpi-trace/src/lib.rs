//! # ibp-trace — MPI traces and trace statistics
//!
//! The trace layer of the `ibpower` workspace (reproduction of Dickov et
//! al., ICPP 2014). It defines:
//!
//! * [`MpiCall`] / [`MpiOp`] — Paraver-style call ids and fully
//!   parameterised MPI operations (41 = `MPI_Sendrecv`,
//!   10 = `MPI_Allreduce`, matching the ids printed in the paper's Fig. 2);
//! * [`Trace`] / [`RankTrace`] / [`TraceBuilder`] — Dimemas-semantics
//!   traces: per rank, a sequence of *(compute burst, MPI op)* records;
//! * [`IdleDistribution`] — the idle-interval bucketing behind Table I;
//! * [`io`] — JSON (de)serialisation with validation;
//! * [`viz`] — Fig. 6-style ASCII timeline rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod combine;
pub mod event;
pub mod io;
pub mod paraver;
pub mod profile;
pub mod stats;
pub mod trace;
pub mod viz;

pub use combine::{can_combine, combine, JobPlacement};
pub use io::TraceError;
pub use event::{MpiCall, MpiOp, Rank, ReqId};
pub use profile::{ActivityProfile, CallProfile, CommMatrix};
pub use stats::{IdleBucket, IdleDistribution};
pub use trace::{nominal_call_times, RankTrace, Trace, TraceBuilder, TraceEvent};
