//! MPI call identifiers and operation payloads.
//!
//! The prediction algorithm in the paper operates on a stream of *MPI call
//! ids* — the integers shown in Fig. 2 ("41" = `MPI_Sendrecv`,
//! "10" = `MPI_Allreduce`). Those are Paraver's MPI event values, and we
//! keep the same numbering (anchored at the two ids the paper prints) so
//! our traces, logs and examples read like the paper's.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An MPI process rank.
pub type Rank = u32;

/// A non-blocking request handle, local to one rank's trace.
pub type ReqId = u32;

/// The MPI call type, with Paraver-style numeric ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum MpiCall {
    /// `MPI_Send` — blocking point-to-point send.
    Send = 1,
    /// `MPI_Recv` — blocking point-to-point receive.
    Recv = 2,
    /// `MPI_Isend` — non-blocking send.
    Isend = 3,
    /// `MPI_Irecv` — non-blocking receive.
    Irecv = 4,
    /// `MPI_Wait` — wait for one request.
    Wait = 5,
    /// `MPI_Waitall` — wait for a set of requests.
    Waitall = 6,
    /// `MPI_Bcast` — one-to-all broadcast.
    Bcast = 7,
    /// `MPI_Barrier` — full synchronisation.
    Barrier = 8,
    /// `MPI_Reduce` — all-to-one reduction.
    Reduce = 9,
    /// `MPI_Allreduce` — reduction + broadcast (Paraver id 10, as in Fig. 2).
    Allreduce = 10,
    /// `MPI_Alltoall` — personalised all-to-all exchange.
    Alltoall = 11,
    /// `MPI_Allgather` — gather + broadcast.
    Allgather = 12,
    /// `MPI_Gather` — all-to-one gather.
    Gather = 13,
    /// `MPI_Scatter` — one-to-all scatter.
    Scatter = 14,
    /// `MPI_Init` — runtime initialisation.
    Init = 31,
    /// `MPI_Finalize` — runtime teardown.
    Finalize = 32,
    /// `MPI_Sendrecv` — paired send+receive (Paraver id 41, as in Fig. 2).
    Sendrecv = 41,
}

impl MpiCall {
    /// The Paraver-style numeric id of this call (what the PPA hashes on).
    #[inline]
    pub fn id(self) -> u16 {
        self as u16
    }

    /// Every call type, in id order (drives exhaustive decode tables).
    pub const ALL: [MpiCall; 17] = [
        MpiCall::Send,
        MpiCall::Recv,
        MpiCall::Isend,
        MpiCall::Irecv,
        MpiCall::Wait,
        MpiCall::Waitall,
        MpiCall::Bcast,
        MpiCall::Barrier,
        MpiCall::Reduce,
        MpiCall::Allreduce,
        MpiCall::Alltoall,
        MpiCall::Allgather,
        MpiCall::Gather,
        MpiCall::Scatter,
        MpiCall::Init,
        MpiCall::Finalize,
        MpiCall::Sendrecv,
    ];

    /// Decode a Paraver-style numeric id back to the call type (inverse
    /// of [`MpiCall::id`]); `None` for ids no variant carries. This is
    /// what wire-protocol decoders use, so it must stay total.
    #[inline]
    pub fn from_id(id: u16) -> Option<MpiCall> {
        Some(match id {
            1 => MpiCall::Send,
            2 => MpiCall::Recv,
            3 => MpiCall::Isend,
            4 => MpiCall::Irecv,
            5 => MpiCall::Wait,
            6 => MpiCall::Waitall,
            7 => MpiCall::Bcast,
            8 => MpiCall::Barrier,
            9 => MpiCall::Reduce,
            10 => MpiCall::Allreduce,
            11 => MpiCall::Alltoall,
            12 => MpiCall::Allgather,
            13 => MpiCall::Gather,
            14 => MpiCall::Scatter,
            31 => MpiCall::Init,
            32 => MpiCall::Finalize,
            41 => MpiCall::Sendrecv,
            _ => return None,
        })
    }

    /// True for calls that move data or synchronise across the network
    /// (everything except `Init`/`Finalize`, which bracket the run).
    pub fn is_communication(self) -> bool {
        !matches!(self, MpiCall::Init | MpiCall::Finalize)
    }

    /// True for collective operations (involve every rank of the
    /// communicator).
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MpiCall::Bcast
                | MpiCall::Barrier
                | MpiCall::Reduce
                | MpiCall::Allreduce
                | MpiCall::Alltoall
                | MpiCall::Allgather
                | MpiCall::Gather
                | MpiCall::Scatter
        )
    }

    /// The canonical MPI function name.
    pub fn name(self) -> &'static str {
        match self {
            MpiCall::Send => "MPI_Send",
            MpiCall::Recv => "MPI_Recv",
            MpiCall::Isend => "MPI_Isend",
            MpiCall::Irecv => "MPI_Irecv",
            MpiCall::Wait => "MPI_Wait",
            MpiCall::Waitall => "MPI_Waitall",
            MpiCall::Bcast => "MPI_Bcast",
            MpiCall::Barrier => "MPI_Barrier",
            MpiCall::Reduce => "MPI_Reduce",
            MpiCall::Allreduce => "MPI_Allreduce",
            MpiCall::Alltoall => "MPI_Alltoall",
            MpiCall::Allgather => "MPI_Allgather",
            MpiCall::Gather => "MPI_Gather",
            MpiCall::Scatter => "MPI_Scatter",
            MpiCall::Init => "MPI_Init",
            MpiCall::Finalize => "MPI_Finalize",
            MpiCall::Sendrecv => "MPI_Sendrecv",
        }
    }
}

impl fmt::Display for MpiCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully parameterised MPI operation as recorded in a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiOp {
    /// Blocking send of `bytes` to rank `to`.
    Send {
        /// Destination rank.
        to: Rank,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Blocking receive of `bytes` from rank `from`.
    Recv {
        /// Source rank.
        from: Rank,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Non-blocking send; completion is claimed by `Wait`/`Waitall` on `req`.
    Isend {
        /// Destination rank.
        to: Rank,
        /// Payload size in bytes.
        bytes: u64,
        /// Request handle, unique within the issuing rank's trace.
        req: ReqId,
    },
    /// Non-blocking receive; completion is claimed by `Wait`/`Waitall` on `req`.
    Irecv {
        /// Source rank.
        from: Rank,
        /// Payload size in bytes.
        bytes: u64,
        /// Request handle, unique within the issuing rank's trace.
        req: ReqId,
    },
    /// Wait for a single outstanding request.
    Wait {
        /// The request to complete.
        req: ReqId,
    },
    /// Wait for a set of outstanding requests.
    Waitall {
        /// The requests to complete.
        reqs: Vec<ReqId>,
    },
    /// Paired exchange: send to `to` and receive from `from` concurrently.
    Sendrecv {
        /// Destination of the outgoing message.
        to: Rank,
        /// Outgoing payload size in bytes.
        send_bytes: u64,
        /// Source of the incoming message.
        from: Rank,
        /// Incoming payload size in bytes.
        recv_bytes: u64,
    },
    /// Full synchronisation across all ranks.
    Barrier,
    /// One-to-all broadcast of `bytes` from `root`.
    Bcast {
        /// Broadcast root.
        root: Rank,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// All-to-one reduction of `bytes` at `root`.
    Reduce {
        /// Reduction root.
        root: Rank,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Reduction + broadcast of `bytes` across all ranks.
    Allreduce {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Gather + broadcast: every rank contributes `bytes`.
    Allgather {
        /// Per-rank contribution in bytes.
        bytes: u64,
    },
    /// Personalised all-to-all: `bytes` to each peer.
    Alltoall {
        /// Per-destination payload size in bytes.
        bytes: u64,
    },
}

impl MpiOp {
    /// The call type of this operation (the id the PPA observes).
    pub fn call(&self) -> MpiCall {
        match self {
            MpiOp::Send { .. } => MpiCall::Send,
            MpiOp::Recv { .. } => MpiCall::Recv,
            MpiOp::Isend { .. } => MpiCall::Isend,
            MpiOp::Irecv { .. } => MpiCall::Irecv,
            MpiOp::Wait { .. } => MpiCall::Wait,
            MpiOp::Waitall { .. } => MpiCall::Waitall,
            MpiOp::Sendrecv { .. } => MpiCall::Sendrecv,
            MpiOp::Barrier => MpiCall::Barrier,
            MpiOp::Bcast { .. } => MpiCall::Bcast,
            MpiOp::Reduce { .. } => MpiCall::Reduce,
            MpiOp::Allreduce { .. } => MpiCall::Allreduce,
            MpiOp::Allgather { .. } => MpiCall::Allgather,
            MpiOp::Alltoall { .. } => MpiCall::Alltoall,
        }
    }

    /// Bytes this rank injects into the network for this operation (an
    /// upper-bound accounting used by workload statistics, not by the
    /// replay engine, which decomposes collectives properly).
    pub fn send_bytes(&self, nprocs: u32) -> u64 {
        match *self {
            MpiOp::Send { bytes, .. } | MpiOp::Isend { bytes, .. } => bytes,
            MpiOp::Sendrecv { send_bytes, .. } => send_bytes,
            MpiOp::Bcast { bytes, .. } | MpiOp::Reduce { bytes, .. } => bytes,
            MpiOp::Allreduce { bytes } | MpiOp::Allgather { bytes } => bytes,
            MpiOp::Alltoall { bytes } => bytes * u64::from(nprocs.saturating_sub(1)),
            MpiOp::Recv { .. }
            | MpiOp::Irecv { .. }
            | MpiOp::Wait { .. }
            | MpiOp::Waitall { .. }
            | MpiOp::Barrier => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_ids_match() {
        // Fig. 2 of the paper: 41 = MPI_Sendrecv, 10 = MPI_Allreduce.
        assert_eq!(MpiCall::Sendrecv.id(), 41);
        assert_eq!(MpiCall::Allreduce.id(), 10);
    }

    #[test]
    fn op_reports_its_call() {
        assert_eq!(
            MpiOp::Sendrecv {
                to: 1,
                send_bytes: 100,
                from: 2,
                recv_bytes: 100
            }
            .call(),
            MpiCall::Sendrecv
        );
        assert_eq!(MpiOp::Allreduce { bytes: 8 }.call(), MpiCall::Allreduce);
        assert_eq!(MpiOp::Barrier.call(), MpiCall::Barrier);
        assert_eq!(
            MpiOp::Waitall { reqs: vec![1, 2] }.call(),
            MpiCall::Waitall
        );
    }

    #[test]
    fn collective_classification() {
        assert!(MpiCall::Allreduce.is_collective());
        assert!(MpiCall::Barrier.is_collective());
        assert!(!MpiCall::Sendrecv.is_collective());
        assert!(!MpiCall::Wait.is_collective());
        assert!(!MpiCall::Init.is_communication());
        assert!(MpiCall::Send.is_communication());
    }

    #[test]
    fn send_bytes_accounting() {
        assert_eq!(MpiOp::Send { to: 0, bytes: 7 }.send_bytes(4), 7);
        assert_eq!(MpiOp::Recv { from: 0, bytes: 7 }.send_bytes(4), 0);
        assert_eq!(MpiOp::Alltoall { bytes: 10 }.send_bytes(4), 30);
        assert_eq!(MpiOp::Barrier.send_bytes(4), 0);
    }

    #[test]
    fn from_id_inverts_id_for_every_variant() {
        for call in MpiCall::ALL {
            assert_eq!(MpiCall::from_id(call.id()), Some(call));
        }
        // Unassigned ids decode to None — the wire decoder depends on it.
        for id in [0u16, 15, 30, 33, 40, 42, 999, u16::MAX] {
            assert_eq!(MpiCall::from_id(id), None);
        }
    }

    #[test]
    fn names_are_mpi_style() {
        assert_eq!(MpiCall::Sendrecv.to_string(), "MPI_Sendrecv");
        assert_eq!(MpiCall::Allreduce.to_string(), "MPI_Allreduce");
    }
}
