//! Per-rank and whole-application traces.
//!
//! A trace follows Dimemas replay semantics: each rank is a sequence of
//! *(compute burst, MPI operation)* records. The compute burst is the CPU
//! time the rank spent before entering the MPI call — during replay it is
//! reproduced verbatim, while the MPI operation is re-simulated on the
//! modelled network. The burst before a call is also exactly the
//! "inter-communication interval" the paper's prediction algorithm feeds on.

use crate::event::{MpiCall, MpiOp, Rank};
use ibp_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One trace record: the compute burst since the previous MPI call, then
/// the MPI operation itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// CPU time spent computing before this MPI call was entered.
    pub compute_before: SimDuration,
    /// The MPI operation.
    pub op: MpiOp,
}

/// The recorded activity of a single MPI rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankTrace {
    /// The rank this trace belongs to.
    pub rank: Rank,
    /// The (compute, MPI op) sequence.
    pub events: Vec<TraceEvent>,
    /// Compute performed after the last MPI call (finalisation work).
    pub final_compute: SimDuration,
}

impl RankTrace {
    /// Create an empty trace for `rank`.
    pub fn new(rank: Rank) -> Self {
        RankTrace {
            rank,
            events: Vec::new(),
            final_compute: SimDuration::ZERO,
        }
    }

    /// Number of MPI calls in the trace.
    pub fn call_count(&self) -> usize {
        self.events.len()
    }

    /// Total compute time recorded (all bursts + final compute).
    pub fn total_compute(&self) -> SimDuration {
        self.events
            .iter()
            .map(|e| e.compute_before)
            .sum::<SimDuration>()
            + self.final_compute
    }

    /// Iterate over `(call id, compute-before)` pairs — the exact stream
    /// the PPA consumes.
    pub fn call_stream(&self) -> impl Iterator<Item = (MpiCall, SimDuration)> + '_ {
        self.events.iter().map(|e| (e.op.call(), e.compute_before))
    }
}

/// A whole-application, all-ranks trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable workload name (e.g. `"alya"`).
    pub name: String,
    /// Number of MPI processes.
    pub nprocs: u32,
    /// One entry per rank, indexed by rank.
    pub ranks: Vec<RankTrace>,
}

impl Trace {
    /// Create an empty trace for `nprocs` ranks.
    pub fn new(name: impl Into<String>, nprocs: u32) -> Self {
        Trace {
            name: name.into(),
            nprocs,
            ranks: (0..nprocs).map(RankTrace::new).collect(),
        }
    }

    /// Total number of MPI calls across all ranks.
    pub fn total_calls(&self) -> usize {
        self.ranks.iter().map(|r| r.call_count()).sum()
    }

    /// Validate internal consistency:
    ///
    /// * rank indices are dense and match positions,
    /// * point-to-point peers are in range,
    /// * every `Wait`/`Waitall` request was previously posted by an
    ///   `Isend`/`Irecv` on the same rank and is claimed exactly once,
    /// * collective roots are in range.
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks.len() != self.nprocs as usize {
            return Err(format!(
                "trace says {} procs but holds {} rank traces",
                self.nprocs,
                self.ranks.len()
            ));
        }
        for (i, r) in self.ranks.iter().enumerate() {
            if r.rank as usize != i {
                return Err(format!("rank {} stored at position {}", r.rank, i));
            }
            let in_range = |p: Rank| (p as usize) < self.ranks.len();
            let mut posted: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for (j, ev) in r.events.iter().enumerate() {
                let err = |msg: String| Err(format!("rank {i} event {j}: {msg}"));
                match &ev.op {
                    MpiOp::Send { to, .. } | MpiOp::Isend { to, .. } if !in_range(*to) => {
                        return err(format!("peer {to} out of range"));
                    }
                    MpiOp::Recv { from, .. } | MpiOp::Irecv { from, .. } if !in_range(*from) => {
                        return err(format!("peer {from} out of range"));
                    }
                    MpiOp::Sendrecv { to, from, .. } if !in_range(*to) || !in_range(*from) => {
                        return err(format!("peer {to}/{from} out of range"));
                    }
                    MpiOp::Bcast { root, .. } | MpiOp::Reduce { root, .. }
                        if !in_range(*root) =>
                    {
                        return err(format!("root {root} out of range"));
                    }
                    MpiOp::Isend { req, .. } | MpiOp::Irecv { req, .. }
                        if !posted.insert(*req) =>
                    {
                        return err(format!("request {req} posted twice"));
                    }
                    MpiOp::Wait { req } if !posted.remove(req) => {
                        return err(format!("wait on unposted request {req}"));
                    }
                    MpiOp::Waitall { reqs } => {
                        for req in reqs {
                            if !posted.remove(req) {
                                return err(format!("waitall on unposted request {req}"));
                            }
                        }
                    }
                    _ => {}
                }
            }
            if !posted.is_empty() {
                return Err(format!(
                    "rank {i}: {} request(s) never completed by wait",
                    posted.len()
                ));
            }
        }
        Ok(())
    }
}

/// Incremental construction of a [`Trace`].
///
/// ```
/// use ibp_trace::{TraceBuilder, MpiOp};
/// use ibp_simcore::SimDuration;
///
/// let mut b = TraceBuilder::new("demo", 2);
/// b.compute(0, SimDuration::from_us(100));
/// b.op(0, MpiOp::Send { to: 1, bytes: 1024 });
/// b.compute(1, SimDuration::from_us(80));
/// b.op(1, MpiOp::Recv { from: 0, bytes: 1024 });
/// let trace = b.build();
/// assert_eq!(trace.total_calls(), 2);
/// assert!(trace.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
    /// Compute accumulated per rank since its last MPI op.
    pending_compute: Vec<SimDuration>,
    /// Next request id per rank (for convenience isend/irecv helpers).
    next_req: Vec<u32>,
}

impl TraceBuilder {
    /// Start building a trace for `nprocs` ranks.
    pub fn new(name: impl Into<String>, nprocs: u32) -> Self {
        TraceBuilder {
            trace: Trace::new(name, nprocs),
            pending_compute: vec![SimDuration::ZERO; nprocs as usize],
            next_req: vec![0; nprocs as usize],
        }
    }

    /// Number of ranks in the trace under construction.
    pub fn nprocs(&self) -> u32 {
        self.trace.nprocs
    }

    /// Accumulate compute time on `rank`.
    pub fn compute(&mut self, rank: Rank, dur: SimDuration) {
        self.pending_compute[rank as usize] += dur;
    }

    /// Record an MPI operation on `rank`, consuming the pending compute as
    /// its `compute_before`.
    pub fn op(&mut self, rank: Rank, op: MpiOp) {
        let compute_before =
            std::mem::replace(&mut self.pending_compute[rank as usize], SimDuration::ZERO);
        self.trace.ranks[rank as usize]
            .events
            .push(TraceEvent { compute_before, op });
    }

    /// Post an `Isend` with a freshly allocated request id; returns the id.
    pub fn isend(&mut self, rank: Rank, to: Rank, bytes: u64) -> u32 {
        let req = self.next_req[rank as usize];
        self.next_req[rank as usize] += 1;
        self.op(rank, MpiOp::Isend { to, bytes, req });
        req
    }

    /// Post an `Irecv` with a freshly allocated request id; returns the id.
    pub fn irecv(&mut self, rank: Rank, from: Rank, bytes: u64) -> u32 {
        let req = self.next_req[rank as usize];
        self.next_req[rank as usize] += 1;
        self.op(rank, MpiOp::Irecv { from, bytes, req });
        req
    }

    /// Finish the trace, attributing any pending compute to
    /// `final_compute`.
    pub fn build(mut self) -> Trace {
        for (rank, pending) in self.pending_compute.iter().enumerate() {
            self.trace.ranks[rank].final_compute = *pending;
        }
        self.trace
    }
}

/// Convert a [`RankTrace`] into absolute call-entry timestamps *assuming no
/// communication delay* (each MPI call completes instantly). This is the
/// approximation used when analysing a trace before replaying it — and is
/// what the paper does when it mines traces for idle intervals.
pub fn nominal_call_times(trace: &RankTrace) -> Vec<(SimTime, MpiCall)> {
    let mut t = SimTime::ZERO;
    trace
        .events
        .iter()
        .map(|e| {
            t += e.compute_before;
            (t, e.op.call())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_trace() -> Trace {
        let mut b = TraceBuilder::new("t", 2);
        b.compute(0, SimDuration::from_us(50));
        b.op(0, MpiOp::Send { to: 1, bytes: 2048 });
        b.compute(0, SimDuration::from_us(10));
        b.op(0, MpiOp::Allreduce { bytes: 8 });
        b.compute(1, SimDuration::from_us(30));
        b.op(1, MpiOp::Recv { from: 0, bytes: 2048 });
        b.op(1, MpiOp::Allreduce { bytes: 8 });
        b.compute(1, SimDuration::from_us(5));
        b.build()
    }

    #[test]
    fn builder_assembles_records() {
        let t = two_rank_trace();
        assert_eq!(t.total_calls(), 4);
        assert_eq!(t.ranks[0].events[0].compute_before, SimDuration::from_us(50));
        assert_eq!(t.ranks[1].events[1].compute_before, SimDuration::ZERO);
        assert_eq!(t.ranks[1].final_compute, SimDuration::from_us(5));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn total_compute_includes_final() {
        let t = two_rank_trace();
        assert_eq!(t.ranks[1].total_compute(), SimDuration::from_us(35));
    }

    #[test]
    fn call_stream_matches_events() {
        let t = two_rank_trace();
        let stream: Vec<_> = t.ranks[0].call_stream().collect();
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].0, MpiCall::Send);
        assert_eq!(stream[1], (MpiCall::Allreduce, SimDuration::from_us(10)));
    }

    #[test]
    fn validate_rejects_out_of_range_peer() {
        let mut b = TraceBuilder::new("bad", 2);
        b.op(0, MpiOp::Send { to: 5, bytes: 1 });
        let t = b.build();
        assert!(t.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_rejects_unmatched_wait() {
        let mut b = TraceBuilder::new("bad", 1);
        b.op(0, MpiOp::Wait { req: 3 });
        assert!(b.build().validate().unwrap_err().contains("unposted"));
    }

    #[test]
    fn validate_rejects_unclaimed_request() {
        let mut b = TraceBuilder::new("bad", 2);
        b.isend(0, 1, 100);
        assert!(b.build().validate().unwrap_err().contains("never completed"));
    }

    #[test]
    fn validate_accepts_request_lifecycle() {
        let mut b = TraceBuilder::new("ok", 2);
        let r1 = b.isend(0, 1, 100);
        let r2 = b.irecv(0, 1, 100);
        b.op(0, MpiOp::Waitall { reqs: vec![r1, r2] });
        b.op(1, MpiOp::Recv { from: 0, bytes: 100 });
        b.op(1, MpiOp::Send { to: 0, bytes: 100 });
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn nominal_call_times_accumulate_compute() {
        let t = two_rank_trace();
        let times = nominal_call_times(&t.ranks[0]);
        assert_eq!(times[0].0, SimTime::from_us(50));
        assert_eq!(times[1].0, SimTime::from_us(60));
    }
}
