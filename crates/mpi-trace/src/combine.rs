//! Multi-job trace composition.
//!
//! A production fabric rarely runs one application: several jobs share
//! the switches (and, under random up/down routing, the top-level
//! channels). [`combine`] merges independent application traces into one
//! fabric-wide trace with disjoint rank ranges — the replay engine then
//! simulates them concurrently, contention and all, and per-link power
//! management applies to every job's host links.
//!
//! Ranks are remapped by job offset; since jobs never communicate with
//! each other, the combined trace is consistent iff each input was.

use crate::event::MpiOp;
use crate::trace::Trace;

/// Remap every rank reference in an operation by `offset`.
fn offset_op(op: &MpiOp, offset: u32) -> MpiOp {
    match *op {
        MpiOp::Send { to, bytes } => MpiOp::Send {
            to: to + offset,
            bytes,
        },
        MpiOp::Recv { from, bytes } => MpiOp::Recv {
            from: from + offset,
            bytes,
        },
        MpiOp::Isend { to, bytes, req } => MpiOp::Isend {
            to: to + offset,
            bytes,
            req,
        },
        MpiOp::Irecv { from, bytes, req } => MpiOp::Irecv {
            from: from + offset,
            bytes,
            req,
        },
        MpiOp::Sendrecv {
            to,
            send_bytes,
            from,
            recv_bytes,
        } => MpiOp::Sendrecv {
            to: to + offset,
            send_bytes,
            from: from + offset,
            recv_bytes,
        },
        MpiOp::Bcast { root, bytes } => MpiOp::Bcast {
            root: root + offset,
            bytes,
        },
        MpiOp::Reduce { root, bytes } => MpiOp::Reduce {
            root: root + offset,
            bytes,
        },
        ref other => other.clone(),
    }
}

/// The placement of one job inside a combined trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPlacement {
    /// First fabric-wide rank of the job.
    pub first_rank: u32,
    /// Number of ranks.
    pub nprocs: u32,
}

/// Merge independent job traces into one fabric-wide trace. Returns the
/// combined trace and each job's placement, in input order.
///
/// **Caveat**: collectives in each job remain *job-local* only for
/// point-to-point-decomposable semantics — which holds here because the
/// replay engine decomposes every collective into point-to-point
/// messages among the ranks the operation names. Barrier/Allreduce/
/// Allgather/Alltoall operate on "all ranks of the communicator"; after
/// combination that would be the whole fabric, which is wrong. They are
/// therefore rewritten… they cannot be — so `combine` *rejects* traces
/// containing whole-communicator collectives unless the job is placed
/// alone. Use [`can_combine`] to check.
pub fn combine(jobs: &[&Trace]) -> Result<(Trace, Vec<JobPlacement>), String> {
    for (j, t) in jobs.iter().enumerate() {
        if jobs.len() > 1 {
            if let Some(op) = first_global_collective(t) {
                return Err(format!(
                    "job {j} ('{}') uses whole-communicator collective {op}; \
                     it cannot be combined with other jobs",
                    t.name
                ));
            }
        }
    }
    let total: u32 = jobs.iter().map(|t| t.nprocs).sum();
    let name = jobs
        .iter()
        .map(|t| t.name.as_str())
        .collect::<Vec<_>>()
        .join("+");
    let mut combined = Trace::new(name, total);
    let mut placements = Vec::with_capacity(jobs.len());
    let mut offset = 0u32;
    for t in jobs {
        placements.push(JobPlacement {
            first_rank: offset,
            nprocs: t.nprocs,
        });
        for (r, rank_trace) in t.ranks.iter().enumerate() {
            let dst = &mut combined.ranks[offset as usize + r];
            dst.final_compute = rank_trace.final_compute;
            dst.events = rank_trace
                .events
                .iter()
                .map(|e| crate::trace::TraceEvent {
                    compute_before: e.compute_before,
                    op: offset_op(&e.op, offset),
                })
                .collect();
        }
        offset += t.nprocs;
    }
    combined.validate()?;
    Ok((combined, placements))
}

/// Whether `trace` can participate in a multi-job combination (no
/// whole-communicator collectives).
pub fn can_combine(trace: &Trace) -> bool {
    first_global_collective(trace).is_none()
}

fn first_global_collective(trace: &Trace) -> Option<&'static str> {
    for r in &trace.ranks {
        for e in &r.events {
            match e.op {
                MpiOp::Barrier => return Some("MPI_Barrier"),
                MpiOp::Allreduce { .. } => return Some("MPI_Allreduce"),
                MpiOp::Allgather { .. } => return Some("MPI_Allgather"),
                MpiOp::Alltoall { .. } => return Some("MPI_Alltoall"),
                MpiOp::Bcast { .. } | MpiOp::Reduce { .. } => {
                    // Rooted collectives decompose over the ranks the
                    // tree names — also whole-communicator. Reject.
                    return Some("rooted collective");
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use ibp_simcore::SimDuration;

    fn p2p_job(name: &str, nprocs: u32, bytes: u64) -> Trace {
        let mut b = TraceBuilder::new(name, nprocs);
        for it in 0..5 {
            let _ = it;
            for r in 0..nprocs {
                b.compute(r, SimDuration::from_us(100));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: (r + 1) % nprocs,
                        send_bytes: bytes,
                        from: (r + nprocs - 1) % nprocs,
                        recv_bytes: bytes,
                    },
                );
            }
        }
        b.build()
    }

    #[test]
    fn combines_disjoint_jobs() {
        let a = p2p_job("a", 4, 1024);
        let b = p2p_job("b", 6, 2048);
        let (t, places) = combine(&[&a, &b]).unwrap();
        assert_eq!(t.nprocs, 10);
        assert_eq!(t.name, "a+b");
        assert_eq!(
            places,
            vec![
                JobPlacement {
                    first_rank: 0,
                    nprocs: 4
                },
                JobPlacement {
                    first_rank: 4,
                    nprocs: 6
                }
            ]
        );
        t.validate().unwrap();
        // Job b's ring is shifted: rank 4 talks to 5 and 9.
        match &t.ranks[4].events[0].op {
            MpiOp::Sendrecv { to, from, .. } => {
                assert_eq!(*to, 5);
                assert_eq!(*from, 9);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn rejects_global_collectives_in_multi_job() {
        let mut b = TraceBuilder::new("coll", 2);
        b.op(0, MpiOp::Allreduce { bytes: 8 });
        b.op(1, MpiOp::Allreduce { bytes: 8 });
        let coll = b.build();
        let p2p = p2p_job("p", 2, 64);
        assert!(!can_combine(&coll));
        let err = combine(&[&coll, &p2p]).unwrap_err();
        assert!(err.contains("MPI_Allreduce"), "{err}");
    }

    #[test]
    fn single_job_with_collectives_is_fine() {
        let mut b = TraceBuilder::new("coll", 2);
        b.op(0, MpiOp::Allreduce { bytes: 8 });
        b.op(1, MpiOp::Allreduce { bytes: 8 });
        let coll = b.build();
        let (t, _) = combine(&[&coll]).unwrap();
        assert_eq!(t.nprocs, 2);
    }

    #[test]
    fn nonblocking_requests_survive_combination() {
        let mut b = TraceBuilder::new("nb", 2);
        let r0 = b.irecv(0, 1, 512);
        b.op(0, MpiOp::Wait { req: r0 });
        b.op(1, MpiOp::Send { to: 0, bytes: 512 });
        let nb = b.build();
        let other = p2p_job("p", 3, 64);
        let (t, places) = combine(&[&other, &nb]).unwrap();
        t.validate().unwrap();
        assert_eq!(places[1].first_rank, 3);
        match &t.ranks[3].events[0].op {
            MpiOp::Irecv { from, .. } => assert_eq!(*from, 4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
