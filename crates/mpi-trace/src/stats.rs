//! Idle-interval statistics — the machinery behind the paper's Table I.
//!
//! With one MPI process per node (the paper's configuration), a node's
//! InfiniBand link is idle exactly while its process computes between MPI
//! calls. Table I of the paper buckets those *link idle intervals* into
//! `< 20 µs`, `20–200 µs` and `> 200 µs` (20 µs = 2·T_react being the
//! minimum exploitable interval) and reports, per bucket: the interval
//! count, the percentage of intervals, and the percentage of accumulated
//! idle time.

use crate::trace::Trace;
use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Default lower edge: intervals below `2·T_react = 20 µs` cannot be
/// exploited (lane off+on costs more than the interval).
pub const SHORT_EDGE_US: f64 = 20.0;
/// Default upper edge: the paper singles out `> 200 µs` as the intervals
/// where "significant power can be saved".
pub const LONG_EDGE_US: f64 = 200.0;

/// One bucket row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdleBucket {
    /// Number of idle intervals in the bucket.
    pub intervals: u64,
    /// Share of the interval *count*, in percent.
    pub interval_pct: f64,
    /// Share of accumulated idle *time*, in percent.
    pub time_pct: f64,
}

/// The idle-interval distribution of one application trace — one Table I
/// row group (three buckets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleDistribution {
    /// `T_idle < short_edge` — unusable intervals.
    pub short: IdleBucket,
    /// `short_edge ≤ T_idle < long_edge` — exploitable, modest savings.
    pub medium: IdleBucket,
    /// `T_idle ≥ long_edge` — exploitable, large savings.
    pub long: IdleBucket,
    /// Bucket edges used, in microseconds.
    pub edges_us: (f64, f64),
    /// Total accumulated idle time across all ranks.
    pub total_idle: SimDuration,
    /// Total number of intervals observed.
    pub total_intervals: u64,
}

impl IdleDistribution {
    /// Compute the distribution over every inter-communication interval of
    /// every rank in `trace`, using the paper's 20/200 µs edges.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_with_edges(trace, SHORT_EDGE_US, LONG_EDGE_US)
    }

    /// Compute the distribution with custom bucket edges (µs).
    ///
    /// # Panics
    /// Panics if `short_us >= long_us`.
    pub fn from_trace_with_edges(trace: &Trace, short_us: f64, long_us: f64) -> Self {
        assert!(short_us < long_us, "bucket edges must be increasing");
        Self::from_intervals(
            trace
                .ranks
                .iter()
                .flat_map(|r| r.events.iter().map(|e| e.compute_before)),
            short_us,
            long_us,
        )
    }

    /// Compute the distribution from raw idle intervals.
    pub fn from_intervals(
        intervals: impl IntoIterator<Item = SimDuration>,
        short_us: f64,
        long_us: f64,
    ) -> Self {
        let mut counts = [0u64; 3];
        let mut sums = [0f64; 3]; // in µs
        for iv in intervals {
            // Zero-length gaps (back-to-back MPI calls) are not link idle
            // intervals at all; the link never went quiet.
            if iv.is_zero() {
                continue;
            }
            let us = iv.as_us_f64();
            let b = if us < short_us {
                0
            } else if us < long_us {
                1
            } else {
                2
            };
            counts[b] += 1;
            sums[b] += us;
        }
        let total_n: u64 = counts.iter().sum();
        let total_t: f64 = sums.iter().sum();
        let bucket = |i: usize| IdleBucket {
            intervals: counts[i],
            interval_pct: if total_n == 0 {
                0.0
            } else {
                100.0 * counts[i] as f64 / total_n as f64
            },
            time_pct: if total_t == 0.0 {
                0.0
            } else {
                100.0 * sums[i] / total_t
            },
        };
        IdleDistribution {
            short: bucket(0),
            medium: bucket(1),
            long: bucket(2),
            edges_us: (short_us, long_us),
            total_idle: SimDuration::from_us_f64(total_t),
            total_intervals: total_n,
        }
    }

    /// Percentage of accumulated idle time that is exploitable
    /// (`T_idle ≥ 2·T_react`, i.e. medium + long buckets).
    pub fn exploitable_time_pct(&self) -> f64 {
        self.medium.time_pct + self.long.time_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MpiOp;
    use crate::trace::TraceBuilder;

    fn iv(us: u64) -> SimDuration {
        SimDuration::from_us(us)
    }

    #[test]
    fn buckets_split_at_edges() {
        let d = IdleDistribution::from_intervals(
            vec![iv(5), iv(19), iv(20), iv(199), iv(200), iv(10_000)],
            20.0,
            200.0,
        );
        assert_eq!(d.short.intervals, 2);
        assert_eq!(d.medium.intervals, 2);
        assert_eq!(d.long.intervals, 2);
        assert_eq!(d.total_intervals, 6);
    }

    #[test]
    fn zero_intervals_are_skipped() {
        let d = IdleDistribution::from_intervals(vec![SimDuration::ZERO, iv(50)], 20.0, 200.0);
        assert_eq!(d.total_intervals, 1);
        assert_eq!(d.medium.intervals, 1);
    }

    #[test]
    fn percentages_sum_to_100() {
        let d = IdleDistribution::from_intervals(
            (1..100).map(|i| iv(i * 7 % 400 + 1)),
            20.0,
            200.0,
        );
        let n = d.short.interval_pct + d.medium.interval_pct + d.long.interval_pct;
        let t = d.short.time_pct + d.medium.time_pct + d.long.time_pct;
        assert!((n - 100.0).abs() < 1e-9);
        assert!((t - 100.0).abs() < 1e-9);
    }

    #[test]
    fn long_intervals_dominate_time_share() {
        // The paper's key observation: even when tiny intervals dominate the
        // count (WRF: 94% of intervals), the long ones dominate the time
        // (>97% of idle time).
        let mut intervals: Vec<SimDuration> = (0..9_400).map(|_| iv(2)).collect();
        intervals.extend((0..600).map(|_| SimDuration::from_ms(5)));
        let d = IdleDistribution::from_intervals(intervals, 20.0, 200.0);
        assert!(d.short.interval_pct > 90.0);
        assert!(d.long.time_pct > 97.0);
        assert!(d.exploitable_time_pct() > 97.0);
    }

    #[test]
    fn from_trace_uses_compute_gaps() {
        let mut b = TraceBuilder::new("t", 1);
        b.compute(0, iv(100));
        b.op(0, MpiOp::Barrier);
        b.compute(0, iv(10));
        b.op(0, MpiOp::Barrier);
        b.op(0, MpiOp::Barrier); // zero gap, skipped
        let d = IdleDistribution::from_trace(&b.build());
        assert_eq!(d.total_intervals, 2);
        assert_eq!(d.short.intervals, 1);
        assert_eq!(d.medium.intervals, 1);
        assert_eq!(d.total_idle, iv(110));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let d = IdleDistribution::from_trace(&TraceBuilder::new("e", 2).build());
        assert_eq!(d.total_intervals, 0);
        assert_eq!(d.short.interval_pct, 0.0);
        assert_eq!(d.exploitable_time_pct(), 0.0);
    }
}
