//! Paraver-flavoured trace export.
//!
//! The paper's traces were captured and inspected with BSC's Paraver
//! toolchain (`.prv` text traces). This module writes our traces in a
//! simplified dialect of that format so they can be eyeballed with the
//! same mental model: a header line with the rank count, then one record
//! per line, sorted by time:
//!
//! ```text
//! #Paraver (ibpower): <duration_ns> ns, <nprocs> tasks
//! 1:<rank>:<start_ns>:<end_ns>:COMPUTE
//! 2:<rank>:<time_ns>:<mpi_call_id>:<call_name>
//! ```
//!
//! Record type 1 is a state record (computation burst); record type 2 is
//! an event record (MPI call entry, with the Paraver-style numeric id the
//! PPA hashes on — 41 = `MPI_Sendrecv`, 10 = `MPI_Allreduce`, …).
//!
//! The export uses *nominal* per-rank times (communication treated as
//! instantaneous), the same approximation the analysis pass uses; replays
//! produce the timing-accurate picture.

use crate::trace::Trace;
use std::fmt::Write as _;

/// Serialise `trace` to the simplified `.prv` dialect.
pub fn to_prv(trace: &Trace) -> String {
    let mut records: Vec<(u64, String)> = Vec::new();
    let mut horizon = 0u64;
    for rank in &trace.ranks {
        let mut t = 0u64;
        for e in &rank.events {
            let start = t;
            t += e.compute_before.as_ns();
            if e.compute_before.as_ns() > 0 {
                records.push((start, format!("1:{}:{}:{}:COMPUTE", rank.rank, start, t)));
            }
            let call = e.op.call();
            records.push((
                t,
                format!("2:{}:{}:{}:{}", rank.rank, t, call.id(), call.name()),
            ));
        }
        t += rank.final_compute.as_ns();
        horizon = horizon.max(t);
    }
    records.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut out = format!(
        "#Paraver (ibpower): {} ns, {} tasks\n",
        horizon, trace.nprocs
    );
    for (_, line) in records {
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MpiOp;
    use crate::trace::TraceBuilder;
    use ibp_simcore::SimDuration;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("prv", 2);
        b.compute(0, SimDuration::from_us(10));
        b.op(0, MpiOp::Sendrecv {
            to: 1,
            send_bytes: 64,
            from: 1,
            recv_bytes: 64,
        });
        b.compute(1, SimDuration::from_us(5));
        b.op(1, MpiOp::Sendrecv {
            to: 0,
            send_bytes: 64,
            from: 0,
            recv_bytes: 64,
        });
        b.op(1, MpiOp::Allreduce { bytes: 8 });
        b.op(0, MpiOp::Allreduce { bytes: 8 });
        b.build()
    }

    #[test]
    fn header_reports_tasks_and_horizon() {
        let prv = to_prv(&sample());
        let header = prv.lines().next().unwrap();
        assert!(header.starts_with("#Paraver (ibpower):"));
        assert!(header.contains("2 tasks"));
        assert!(header.contains("10000 ns"));
    }

    #[test]
    fn events_use_paper_ids() {
        let prv = to_prv(&sample());
        assert!(prv.contains(":41:MPI_Sendrecv"));
        assert!(prv.contains(":10:MPI_Allreduce"));
    }

    #[test]
    fn records_sorted_by_time() {
        let prv = to_prv(&sample());
        let times: Vec<u64> = prv
            .lines()
            .skip(1)
            .map(|l| l.split(':').nth(2).unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn compute_states_cover_bursts() {
        let prv = to_prv(&sample());
        let states: Vec<&str> = prv.lines().filter(|l| l.starts_with("1:")).collect();
        assert_eq!(states.len(), 2);
        assert!(states.iter().any(|s| s.contains("1:0:0:10000:COMPUTE")));
        assert!(states.iter().any(|s| s.contains("1:1:0:5000:COMPUTE")));
    }

    #[test]
    fn zero_length_bursts_omitted() {
        let prv = to_prv(&sample());
        // Rank 0's second call follows the first immediately: no state
        // record of zero length may appear.
        assert!(!prv.contains(":10000:10000:COMPUTE"));
    }
}
