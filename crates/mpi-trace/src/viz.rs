//! Paraver-style timeline rendering (the paper's Fig. 6) as ASCII art.
//!
//! The paper shows a Paraver trace where dark blue marks IB links in
//! low-power mode and bright blue marks power-unaware full power. We render
//! the same picture in a terminal: one row per tracked entity (rank or
//! link), one character per time cell, the character chosen by a
//! caller-supplied state-to-glyph mapping applied to the state that
//! *dominates* (occupies the most time in) each cell.

use ibp_simcore::{SimTime, StateTimeline};
use std::fmt::Write as _;

/// Render a set of state timelines as fixed-width rows.
///
/// * `rows` — `(label, timeline)` pairs, rendered top to bottom;
/// * `end` — the time horizon (right edge);
/// * `width` — number of character cells per row;
/// * `glyph` — maps a state to the character drawn for it.
///
/// Each cell shows the state that occupies the most time within the cell's
/// time span. A scale line in microseconds is appended underneath.
///
/// # Panics
/// Panics if `width == 0` or `end` is zero.
pub fn render_timelines<S: Copy + PartialEq>(
    rows: &[(String, &StateTimeline<S>)],
    end: SimTime,
    width: usize,
    mut glyph: impl FnMut(S) -> char,
) -> String {
    assert!(width > 0, "timeline width must be positive");
    assert!(end > SimTime::ZERO, "timeline horizon must be positive");

    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let cell_ns = (end.as_ns() as f64 / width as f64).max(1.0);
    let mut out = String::new();

    for (label, tl) in rows {
        let _ = write!(out, "{label:<label_w$} |");
        // Accumulate time per state within each cell by walking intervals.
        let mut cells: Vec<char> = Vec::with_capacity(width);
        let intervals: Vec<_> = tl.intervals(end).collect();
        let mut idx = 0usize;
        for c in 0..width {
            let c_start = (c as f64 * cell_ns) as u64;
            let c_end = (((c + 1) as f64) * cell_ns) as u64;
            // Advance to the first interval overlapping this cell.
            while idx < intervals.len() && intervals[idx].end.as_ns() <= c_start {
                idx += 1;
            }
            let mut best: Option<(u64, S)> = None;
            let mut j = idx;
            while j < intervals.len() && intervals[j].start.as_ns() < c_end {
                let ov = intervals[j].end.as_ns().min(c_end)
                    - intervals[j].start.as_ns().max(c_start);
                let state = intervals[j].state;
                match &mut best {
                    Some((t, s)) if *s == state => *t += ov,
                    Some((t, _)) if ov > *t => best = Some((ov, state)),
                    None => best = Some((ov, state)),
                    _ => {}
                }
                j += 1;
            }
            cells.push(best.map_or(' ', |(_, s)| glyph(s)));
        }
        out.extend(cells);
        out.push('|');
        out.push('\n');
    }

    // Scale line.
    let _ = write!(out, "{:<label_w$} |", "");
    let total_us = end.as_us_f64();
    let marks = 5.min(width);
    for c in 0..width {
        let at_mark = marks > 0 && c % (width / marks).max(1) == 0;
        out.push(if at_mark { '+' } else { '-' });
    }
    out.push('|');
    let _ = write!(out, "\n{:<label_w$} |0{:>w$.0}us|", "", total_us, w = width - 1);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq)]
    enum P {
        Full,
        Low,
    }

    fn glyph(p: P) -> char {
        match p {
            P::Full => '#',
            P::Low => '.',
        }
    }

    #[test]
    fn renders_dominant_state_per_cell() {
        let mut tl = StateTimeline::new(P::Full);
        tl.record(SimTime::from_us(50), P::Low);
        tl.record(SimTime::from_us(90), P::Full);
        let rows = vec![("link0".to_string(), &tl)];
        let s = render_timelines(&rows, SimTime::from_us(100), 10, glyph);
        let first_line = s.lines().next().unwrap();
        // Cells 0-4 full, 5-8 low, 9 full.
        assert!(first_line.contains("#####....#"), "got: {first_line}");
    }

    #[test]
    fn rows_aligned_on_labels() {
        let mut a = StateTimeline::new(P::Full);
        a.record(SimTime::from_us(10), P::Low);
        let b = StateTimeline::new(P::Full);
        let rows = vec![("r0".to_string(), &a), ("rank12".to_string(), &b)];
        let s = render_timelines(&rows, SimTime::from_us(20), 8, glyph);
        let lines: Vec<&str> = s.lines().collect();
        let bar0 = lines[0].find('|').unwrap();
        let bar1 = lines[1].find('|').unwrap();
        assert_eq!(bar0, bar1, "label columns must align");
    }

    #[test]
    fn scale_line_present() {
        let tl = StateTimeline::new(P::Full);
        let rows = vec![("x".to_string(), &tl)];
        let s = render_timelines(&rows, SimTime::from_ms(1), 20, glyph);
        assert!(s.contains("1000us") || s.contains("1000"), "scale: {s}");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let tl = StateTimeline::new(P::Full);
        let rows = vec![("x".to_string(), &tl)];
        let _ = render_timelines(&rows, SimTime::from_us(1), 0, glyph);
    }
}
