//! Trace profiling: the summaries an analyst pulls from a trace before
//! deciding how to power-manage it.
//!
//! Three views are provided:
//!
//! * [`CallProfile`] — per-call-type counts, payload bytes, and the idle
//!   time attributable to the gaps preceding each type (which call types
//!   "guard" the exploitable idle);
//! * [`CommMatrix`] — bytes exchanged per (src, dst) rank pair, the
//!   standard communication-topology picture;
//! * [`ActivityProfile`] — time-binned call activity per rank (how bursty
//!   the communication is), the quantity Fig. 6 visualises.

use crate::event::{MpiCall, MpiOp};
use crate::trace::Trace;
use ibp_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-call-type aggregate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallTypeStats {
    /// Number of calls of this type across all ranks.
    pub count: u64,
    /// Bytes this type injects (sender side).
    pub send_bytes: u64,
    /// Total idle time in the gaps immediately preceding calls of this
    /// type.
    pub preceding_idle: SimDuration,
}

/// Per-call-type profile of a whole trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallProfile {
    /// Stats per call type, keyed by the Paraver-style id for stable
    /// ordering.
    pub by_call: BTreeMap<u16, CallTypeStats>,
}

impl CallProfile {
    /// Profile `trace`.
    pub fn of(trace: &Trace) -> Self {
        let mut by_call: BTreeMap<u16, CallTypeStats> = BTreeMap::new();
        for rank in &trace.ranks {
            for ev in &rank.events {
                let e = by_call.entry(ev.op.call().id()).or_default();
                e.count += 1;
                e.send_bytes += ev.op.send_bytes(trace.nprocs);
                e.preceding_idle += ev.compute_before;
            }
        }
        CallProfile { by_call }
    }

    /// Stats for one call type, if present.
    pub fn get(&self, call: MpiCall) -> Option<&CallTypeStats> {
        self.by_call.get(&call.id())
    }

    /// Total calls across types.
    pub fn total_calls(&self) -> u64 {
        self.by_call.values().map(|s| s.count).sum()
    }

    /// The call type guarding the most idle time (the natural lane-off
    /// anchor), if any.
    pub fn dominant_idle_guard(&self) -> Option<MpiCall> {
        let id = self
            .by_call
            .iter()
            .max_by_key(|(_, s)| s.preceding_idle)?
            .0;
        // Map ids back to the enum (ids are the single source of truth).
        [
            MpiCall::Send,
            MpiCall::Recv,
            MpiCall::Isend,
            MpiCall::Irecv,
            MpiCall::Wait,
            MpiCall::Waitall,
            MpiCall::Bcast,
            MpiCall::Barrier,
            MpiCall::Reduce,
            MpiCall::Allreduce,
            MpiCall::Alltoall,
            MpiCall::Allgather,
            MpiCall::Gather,
            MpiCall::Scatter,
            MpiCall::Init,
            MpiCall::Finalize,
            MpiCall::Sendrecv,
        ]
        .into_iter()
        .find(|c| c.id() == *id)
    }
}

/// Bytes exchanged per (src, dst) pair. Collectives are attributed to
/// their nominal sender(s) (the same upper-bound accounting as
/// [`MpiOp::send_bytes`], spread over the communicator for all-to-all
/// styles is *not* attempted — this is a point-to-point heat map).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommMatrix {
    /// Rank count.
    pub nprocs: u32,
    /// Row-major `nprocs × nprocs` byte counts.
    pub bytes: Vec<u64>,
}

impl CommMatrix {
    /// Build the point-to-point communication matrix of `trace`.
    pub fn of(trace: &Trace) -> Self {
        let n = trace.nprocs as usize;
        let mut bytes = vec![0u64; n * n];
        for rank in &trace.ranks {
            let src = rank.rank as usize;
            for ev in &rank.events {
                match ev.op {
                    MpiOp::Send { to, bytes: b } | MpiOp::Isend { to, bytes: b, .. } => {
                        bytes[src * n + to as usize] += b;
                    }
                    MpiOp::Sendrecv { to, send_bytes, .. } => {
                        bytes[src * n + to as usize] += send_bytes;
                    }
                    _ => {}
                }
            }
        }
        CommMatrix {
            nprocs: trace.nprocs,
            bytes,
        }
    }

    /// Bytes sent from `src` to `dst`.
    pub fn get(&self, src: u32, dst: u32) -> u64 {
        self.bytes[(src * self.nprocs + dst) as usize]
    }

    /// Total point-to-point bytes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of distinct communicating pairs.
    pub fn pairs(&self) -> usize {
        self.bytes.iter().filter(|&&b| b > 0).count()
    }

    /// Is the matrix symmetric (every exchange is mirrored)?
    pub fn is_symmetric(&self) -> bool {
        let n = self.nprocs;
        (0..n).all(|i| (0..n).all(|j| self.get(i, j) == self.get(j, i)))
    }
}

/// Time-binned MPI activity per rank, using nominal times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Bin width.
    pub bin: SimDuration,
    /// Per-rank vectors of call counts per bin.
    pub bins: Vec<Vec<u32>>,
}

impl ActivityProfile {
    /// Bin the call-entry times of `trace` into windows of `bin`.
    ///
    /// # Panics
    /// Panics if `bin` is zero.
    pub fn of(trace: &Trace, bin: SimDuration) -> Self {
        assert!(!bin.is_zero(), "bin width must be positive");
        let bins = trace
            .ranks
            .iter()
            .map(|rank| {
                let mut v: Vec<u32> = Vec::new();
                let mut t = 0u64;
                for ev in &rank.events {
                    t += ev.compute_before.as_ns();
                    let idx = (t / bin.as_ns()) as usize;
                    if idx >= v.len() {
                        v.resize(idx + 1, 0);
                    }
                    v[idx] += 1;
                }
                v
            })
            .collect();
        ActivityProfile { bin, bins }
    }

    /// Peak calls in any bin of any rank.
    pub fn peak(&self) -> u32 {
        self.bins
            .iter()
            .flat_map(|v| v.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Fraction of bins with no activity at all (averaged over ranks) —
    /// a burstiness signal: high for compute-dominated applications.
    pub fn quiet_fraction(&self) -> f64 {
        if self.bins.is_empty() {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|v| {
                if v.is_empty() {
                    return 0.0;
                }
                v.iter().filter(|&&c| c == 0).count() as f64 / v.len() as f64
            })
            .sum::<f64>()
            / self.bins.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_us(x)
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new("prof", 3);
        for it in 0..4 {
            let _ = it;
            for r in 0..3u32 {
                b.compute(r, us(500));
                b.op(
                    r,
                    MpiOp::Sendrecv {
                        to: (r + 1) % 3,
                        send_bytes: 1000,
                        from: (r + 2) % 3,
                        recv_bytes: 1000,
                    },
                );
                b.compute(r, us(100));
                b.op(r, MpiOp::Allreduce { bytes: 8 });
            }
        }
        b.build()
    }

    #[test]
    fn call_profile_counts_and_idle() {
        let p = CallProfile::of(&sample());
        assert_eq!(p.total_calls(), 24);
        let sr = p.get(MpiCall::Sendrecv).unwrap();
        assert_eq!(sr.count, 12);
        assert_eq!(sr.send_bytes, 12_000);
        assert_eq!(sr.preceding_idle, us(500 * 12));
        let ar = p.get(MpiCall::Allreduce).unwrap();
        assert_eq!(ar.preceding_idle, us(100 * 12));
        // The big idle sits before the Sendrecvs.
        assert_eq!(p.dominant_idle_guard(), Some(MpiCall::Sendrecv));
    }

    #[test]
    fn comm_matrix_captures_ring() {
        let m = CommMatrix::of(&sample());
        assert_eq!(m.get(0, 1), 4000);
        assert_eq!(m.get(1, 2), 4000);
        assert_eq!(m.get(2, 0), 4000);
        assert_eq!(m.get(0, 2), 0);
        assert_eq!(m.total(), 12_000);
        assert_eq!(m.pairs(), 3);
        assert!(!m.is_symmetric(), "one-directional ring");
    }

    #[test]
    fn symmetric_exchange_detected() {
        let mut b = TraceBuilder::new("sym", 2);
        for r in 0..2u32 {
            b.op(
                r,
                MpiOp::Sendrecv {
                    to: 1 - r,
                    send_bytes: 77,
                    from: 1 - r,
                    recv_bytes: 77,
                },
            );
        }
        let m = CommMatrix::of(&b.build());
        assert!(m.is_symmetric());
    }

    #[test]
    fn activity_profile_bins_calls() {
        let t = sample();
        let p = ActivityProfile::of(&t, us(200));
        assert_eq!(p.bins.len(), 3);
        // 8 calls per rank over 2.4 ms of nominal time.
        let rank0_total: u32 = p.bins[0].iter().sum();
        assert_eq!(rank0_total, 8);
        // Compute-dominated: a visible share of empty bins (calls land
        // in 2 bins of each ~3-bin iteration window).
        assert!(p.quiet_fraction() > 0.3, "{}", p.quiet_fraction());
        // With coarser bins the sendrecv+allreduce pair lands together.
        let coarse = ActivityProfile::of(&t, us(600));
        assert!(coarse.peak() >= 2, "peak {}", coarse.peak());
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let t = TraceBuilder::new("empty", 2).build();
        assert_eq!(CallProfile::of(&t).total_calls(), 0);
        assert_eq!(CommMatrix::of(&t).total(), 0);
        let a = ActivityProfile::of(&t, us(100));
        assert_eq!(a.peak(), 0);
    }
}
