//! The workload abstraction and registry.

use ibp_trace::Trace;

/// A synthetic application workload: generates MPI traces with the
/// communication structure of one of the paper's five applications.
///
/// `Send + Sync` is a supertrait requirement: the sweep engine in
/// `ibp-analysis` generates traces from pool worker threads, so every
/// generator must be shareable across threads. All generators are plain
/// value types (parameters only; per-call RNG state is local to
/// `generate`), so this costs nothing.
pub trait Workload: Send + Sync {
    /// Short lowercase name (e.g. `"alya"`).
    fn name(&self) -> &'static str;

    /// Whether this workload can run at `n` processes.
    fn valid_nprocs(&self, n: u32) -> bool;

    /// The process counts the paper evaluates this application at.
    fn paper_procs(&self) -> &'static [u32];

    /// Generate a trace for `nprocs` ranks, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `nprocs` is not valid for the workload.
    fn generate(&self, nprocs: u32, seed: u64) -> Trace;
}

/// The five applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// GROMACS molecular dynamics (halo bursts + energy reductions, with
    /// neighbour-search steps perturbing the pattern).
    Gromacs,
    /// ALYA multiphysics (the paper's Fig. 2 pattern: Sendrecv×3 +
    /// Allreduce×2, communication-heavy).
    Alya,
    /// WRF weather simulation (dense halo bursts, most intervals tiny).
    Wrf,
    /// NAS BT (ADI sweeps on a square process grid, highly regular).
    NasBt,
    /// NAS MG (multigrid V-cycle, level-dependent gaps, needs large GT).
    NasMg,
}

impl AppKind {
    /// All five applications in the paper's presentation order.
    pub const ALL: [AppKind; 5] = [
        AppKind::Gromacs,
        AppKind::Alya,
        AppKind::Wrf,
        AppKind::NasBt,
        AppKind::NasMg,
    ];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Gromacs => "gromacs",
            AppKind::Alya => "alya",
            AppKind::Wrf => "wrf",
            AppKind::NasBt => "nas-bt",
            AppKind::NasMg => "nas-mg",
        }
    }

    /// Display name as the paper prints it.
    pub fn display(self) -> &'static str {
        match self {
            AppKind::Gromacs => "GROMACS",
            AppKind::Alya => "ALYA",
            AppKind::Wrf => "WRF",
            AppKind::NasBt => "NAS BT",
            AppKind::NasMg => "NAS MG",
        }
    }

    /// Parse a name as produced by [`AppKind::name`].
    pub fn from_name(s: &str) -> Option<AppKind> {
        AppKind::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Construct the default-parameter workload for this application.
    pub fn workload(self) -> Box<dyn Workload> {
        match self {
            AppKind::Gromacs => Box::new(crate::gromacs::Gromacs::default()),
            AppKind::Alya => Box::new(crate::alya::Alya::default()),
            AppKind::Wrf => Box::new(crate::wrf::Wrf::default()),
            AppKind::NasBt => Box::new(crate::nas_bt::NasBt::default()),
            AppKind::NasMg => Box::new(crate::nas_mg::NasMg::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for app in AppKind::ALL {
            assert_eq!(AppKind::from_name(app.name()), Some(app));
        }
        assert_eq!(AppKind::from_name("nonesuch"), None);
    }

    #[test]
    fn workloads_report_consistent_names() {
        for app in AppKind::ALL {
            assert_eq!(app.workload().name(), app.name());
        }
    }

    #[test]
    fn paper_procs_are_valid() {
        for app in AppKind::ALL {
            let w = app.workload();
            for &n in w.paper_procs() {
                assert!(w.valid_nprocs(n), "{} invalid at {n}", w.name());
            }
        }
    }

    #[test]
    fn bt_uses_square_counts() {
        let bt = AppKind::NasBt.workload();
        assert_eq!(bt.paper_procs(), &[9, 16, 36, 64, 100]);
        assert!(!bt.valid_nprocs(8));
        assert!(bt.valid_nprocs(36));
    }
}
