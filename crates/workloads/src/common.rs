//! Shared building blocks for the synthetic application generators.
//!
//! The generators reproduce each application's *communication structure*
//! (which MPI calls, in which order, with which inter-call gaps and
//! message sizes, and how all of that changes under strong scaling), not
//! its numerics. Three model families are shared:
//!
//! * **Strong-scaling laws** — compute gaps shrink as `(ref_n/n)^α` with
//!   a per-application exponent (α < 1 captures the serial fractions and
//!   load imbalance that keep real gaps from shrinking linearly);
//!   message sizes follow surface laws `(ref_n/n)^(2/3)` for 3-D halo
//!   exchanges.
//! * **Jitter** — compute gaps carry multiplicative lognormal noise plus
//!   a persistent per-rank imbalance factor, which is what makes
//!   collective wait times grow with scale during replay.
//! * **Process grids** — ring and square-grid neighbourhoods.

use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::Rank;

/// How the problem grows with the process count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scaling {
    /// Fixed total problem: per-rank compute and messages shrink with
    /// the process count (the paper's evaluation mode).
    #[default]
    Strong,
    /// Fixed per-rank problem: compute gaps and message sizes stay at
    /// their reference values regardless of scale; only the O(n)
    /// collective costs grow. The paper's §VI conjecture is that the
    /// mechanism "would benefit more in weak scaling runs".
    Weak,
}

impl Scaling {
    /// The process count to feed into per-rank scaling laws: the real
    /// one under strong scaling, the reference count under weak scaling.
    pub fn effective_n(self, nprocs: u32, ref_n: u32) -> u32 {
        match self {
            Scaling::Strong => nprocs,
            Scaling::Weak => ref_n,
        }
    }
}

/// Strong-scaling value: `base × (ref_n / n)^alpha`.
pub fn strong_scale(base: f64, ref_n: u32, n: u32, alpha: f64) -> f64 {
    base * (f64::from(ref_n) / f64::from(n)).powf(alpha)
}

/// 3-D halo surface law for message bytes: `base × (ref_n/n)^(2/3)`,
/// floored at 64 bytes (headers never vanish).
pub fn halo_bytes(base: f64, ref_n: u32, n: u32) -> u64 {
    strong_scale(base, ref_n, n, 2.0 / 3.0).max(64.0) as u64
}

/// A compute-gap model: a strong-scaled base duration with lognormal
/// jitter and a per-rank persistent imbalance factor.
#[derive(Debug, Clone, Copy)]
pub struct GapModel {
    /// Gap at the reference process count, in µs.
    pub base_us: f64,
    /// Reference process count the base is calibrated at.
    pub ref_n: u32,
    /// Strong-scaling exponent.
    pub alpha: f64,
    /// Log-space jitter standard deviation per draw.
    pub sigma: f64,
}

impl GapModel {
    /// Mean gap at `n` processes, in µs.
    pub fn mean_us(&self, n: u32) -> f64 {
        strong_scale(self.base_us, self.ref_n, n, self.alpha)
    }

    /// Draw one gap for a rank with persistent imbalance `rank_factor`.
    pub fn draw(&self, n: u32, rank_factor: f64, rng: &mut DetRng) -> SimDuration {
        let us = self.mean_us(n) * rank_factor * rng.lognormal_jitter(self.sigma);
        SimDuration::from_us_f64(us.max(0.0))
    }
}

/// Persistent per-rank imbalance factors: each rank computes a little
/// faster or slower than the mean, consistently for the whole run.
pub fn rank_imbalance(nprocs: u32, spread: f64, rng: &mut DetRng) -> Vec<f64> {
    (0..nprocs)
        .map(|_| (1.0 + spread * rng.normal_std()).max(0.5))
        .collect()
}

/// Ring neighbours of `rank` in a ring of `n`.
pub fn ring_neighbors(rank: Rank, n: u32) -> (Rank, Rank) {
    ((rank + 1) % n, (rank + n - 1) % n)
}

/// Integer square root if `n` is a perfect square.
pub fn square_side(n: u32) -> Option<u32> {
    let s = (f64::from(n)).sqrt().round() as u32;
    (s * s == n).then_some(s)
}

/// Neighbours of `rank` on a `side × side` torus grid:
/// `[east, west, north, south]`.
pub fn grid_neighbors(rank: Rank, side: u32) -> [Rank; 4] {
    let (x, y) = (rank % side, rank / side);
    let east = y * side + (x + 1) % side;
    let west = y * side + (x + side - 1) % side;
    let north = ((y + 1) % side) * side + x;
    let south = ((y + side - 1) % side) * side + x;
    [east, west, north, south]
}

/// Tiny intra-gram gap (µs scale), jittered; always below any legal GT
/// (`< 20 µs`) so it never splits a gram.
pub fn intra_gram_gap(rng: &mut DetRng) -> SimDuration {
    SimDuration::from_us_f64(rng.uniform_range(0.5, 8.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scale_identity_at_ref() {
        assert!((strong_scale(100.0, 8, 8, 0.7) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn strong_scale_decreases_with_n() {
        let a = strong_scale(100.0, 8, 16, 0.7);
        let b = strong_scale(100.0, 8, 128, 0.7);
        assert!(a < 100.0 && b < a);
        // alpha = 1 halves per doubling.
        assert!((strong_scale(100.0, 8, 16, 1.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn halo_bytes_floor() {
        assert_eq!(halo_bytes(100.0, 8, 1_000_000), 64);
        assert_eq!(halo_bytes(1_500_000.0, 8, 8), 1_500_000);
    }

    #[test]
    fn gap_model_draws_are_positive_and_near_mean() {
        let m = GapModel {
            base_us: 500.0,
            ref_n: 8,
            alpha: 0.7,
            sigma: 0.05,
        };
        let mut rng = DetRng::seed_from_u64(1);
        let mut sum = 0.0;
        let k = 2000;
        for _ in 0..k {
            let d = m.draw(64, 1.0, &mut rng);
            assert!(d > SimDuration::ZERO);
            sum += d.as_us_f64();
        }
        let mean = sum / f64::from(k);
        let expect = m.mean_us(64);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn rank_imbalance_is_persistent_and_positive() {
        let mut rng = DetRng::seed_from_u64(2);
        let f = rank_imbalance(64, 0.03, &mut rng);
        assert_eq!(f.len(), 64);
        assert!(f.iter().all(|&x| x >= 0.5));
        let mean: f64 = f.iter().sum::<f64>() / 64.0;
        assert!((mean - 1.0).abs() < 0.05);
    }

    #[test]
    fn ring_wraps() {
        assert_eq!(ring_neighbors(0, 8), (1, 7));
        assert_eq!(ring_neighbors(7, 8), (0, 6));
    }

    #[test]
    fn square_side_detects_squares() {
        assert_eq!(square_side(9), Some(3));
        assert_eq!(square_side(100), Some(10));
        assert_eq!(square_side(8), None);
    }

    #[test]
    fn grid_neighbors_wrap_torus() {
        // 3×3 grid, rank 0 at (0,0).
        assert_eq!(grid_neighbors(0, 3), [1, 2, 3, 6]);
        // rank 8 at (2,2).
        assert_eq!(grid_neighbors(8, 3), [6, 7, 2, 5]);
    }

    #[test]
    fn intra_gram_gap_below_min_gt() {
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..500 {
            assert!(intra_gram_gap(&mut rng) < SimDuration::from_us(20));
        }
    }
}
