//! NAS MG — multigrid V-cycle.
//!
//! MG sweeps a hierarchy of grid levels: smoothing at the finest level is
//! the long compute phase; each restriction/prolongation step exchanges
//! halos at a coarser level, with compute gaps shrinking ~4× per level.
//! The mid-level gaps land in the 20–200 µs band of Table I (MG is the
//! only application with a large 20–200 µs population — ~38% of
//! intervals at 8 ranks) and their iteration-to-iteration variability is
//! high, which is why the paper selects an unusually large grouping
//! threshold for MG (290–382 µs, Table III): grouping the whole cycle
//! except the finest-level phases avoids mispredictions, at the cost of
//! leaving the mid gaps unexploited. Hit rate lands mid-pack (70–79%)
//! and savings go 28%→4% across 8→128 ranks (Fig. 9a).

use crate::common::{Scaling, halo_bytes, intra_gram_gap, rank_imbalance, GapModel};
use crate::spec::Workload;
use ibp_simcore::{DetRng, SimDuration};
use ibp_trace::{MpiOp, Trace, TraceBuilder};

/// NAS MG generator parameters.
#[derive(Debug, Clone)]
pub struct NasMg {
    /// Number of V-cycles.
    pub iterations: u32,
    /// Finest-level smoothing gap (the long one; appears twice per cycle).
    pub smooth_gap: GapModel,
    /// Ratio between successive level gaps (finest → coarser).
    pub level_ratio: f64,
    /// Number of grid levels below the finest.
    pub levels: u32,
    /// Halo grams per level (pre- and post-smoothing exchanges).
    pub grams_per_level: u32,
    /// Relative jitter of the mid-level gaps (high: they wander across
    /// bucket/GT boundaries, which is what forces the large GT).
    pub level_sigma: f64,
    /// Halo volume at the finest level at 8 ranks, bytes.
    pub halo_volume_at8: f64,
    /// Per-rank contribution to the coarse-grid `MPI_Allgather` (ring
    /// algorithm: O(n) cost — the latency-bound coarse levels that keep
    /// MG from scaling).
    pub gather_bytes: u64,
    /// Probability per cycle that an extra norm-check gram appears
    /// (pattern break).
    pub norm_check_probability: f64,
    /// Strong (paper) or weak scaling of the per-rank problem.
    pub scaling: Scaling,
    /// Per-rank imbalance spread.
    pub imbalance: f64,
}

impl Default for NasMg {
    fn default() -> Self {
        NasMg {
            iterations: 300,
            smooth_gap: GapModel {
                base_us: 1800.0,
                ref_n: 8,
                alpha: 0.72,
                sigma: 0.004,
            },
            level_ratio: 12.0,
            levels: 3,
            grams_per_level: 2,
            level_sigma: 0.25,
            halo_volume_at8: 1.5e6,
            gather_bytes: 96_000,
            norm_check_probability: 0.10,
            scaling: Scaling::Strong,
            imbalance: 0.05,
        }
    }
}

impl NasMg {
    /// Halo exchange gram at one level: `exchanges` paired exchanges
    /// with ring partners (3 at the finest level — one per dimension —
    /// and a single aggregated exchange at coarser levels).
    fn level_halo(
        b: &mut TraceBuilder,
        r: u32,
        nprocs: u32,
        msg_bytes: u64,
        exchanges: u32,
        rng: &mut DetRng,
    ) {
        for j in 0..exchanges {
            if j > 0 {
                b.compute(r, intra_gram_gap(rng));
            }
            let hop = (j + 1).min(nprocs - 1).max(1);
            let (fwd, bwd) = ((r + hop) % nprocs, (r + nprocs - hop) % nprocs);
            b.op(
                r,
                MpiOp::Sendrecv {
                    to: fwd,
                    send_bytes: msg_bytes,
                    from: bwd,
                    recv_bytes: msg_bytes,
                },
            );
        }
    }
}

impl Workload for NasMg {
    fn name(&self) -> &'static str {
        "nas-mg"
    }

    fn valid_nprocs(&self, n: u32) -> bool {
        n >= 2
    }

    fn paper_procs(&self) -> &'static [u32] {
        &[8, 16, 32, 64, 128]
    }

    fn generate(&self, nprocs: u32, seed: u64) -> Trace {
        assert!(self.valid_nprocs(nprocs), "nas-mg needs >= 2 ranks");
        let root = DetRng::seed_from_u64(seed);
        let mut imb_rng = root.split(0);
        let factors = rank_imbalance(nprocs, self.imbalance, &mut imb_rng);

        // SPMD-shared schedule of norm checks.
        let mut sched = root.split(usize::MAX as u64);
        let norm_checks: Vec<bool> = (0..self.iterations)
            .map(|_| sched.chance(self.norm_check_probability))
            .collect();

        let gn = self.scaling.effective_n(nprocs, 8);
        let finest_bytes = halo_bytes(self.halo_volume_at8, 8, gn);

        let mut b = TraceBuilder::new("nas-mg", nprocs);
        for r in 0..nprocs {
            let mut rng = root.split(1 + u64::from(r));
            let f = factors[r as usize];
            for &norm_check in norm_checks.iter().take(self.iterations as usize) {
                // Downward leg: smooth at finest (long gap) + halo, then
                // restrict through the levels with shrinking gaps.
                b.compute(r, self.smooth_gap.draw(gn, f, &mut rng));
                Self::level_halo(&mut b, r, nprocs, finest_bytes, 3, &mut rng);
                let mut level_gap_us = self.smooth_gap.mean_us(gn) / self.level_ratio;
                let mut level_bytes = finest_bytes;
                for _ in 0..self.levels {
                    level_bytes = (level_bytes / 4).max(64);
                    for _ in 0..self.grams_per_level {
                        let jitter = rng.lognormal_jitter(self.level_sigma);
                        b.compute(
                            r,
                            SimDuration::from_us_f64((level_gap_us * f * jitter).max(0.5)),
                        );
                        Self::level_halo(&mut b, r, nprocs, level_bytes, 1, &mut rng);
                    }
                    level_gap_us /= self.level_ratio;
                }
                // Coarsest solve: gather the coarse grid, reduce.
                b.compute(r, intra_gram_gap(&mut rng));
                b.op(r, MpiOp::Allgather { bytes: self.gather_bytes });
                b.compute(r, intra_gram_gap(&mut rng));
                b.op(r, MpiOp::Allreduce { bytes: 16 });
                // Upward leg: prolongate back up with growing gaps.
                for lev in (0..self.levels).rev() {
                    let gap_us = self.smooth_gap.mean_us(gn)
                        / self.level_ratio.powi(lev as i32 + 1);
                    let bytes = (finest_bytes >> (2 * (lev + 1))).max(64);
                    for _ in 0..self.grams_per_level {
                        let jitter = rng.lognormal_jitter(self.level_sigma);
                        b.compute(
                            r,
                            SimDuration::from_us_f64((gap_us * f * jitter).max(0.5)),
                        );
                        Self::level_halo(&mut b, r, nprocs, bytes, 1, &mut rng);
                    }
                }
                // Final smoothing at the finest level.
                b.compute(r, self.smooth_gap.draw(gn, f, &mut rng));
                Self::level_halo(&mut b, r, nprocs, finest_bytes, 3, &mut rng);
                // Occasional residual-norm check (pattern break).
                if norm_check {
                    b.compute(r, intra_gram_gap(&mut rng));
                    b.op(r, MpiOp::Allreduce { bytes: 8 });
                }
            }
            b.compute(r, self.smooth_gap.draw(gn, f, &mut rng));
        }
        let trace = b.build();
        debug_assert!(trace.validate().is_ok());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::IdleDistribution;

    fn small() -> NasMg {
        NasMg {
            iterations: 40,
            ..NasMg::default()
        }
    }

    #[test]
    fn valid_and_deterministic() {
        let mg = small();
        for &n in mg.paper_procs() {
            mg.generate(n, 3).validate().unwrap();
        }
        assert_eq!(mg.generate(8, 5), mg.generate(8, 5));
    }

    #[test]
    fn mid_bucket_is_populated() {
        // MG's Table I signature: a substantial 20–200 µs population
        // (the mid-level gaps), unlike the other four applications.
        let t = small().generate(8, 4);
        let d = IdleDistribution::from_trace(&t);
        assert!(
            d.medium.interval_pct > 15.0,
            "mid intervals {}%",
            d.medium.interval_pct
        );
        // But the finest-level gaps still dominate idle time.
        assert!(d.long.time_pct > 75.0, "{}", d.long.time_pct);
    }

    #[test]
    fn level_gaps_span_decades() {
        let t = small().generate(8, 6);
        let gaps: Vec<f64> = t.ranks[0]
            .events
            .iter()
            .map(|e| e.compute_before.as_us_f64())
            .filter(|&g| g > 0.0)
            .collect();
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        let min_nonzero = gaps
            .iter()
            .cloned()
            .filter(|&g| g > 0.4)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max / min_nonzero > 100.0,
            "gap dynamic range too small: {min_nonzero}..{max}"
        );
    }

    #[test]
    fn norm_checks_follow_schedule_on_all_ranks() {
        let mg = NasMg {
            iterations: 60,
            norm_check_probability: 0.3,
            ..NasMg::default()
        };
        let t = mg.generate(4, 7);
        let count = |r: usize| {
            t.ranks[r]
                .call_stream()
                .filter(|(c, _)| *c == ibp_trace::MpiCall::Allreduce)
                .count()
        };
        let c0 = count(0);
        assert!(c0 > 60, "base allreduce + extra norm checks expected");
        for r in 1..4 {
            assert_eq!(count(r), c0, "rank {r} diverged");
        }
    }
}
