//! GROMACS — molecular dynamics.
//!
//! An MD step is dominated by force computation, followed by a halo
//! exchange of particle forces/positions and a small energy reduction.
//! Every ~10 steps a *neighbour-search* (NS) step rebuilds the pair lists
//! and communicates more (extra exchange + an `MPI_Allgather` of cell
//! counts), and the NS period is data-dependent, so the call pattern is
//! only piecewise regular. Additionally, the short gap between the halo
//! gram and the energy reduction hovers around the grouping threshold:
//! in a fraction of steps it dips below GT and the two grams merge. Both
//! effects cap GROMACS' hit rate well below ALYA's (Table III: 42–59%)
//! while leaving most of the *time* (the force gap) exploitable — power
//! savings 33→15% across 8→128 ranks (Fig. 9a).

use crate::common::{Scaling, halo_bytes, intra_gram_gap, rank_imbalance, GapModel};
use crate::spec::Workload;
use ibp_simcore::DetRng;
use ibp_trace::{MpiOp, Trace, TraceBuilder};

/// GROMACS generator parameters.
#[derive(Debug, Clone)]
pub struct Gromacs {
    /// Number of MD steps.
    pub iterations: u32,
    /// Force-computation gap (the big one).
    pub force_gap: GapModel,
    /// Short gap between halo gram and energy reduction when the two
    /// form separate grams (see `split_probability`).
    pub short_gap: GapModel,
    /// Probability per step that the short gap rises above GT, splitting
    /// the energy reduction into its own gram (pattern-shape flip). Most
    /// steps keep the reduction inside the halo gram, matching Table I's
    /// near-empty 20–200 µs bucket at 8 ranks.
    pub split_probability: f64,
    /// Mean neighbour-search period in steps (actual period jitters ±2).
    pub ns_period: u32,
    /// Total halo volume per rank at 8 ranks, bytes.
    pub halo_volume_at8: f64,
    /// Halo message count at 8 ranks and growth exponent.
    pub halo_count_at8: f64,
    /// Growth exponent for halo message count.
    pub halo_count_beta: f64,
    /// Per-rank contribution to the per-step `MPI_Allgather` (domain
    /// decomposition bookkeeping; ring algorithm, O(n) cost).
    pub gather_bytes: u64,
    /// Strong (paper) or weak scaling of the per-rank problem.
    pub scaling: Scaling,
    /// Per-rank imbalance spread.
    pub imbalance: f64,
}

impl Default for Gromacs {
    fn default() -> Self {
        Gromacs {
            iterations: 250,
            force_gap: GapModel {
                base_us: 2400.0,
                ref_n: 8,
                alpha: 0.45,
                sigma: 0.003,
            },
            short_gap: GapModel {
                base_us: 40.0,
                ref_n: 8,
                alpha: 0.25,
                sigma: 0.02,
            },
            split_probability: 0.05,
            ns_period: 25,
            halo_volume_at8: 1.5e6,
            halo_count_at8: 4.0,
            halo_count_beta: 0.8,
            gather_bytes: 16_000,
            scaling: Scaling::Strong,
            imbalance: 0.01,
        }
    }
}

impl Workload for Gromacs {
    fn name(&self) -> &'static str {
        "gromacs"
    }

    fn valid_nprocs(&self, n: u32) -> bool {
        n >= 2
    }

    fn paper_procs(&self) -> &'static [u32] {
        &[8, 16, 32, 64, 128]
    }

    fn generate(&self, nprocs: u32, seed: u64) -> Trace {
        assert!(self.valid_nprocs(nprocs), "gromacs needs >= 2 ranks");
        let root = DetRng::seed_from_u64(seed);
        let mut imb_rng = root.split(0);
        let factors = rank_imbalance(nprocs, self.imbalance, &mut imb_rng);

        // Shared step schedule: NS steps and gram merges are decisions of
        // the *simulation*, identical on every rank (SPMD), so they come
        // from a common stream.
        let mut sched = root.split(usize::MAX as u64);
        let mut ns_steps = Vec::with_capacity(self.iterations as usize);
        let mut merged = Vec::with_capacity(self.iterations as usize);
        {
            let mut next_ns = self.ns_period;
            for it in 0..self.iterations {
                let is_ns = it + 1 == next_ns;
                if is_ns {
                    let jitter = sched.index(5) as u32; // 0..4 → period ±2
                    next_ns = it + 1 + self.ns_period - 2 + jitter;
                }
                ns_steps.push(is_ns);
                merged.push(!sched.chance(self.split_probability));
            }
        }

        let gn = self.scaling.effective_n(nprocs, 8);
        let halo_count = ((self.halo_count_at8
            * (f64::from(gn) / 8.0).powf(self.halo_count_beta))
        .round() as u32)
            .max(1);
        let total_halo = halo_bytes(self.halo_volume_at8, 8, gn);
        let msg_bytes = (total_halo / u64::from(halo_count)).max(64);

        let mut b = TraceBuilder::new("gromacs", nprocs);
        for r in 0..nprocs {
            let mut rng = root.split(1 + u64::from(r));
            let f = factors[r as usize];
            for it in 0..self.iterations as usize {
                // Force computation.
                b.compute(r, self.force_gap.draw(gn, f, &mut rng));
                // Halo exchange gram.
                let exchanges = if ns_steps[it] { halo_count * 2 } else { halo_count };
                for j in 0..exchanges {
                    if j > 0 {
                        b.compute(r, intra_gram_gap(&mut rng));
                    }
                    let hop = (j / 2 + 1).min(nprocs - 1).max(1);
                    let (fwd, bwd) = ((r + hop) % nprocs, (r + nprocs - hop) % nprocs);
                    let (to, from) = if j % 2 == 0 { (fwd, bwd) } else { (bwd, fwd) };
                    b.op(
                        r,
                        MpiOp::Sendrecv {
                            to,
                            send_bytes: msg_bytes,
                            from,
                            recv_bytes: msg_bytes,
                        },
                    );
                }
                if ns_steps[it] {
                    // Pair-list cell counts.
                    b.compute(r, intra_gram_gap(&mut rng));
                    b.op(r, MpiOp::Allgather { bytes: 512 });
                }
                // Decomposition bookkeeping (O(n) ring allgather).
                b.compute(r, intra_gram_gap(&mut rng));
                b.op(r, MpiOp::Allgather { bytes: self.gather_bytes });
                // Energy reduction; the preceding gap is bimodal around GT.
                let gap = if merged[it] {
                    intra_gram_gap(&mut rng)
                } else {
                    self.short_gap.draw(gn, f, &mut rng)
                };
                b.compute(r, gap);
                b.op(r, MpiOp::Allreduce { bytes: 48 });
            }
            b.compute(r, self.force_gap.draw(gn, f, &mut rng));
        }
        let trace = b.build();
        debug_assert!(trace.validate().is_ok());
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_trace::IdleDistribution;

    fn small() -> Gromacs {
        Gromacs {
            iterations: 60,
            ..Gromacs::default()
        }
    }

    #[test]
    fn valid_and_deterministic() {
        let g = small();
        for &n in g.paper_procs() {
            g.generate(n, 3).validate().unwrap();
        }
        assert_eq!(g.generate(16, 4), g.generate(16, 4));
    }

    #[test]
    fn ns_steps_add_allgather() {
        // Every step carries the bookkeeping Allgather; NS steps add one
        // more. With ns_period 25 and 60 steps, expect 60 + ~2 extras...
        // NS extras are Allgathers of 512 B; count those.
        let g = small();
        let t = g.generate(8, 5);
        let ns_allgathers = t.ranks[0]
            .events
            .iter()
            .filter(|e| matches!(e.op, MpiOp::Allgather { bytes: 512 }))
            .count();
        assert!((1..=5).contains(&ns_allgathers), "{ns_allgathers} NS steps");
    }

    #[test]
    fn schedule_is_spmd_consistent() {
        // All ranks must see the same NS steps and the same merges: the
        // call sequences (ignoring gaps) must be identical across ranks.
        let g = small();
        let t = g.generate(8, 6);
        let seq = |r: usize| {
            t.ranks[r]
                .call_stream()
                .map(|(c, _)| c)
                .collect::<Vec<_>>()
        };
        let s0 = seq(0);
        for r in 1..8 {
            assert_eq!(seq(r), s0, "rank {r} diverged");
        }
    }

    #[test]
    fn force_gap_dominates_idle_time() {
        let t = small().generate(8, 7);
        let d = IdleDistribution::from_trace(&t);
        // Table I GROMACS@8: >200 µs bucket ≈ 99.99% of idle time.
        assert!(d.long.time_pct > 95.0, "{}", d.long.time_pct);
        // Tiny intervals outnumber mid ones (58% vs 0.1% of intervals).
        assert!(d.short.intervals > d.medium.intervals);
    }

    #[test]
    fn merges_create_shape_flips() {
        // With split probability 0 the reduction is always in the halo
        // gram: no 20–200 µs intervals from the short gap remain.
        let g = Gromacs {
            split_probability: 0.0,
            iterations: 40,
            ..Gromacs::default()
        };
        let t = g.generate(8, 8);
        let d = IdleDistribution::from_trace(&t);
        assert_eq!(d.medium.intervals, 0);
    }
}
